//! The headline reproduction test: run the paper's full evaluation
//! (both workloads × both paths, 120 s flows) and verify every shape
//! criterion from Figures 1–7.
//!
//! This is the simulated equivalent of the authors' Section 3 campaign;
//! absolute numbers depend on our synthetic operator profile, but the
//! qualitative structure — who wins, by what rough factor, where the
//! Figure-4 knee falls — must match the paper.

use umtslab::paper::{run_paper, shape_checks};

const SEED: u64 = 2008; // the paper's year; any seed must pass

#[test]
fn full_paper_run_satisfies_every_shape_criterion() {
    let run = run_paper(SEED, None).expect("paper run completes");
    let checks = shape_checks(&run);
    assert!(!checks.is_empty());
    let failures: Vec<String> = checks
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: expected {}, measured {}", c.name, c.expectation, c.measured))
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} shape checks failed:\n{}",
        failures.len(),
        checks.len(),
        failures.join("\n")
    );
}

#[test]
fn shape_criteria_hold_for_a_second_seed() {
    let run = run_paper(77, None).expect("paper run completes");
    let failures: Vec<String> = shape_checks(&run)
        .iter()
        .filter(|c| !c.pass)
        .map(|c| format!("{}: {}", c.name, c.measured))
        .collect();
    assert!(failures.is_empty(), "failed:\n{}", failures.join("\n"));
}
