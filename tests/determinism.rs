//! Determinism integration tests: given the same master seed, the whole
//! stack — dial-up, PPP negotiation, radio bearers, traffic generation —
//! must produce bit-identical results; different seeds must diverge.

use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
use umtslab::prelude::*;

fn fingerprint(cfg: ExperimentConfig) -> Vec<(u64, u64)> {
    let r = run_experiment(cfg).unwrap();
    r.series
        .points
        .iter()
        .map(|p| {
            (
                p.bitrate_bps.to_bits(),
                p.rtt.map_or(u64::MAX, |d| d.total_micros()) ^ (p.lost << 32) ^ p.received,
            )
        })
        .collect()
}

fn short_cfg(path: PathKind, seed: u64) -> ExperimentConfig {
    let mut spec = FlowSpec::cbr_1mbps();
    spec.duration = Duration::from_secs(8);
    ExperimentConfig::paper(spec, path, seed)
}

#[test]
fn same_seed_reproduces_umts_run_exactly() {
    let a = fingerprint(short_cfg(PathKind::UmtsToEthernet, 42));
    let b = fingerprint(short_cfg(PathKind::UmtsToEthernet, 42));
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn same_seed_reproduces_wired_run_exactly() {
    let a = fingerprint(short_cfg(PathKind::EthernetToEthernet, 42));
    let b = fingerprint(short_cfg(PathKind::EthernetToEthernet, 42));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge_on_the_radio_path() {
    // The UMTS path is stochastic (jitter, BLER): different seeds must
    // yield different series.
    let a = fingerprint(short_cfg(PathKind::UmtsToEthernet, 1));
    let b = fingerprint(short_cfg(PathKind::UmtsToEthernet, 2));
    assert_ne!(a, b, "distinct seeds should not collide");
}

#[test]
fn supervised_chaos_lifecycle_is_deterministic() {
    use umtslab::chaos::{run_chaos_campaign, ChaosConfig};

    // The full supervised chaos campaign: session faults, redials,
    // backoff jitter, availability accounting. Two runs from the same
    // seed must agree on every lifecycle marker (kind *and* timestamp)
    // and on the availability counters, bit for bit.
    let run = |seed| {
        let r = run_chaos_campaign(&ChaosConfig::paper(seed), |_, _, _| {});
        (r.lifecycle, r.availability, r.summary.received)
    };
    let (lifecycle_a, avail_a, recv_a) = run(2022);
    let (lifecycle_b, avail_b, recv_b) = run(2022);
    assert_eq!(lifecycle_a, lifecycle_b, "lifecycle marker trails diverged");
    assert_eq!(avail_a, avail_b, "availability metrics diverged");
    assert_eq!(recv_a, recv_b);

    // The trail must exercise all three session-lifecycle trace kinds.
    let kinds: Vec<&str> = lifecycle_a.iter().map(|(_, k)| k.as_str()).collect();
    for want in ["session-up", "session-down", "redial-scheduled"] {
        assert!(kinds.contains(&want), "campaign never emitted {want}: {kinds:?}");
    }

    // And a different seed draws a different fault schedule, so the
    // marker trail must diverge.
    let (lifecycle_c, _, _) = run(2023);
    assert_ne!(lifecycle_a, lifecycle_c, "distinct seeds should not collide");
}

#[test]
fn trace_dumps_are_byte_identical_across_same_seed_runs() {
    use umtslab::experiment::TwoNodeTestbed;
    use umtslab::INRIA_ADDR;

    // Stronger than fingerprint equality: the rendered packet traces of
    // both nodes must be *byte-identical* between two same-seed runs.
    // This guards the label interning introduced by the zero-copy data
    // plane — interning must never reorder, rename, or reformat trace
    // events (e.g. by depending on intern order or map iteration).
    fn traced_run(seed: u64) -> u64 {
        let cfg = short_cfg(PathKind::EthernetToEthernet, seed);
        let mut env = TwoNodeTestbed::build(&cfg);
        env.tb.node_mut(env.napoli).trace.set_enabled(true);
        env.tb.node_mut(env.inria).trace.set_enabled(true);

        let flow_start = env.tb.now() + cfg.settle;
        let spec = cfg.spec.clone();
        let duration = spec.duration;
        let dport = spec.dport;
        let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, flow_start);
        let _rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);
        env.tb.run_until(flow_start + duration + cfg.drain);

        let mut dump = env.tb.node(env.napoli).trace.dump();
        dump.push_str(&env.tb.node(env.inria).trace.dump());
        assert!(!dump.is_empty(), "trace must record events");

        // FNV-1a over the raw dump bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in dump.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    let a = traced_run(7);
    let b = traced_run(7);
    assert_eq!(a, b, "trace dumps diverged between same-seed runs");
}

#[test]
fn connect_time_is_deterministic() {
    let t1 = run_experiment(short_cfg(PathKind::UmtsToEthernet, 9)).unwrap().connect_time;
    let t2 = run_experiment(short_cfg(PathKind::UmtsToEthernet, 9)).unwrap().connect_time;
    assert_eq!(t1, t2);
    assert!(t1.is_some());
}
