//! Determinism integration tests: given the same master seed, the whole
//! stack — dial-up, PPP negotiation, radio bearers, traffic generation —
//! must produce bit-identical results; different seeds must diverge.

use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
use umtslab::prelude::*;

fn fingerprint(cfg: ExperimentConfig) -> Vec<(u64, u64)> {
    let r = run_experiment(cfg).unwrap();
    r.series
        .points
        .iter()
        .map(|p| {
            (
                p.bitrate_bps.to_bits(),
                p.rtt.map_or(u64::MAX, |d| d.total_micros()) ^ (p.lost << 32) ^ p.received,
            )
        })
        .collect()
}

fn short_cfg(path: PathKind, seed: u64) -> ExperimentConfig {
    let mut spec = FlowSpec::cbr_1mbps();
    spec.duration = Duration::from_secs(8);
    ExperimentConfig::paper(spec, path, seed)
}

#[test]
fn same_seed_reproduces_umts_run_exactly() {
    let a = fingerprint(short_cfg(PathKind::UmtsToEthernet, 42));
    let b = fingerprint(short_cfg(PathKind::UmtsToEthernet, 42));
    assert_eq!(a, b);
    assert!(!a.is_empty());
}

#[test]
fn same_seed_reproduces_wired_run_exactly() {
    let a = fingerprint(short_cfg(PathKind::EthernetToEthernet, 42));
    let b = fingerprint(short_cfg(PathKind::EthernetToEthernet, 42));
    assert_eq!(a, b);
}

#[test]
fn different_seeds_diverge_on_the_radio_path() {
    // The UMTS path is stochastic (jitter, BLER): different seeds must
    // yield different series.
    let a = fingerprint(short_cfg(PathKind::UmtsToEthernet, 1));
    let b = fingerprint(short_cfg(PathKind::UmtsToEthernet, 2));
    assert_ne!(a, b, "distinct seeds should not collide");
}

#[test]
fn supervised_chaos_lifecycle_is_deterministic() {
    use umtslab::chaos::{run_chaos_campaign, ChaosConfig};

    // The full supervised chaos campaign: session faults, redials,
    // backoff jitter, availability accounting. Two runs from the same
    // seed must agree on every lifecycle marker (kind *and* timestamp)
    // and on the availability counters, bit for bit.
    let run = |seed| {
        let r = run_chaos_campaign(&ChaosConfig::paper(seed), |_, _, _| {});
        (r.lifecycle, r.availability, r.summary.received)
    };
    let (lifecycle_a, avail_a, recv_a) = run(2022);
    let (lifecycle_b, avail_b, recv_b) = run(2022);
    assert_eq!(lifecycle_a, lifecycle_b, "lifecycle marker trails diverged");
    assert_eq!(avail_a, avail_b, "availability metrics diverged");
    assert_eq!(recv_a, recv_b);

    // The trail must exercise all three session-lifecycle trace kinds.
    let kinds: Vec<&str> = lifecycle_a.iter().map(|(_, k)| k.as_str()).collect();
    for want in ["session-up", "session-down", "redial-scheduled"] {
        assert!(kinds.contains(&want), "campaign never emitted {want}: {kinds:?}");
    }

    // And a different seed draws a different fault schedule, so the
    // marker trail must diverge.
    let (lifecycle_c, _, _) = run(2023);
    assert_ne!(lifecycle_a, lifecycle_c, "distinct seeds should not collide");
}

#[test]
fn trace_dumps_are_byte_identical_across_same_seed_runs() {
    use umtslab::experiment::TwoNodeTestbed;
    use umtslab::INRIA_ADDR;

    // Stronger than fingerprint equality: the rendered packet traces of
    // both nodes must be *byte-identical* between two same-seed runs.
    // This guards the label interning introduced by the zero-copy data
    // plane — interning must never reorder, rename, or reformat trace
    // events (e.g. by depending on intern order or map iteration).
    fn traced_run(seed: u64) -> u64 {
        let cfg = short_cfg(PathKind::EthernetToEthernet, seed);
        let mut env = TwoNodeTestbed::build(&cfg);
        env.tb.node_mut(env.napoli).trace.set_enabled(true);
        env.tb.node_mut(env.inria).trace.set_enabled(true);

        let flow_start = env.tb.now() + cfg.settle;
        let spec = cfg.spec.clone();
        let duration = spec.duration;
        let dport = spec.dport;
        let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, flow_start);
        let _rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);
        env.tb.run_until(flow_start + duration + cfg.drain);

        let mut dump = env.tb.node(env.napoli).trace.dump();
        dump.push_str(&env.tb.node(env.inria).trace.dump());
        assert!(!dump.is_empty(), "trace must record events");

        // FNV-1a over the raw dump bytes.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in dump.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    let a = traced_run(7);
    let b = traced_run(7);
    assert_eq!(a, b, "trace dumps diverged between same-seed runs");
}

#[test]
fn bound_ports_iterate_in_numeric_port_order() {
    use umtslab::experiment::TwoNodeTestbed;

    // The socket table used to be hash-ordered; after the ordered-map
    // migration, bound_ports must list ports numerically no matter the
    // bind order, and stay ordered through unbind/rebind churn.
    let cfg = short_cfg(PathKind::EthernetToEthernet, 3);
    let mut env = TwoNodeTestbed::build(&cfg);
    let slice = env.umts_slice;
    let node = env.tb.node_mut(env.napoli);
    for port in [9200u16, 53, 8080, 443, 7001] {
        node.bind(slice, port).unwrap();
    }
    node.unbind(8080);
    node.bind(slice, 61).unwrap();

    let ports: Vec<u16> = node.bound_ports().iter().map(|&(p, _)| p).collect();
    assert_eq!(ports, vec![53, 61, 443, 7001, 9200]);
}

#[test]
fn same_operator_subscribers_dial_deterministically() {
    // Two nodes attached to the *same* operator exercise the per-operator
    // subscriber table (also previously hash-ordered): each subscriber
    // must get a disjoint pool slice, and the whole double-dial must be
    // bit-reproducible across same-seed builds.
    fn double_dial(seed: u64) -> Vec<Option<Ipv4Address>> {
        use umtslab::Testbed;

        let cfg = short_cfg(PathKind::UmtsToEthernet, seed);
        let mut tb = Testbed::new(seed);
        let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));
        let mut nodes = Vec::new();
        for (name, last) in [("planetlab1.unina.it", 5u8), ("planetlab2.unina.it", 6u8)] {
            let addr = Ipv4Address([143, 225, 229, last]);
            let id = tb.add_node(
                name,
                addr,
                Ipv4Cidr::new(addr, 24),
                Ipv4Address([143, 225, 229, 1]),
                access.clone(),
            );
            tb.attach_umts(id, cfg.operator.clone(), cfg.device.clone(), cfg.credentials.clone());
            let slice = tb.node_mut(id).slices.create("unina_umts");
            tb.node_mut(id).grant_umts_access(slice);
            tb.node_mut(id).vsys_submit(slice, UmtsRequest::Start).unwrap();
            nodes.push(id);
        }
        tb.run_for(Duration::from_secs(120));
        nodes.iter().map(|&id| tb.node(id).ppp_addr()).collect()
    }

    let a = double_dial(11);
    let b = double_dial(11);
    assert_eq!(a, b, "same-seed double dial diverged");
    assert!(a[0].is_some() && a[1].is_some(), "both subscribers must come up: {a:?}");
    assert_ne!(a[0], a[1], "same-operator subscribers must get disjoint addresses");
}

#[test]
fn fleet_topology_is_shard_count_invariant() {
    use umtslab::fleet::{run_fleet, FleetConfig};

    // The sharded-core contract: partitioning one coupled topology
    // across N deterministic schedulers must never change results. The
    // trace hash folds every sender log, RTT sample, receiver record,
    // rendered metrics document and per-node packet trace — all of it
    // must be byte-identical at shard counts 1, 2, 4 and 8.
    let reference = run_fleet(&FleetConfig::small());
    assert!(reference.sent > 0, "fleet must carry traffic");
    for shards in [2usize, 4, 8] {
        let mut cfg = FleetConfig::small();
        cfg.shards = shards;
        let r = run_fleet(&cfg);
        assert_eq!(r.trace_hash, reference.trace_hash, "trace hash diverged at {shards} shard(s)");
        assert_eq!(
            r.metrics_json, reference.metrics_json,
            "metrics document diverged at {shards} shard(s)"
        );
    }

    // And a different seed must actually move the hash — otherwise the
    // invariance above would be vacuous.
    let mut other = FleetConfig::small();
    other.seed ^= 0xdead_beef;
    assert_ne!(run_fleet(&other).trace_hash, reference.trace_hash);
}

#[test]
fn connect_time_is_deterministic() {
    let t1 = run_experiment(short_cfg(PathKind::UmtsToEthernet, 9)).unwrap().connect_time;
    let t2 = run_experiment(short_cfg(PathKind::UmtsToEthernet, 9)).unwrap().connect_time;
    assert_eq!(t1, t2);
    assert!(t1.is_some());
}
