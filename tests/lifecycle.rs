//! Connection-lifecycle integration tests: the `umts` command workflow
//! end to end — start, status, stop, restart, failure handling — across
//! both operator profiles and both supported 3G cards.

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;
use umtslab_planetlab::umtscmd::{UmtsCmdError, UmtsPhase, UmtsRequest, UmtsResponse};

use umtslab::umtslab_planetlab;

fn cfg_with(
    operator: OperatorProfile,
    device: DeviceProfile,
    creds: Option<Credentials>,
    seed: u64,
) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper(FlowSpec::voip_g711(), PathKind::UmtsToEthernet, seed);
    cfg.operator = operator;
    cfg.device = device;
    cfg.credentials = creds;
    cfg
}

#[test]
fn both_cards_connect_on_the_commercial_operator() {
    for (seed, device) in
        [(201, DeviceProfile::option_globetrotter()), (202, DeviceProfile::huawei_e620())]
    {
        let cfg = cfg_with(
            OperatorProfile::commercial_italy(),
            device.clone(),
            Some(Credentials::new("web", "web")),
            seed,
        );
        let mut env = TwoNodeTestbed::build(&cfg);
        let dialed = env.umts_up(Duration::from_secs(60)).expect("connects");
        assert!(dialed >= Duration::from_secs(4), "{dialed} too fast for {device:?}");
        let status = env.tb.node(env.napoli).umts_status();
        assert_eq!(status.phase, UmtsPhase::Up);
        assert_eq!(status.operator, "IT Mobile");
        assert!(status.local_addr.is_some());
    }
}

#[test]
fn private_microcell_connects_faster_than_commercial() {
    let commercial = {
        let cfg = cfg_with(
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
            203,
        );
        let mut env = TwoNodeTestbed::build(&cfg);
        env.umts_up(Duration::from_secs(60)).unwrap()
    };
    let microcell = {
        let cfg = cfg_with(
            OperatorProfile::private_microcell(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("onelab", "onelab")),
            203,
        );
        let mut env = TwoNodeTestbed::build(&cfg);
        env.umts_up(Duration::from_secs(60)).unwrap()
    };
    assert!(
        microcell < commercial,
        "micro-cell ({microcell}) should dial faster than commercial ({commercial})"
    );
}

#[test]
fn wrong_credentials_surface_as_auth_failure() {
    let cfg = cfg_with(
        OperatorProfile::private_microcell(),
        DeviceProfile::huawei_e620(),
        Some(Credentials::new("wrong", "wrong")),
        204,
    );
    let mut env = TwoNodeTestbed::build(&cfg);
    let err = env.umts_up(Duration::from_secs(60)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("AuthFailed"), "got: {msg}");
    // After the failure the interface is unlocked again.
    let status = env.tb.node(env.napoli).umts_status();
    assert_eq!(status.phase, UmtsPhase::Down);
    assert_eq!(status.owner, None);
}

#[test]
fn stop_then_restart_works_and_reuses_state_cleanly() {
    let cfg = cfg_with(
        OperatorProfile::commercial_italy(),
        DeviceProfile::huawei_e620(),
        Some(Credentials::new("web", "web")),
        205,
    );
    let mut env = TwoNodeTestbed::build(&cfg);
    env.umts_up(Duration::from_secs(60)).unwrap();
    env.register_destination();
    let napoli = env.napoli;
    let slice = env.umts_slice;
    let first_addr = env.tb.node(napoli).ppp_addr().unwrap();

    // Stop.
    env.tb.node_mut(napoli).vsys_submit(slice, UmtsRequest::Stop).unwrap();
    for _ in 0..300 {
        env.tb.run_for(Duration::from_millis(100));
        if env.tb.node(napoli).umts_status().phase == UmtsPhase::Down {
            break;
        }
    }
    let status = env.tb.node(napoli).umts_status();
    assert_eq!(status.phase, UmtsPhase::Down);
    assert_eq!(status.owner, None);
    assert!(status.destinations.is_empty(), "destinations cleared on stop");
    assert!(env.tb.node(napoli).ppp_addr().is_none());

    // Restart.
    let dialed = env.umts_up(Duration::from_secs(60)).expect("reconnects");
    assert!(dialed > Duration::ZERO);
    assert_eq!(env.tb.node(napoli).ppp_addr(), Some(first_addr), "pool reuses the address");
}

#[test]
fn status_command_round_trips_through_vsys() {
    let cfg = cfg_with(
        OperatorProfile::commercial_italy(),
        DeviceProfile::huawei_e620(),
        Some(Credentials::new("web", "web")),
        206,
    );
    let mut env = TwoNodeTestbed::build(&cfg);
    env.umts_up(Duration::from_secs(60)).unwrap();
    let napoli = env.napoli;
    let slice = env.umts_slice;
    let _ = env.tb.node_mut(napoli).vsys_collect(slice); // drain Start ack
    env.tb.node_mut(napoli).vsys_submit(slice, UmtsRequest::Status).unwrap();
    env.tb.run_for(Duration::from_millis(10));
    let responses = env.tb.node_mut(napoli).vsys_collect(slice);
    assert_eq!(responses.len(), 1);
    match &responses[0] {
        UmtsResponse::Status(st) => {
            assert_eq!(st.phase, UmtsPhase::Up);
            assert_eq!(st.owner, Some(slice));
            assert!(st.rrc.is_some());
        }
        other => panic!("expected status, got {other:?}"),
    }
}

#[test]
fn non_owner_cannot_stop_or_add_destinations() {
    let cfg = cfg_with(
        OperatorProfile::commercial_italy(),
        DeviceProfile::huawei_e620(),
        Some(Credentials::new("web", "web")),
        207,
    );
    let mut env = TwoNodeTestbed::build(&cfg);
    env.umts_up(Duration::from_secs(60)).unwrap();
    let napoli = env.napoli;
    let owner = env.umts_slice;
    let other = env.tb.node_mut(napoli).slices.create("second");
    env.tb.node_mut(napoli).grant_umts_access(other);

    env.tb.node_mut(napoli).vsys_submit(other, UmtsRequest::Stop).unwrap();
    env.tb
        .node_mut(napoli)
        .vsys_submit(other, UmtsRequest::AddDestination(Ipv4Cidr::host(INRIA_ADDR)))
        .unwrap();
    env.tb.run_for(Duration::from_millis(10));
    let responses = env.tb.node_mut(napoli).vsys_collect(other);
    assert_eq!(
        responses,
        vec![
            UmtsResponse::Error(UmtsCmdError::LockedByOtherSlice(owner)),
            UmtsResponse::Error(UmtsCmdError::LockedByOtherSlice(owner)),
        ]
    );
    // The connection is untouched.
    assert_eq!(env.tb.node(napoli).umts_status().phase, UmtsPhase::Up);
}
