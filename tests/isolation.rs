//! Slice-isolation integration tests: the property the paper's rule set
//! exists to enforce — only the slice holding the UMTS lock can push
//! packets through `ppp0`, and concurrent slices keep working over the
//! wired path untouched.

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;
use umtslab::testbed::TestbedDrops;
use umtslab_net::packet::PacketIdAllocator;
use umtslab_net::trace::TraceKind;
use umtslab_planetlab::node::{EgressAction, ETH0, PPP0};

use umtslab::{umtslab_net, umtslab_planetlab};

fn umts_testbed(seed: u64) -> TwoNodeTestbed {
    let cfg = ExperimentConfig::paper(FlowSpec::voip_g711(), PathKind::UmtsToEthernet, seed);
    let mut env = TwoNodeTestbed::build(&cfg);
    env.umts_up(Duration::from_secs(60)).expect("umts connects");
    env.register_destination();
    env
}

#[test]
fn foreign_slice_cannot_use_the_umts_interface() {
    let mut env = umts_testbed(101);
    let napoli = env.napoli;
    let intruder = env.tb.node_mut(napoli).slices.create("intruder");
    env.tb.node_mut(napoli).trace.set_enabled(true);
    let now = env.tb.now();
    let ppp = env.tb.node(napoli).ppp_addr().unwrap();
    let peer = env.tb.node(napoli).iface(PPP0).peer.unwrap();
    let mut ids = PacketIdAllocator::new();

    // Case 1: the intruder binds explicitly to the UMTS address.
    let p = Packet::udp(
        ids.allocate(),
        Endpoint::new(ppp, 7000),
        Endpoint::new(INRIA_ADDR, 7001),
        vec![0; 64],
        now,
    );
    match env.tb.node_mut(napoli).send_from_slice(now, intruder, p) {
        // Without the owner's mark the source rule does not fire, so the
        // packet either routes over eth0 (spoofed source) or is filtered.
        EgressAction::Wire { iface, .. } => assert_eq!(iface, ETH0),
        EgressAction::Dropped(kind) => assert_eq!(kind, TraceKind::DropFilter),
        other => panic!("intruder packet must not use ppp0: {other:?}"),
    }

    // Case 2: the intruder addresses the PPP peer directly, with a bogus
    // on-link route forcing ppp0 — the paper's "special case" covered by
    // the iptables drop rule.
    env.tb
        .node_mut(napoli)
        .rib
        .table_mut(umtslab_net::route::TableId::MAIN)
        .add(umtslab_net::route::Route::onlink(Ipv4Cidr::host(peer), PPP0));
    let p = Packet::udp(
        ids.allocate(),
        Endpoint::new(Ipv4Address::UNSPECIFIED, 7000),
        Endpoint::new(peer, 7001),
        vec![0; 64],
        now,
    );
    match env.tb.node_mut(napoli).send_from_slice(now, intruder, p) {
        EgressAction::Dropped(kind) => assert_eq!(kind, TraceKind::DropFilter),
        other => panic!("peer-addressed intruder packet must be filtered: {other:?}"),
    }

    // The isolation drop is visible in the trace.
    let drops: Vec<_> = env.tb.node(napoli).trace.of_kind(TraceKind::DropFilter).collect();
    assert!(!drops.is_empty());
}

#[test]
fn concurrent_wired_experiment_is_unaffected_by_umts_traffic() {
    let mut env = umts_testbed(102);
    let napoli = env.napoli;
    let inria = env.inria;
    let umts_slice = env.umts_slice;
    let probe_slice = env.probe_slice;

    // Another slice runs a wired flow at the same time as a UMTS flow.
    let other = env.tb.node_mut(napoli).slices.create("wired_exp");
    let start = env.tb.now() + Duration::from_millis(500);

    let mut umts_spec = FlowSpec::cbr_1mbps();
    umts_spec.duration = Duration::from_secs(10);
    let umts_tx = env.tb.add_sender(napoli, umts_slice, umts_spec, INRIA_ADDR, start);
    let umts_rx = env.tb.add_receiver(inria, probe_slice, 9_001, umts_tx, true);

    let mut wired_spec = FlowSpec::cbr(2_000_000, 1000, Duration::from_secs(10));
    wired_spec.sport = 8_000;
    wired_spec.dport = 8_001;
    let wired_tx = env.tb.add_sender(napoli, other, wired_spec, INRIA_ADDR, start);
    let wired_rx = env.tb.add_receiver(inria, probe_slice, 8_001, wired_tx, true);

    env.tb.run_for(Duration::from_secs(25));

    // The wired flow is pristine even though the UMTS flow saturates.
    let (wired_sent, wired_rtts) = env.tb.sender_logs(wired_tx);
    let wired_recv = env.tb.receiver_records(wired_rx);
    assert_eq!(wired_sent.len(), wired_recv.len(), "wired flow must not lose packets");
    let mean_rtt: u64 =
        wired_rtts.iter().map(|r| r.rtt.total_micros()).sum::<u64>() / wired_rtts.len() as u64;
    assert!(mean_rtt < 40_000, "wired rtt inflated to {mean_rtt}us by UMTS traffic");

    // Meanwhile the UMTS flow shows its signature saturation loss.
    let (umts_sent, _) = env.tb.sender_logs(umts_tx);
    let umts_recv = env.tb.receiver_records(umts_rx);
    assert!(umts_recv.len() < umts_sent.len() / 2, "UMTS flow should saturate and lose");
}

#[test]
fn umts_packets_never_leak_to_other_slices_sockets() {
    let mut env = umts_testbed(103);
    let napoli = env.napoli;
    let inria = env.inria;
    let umts_slice = env.umts_slice;
    let probe_slice = env.probe_slice;

    // An eavesdropper on the receiving node binds a *different* port.
    let eaves = env.tb.node_mut(inria).slices.create("eaves");
    env.tb.node_mut(inria).bind(eaves, 6_666).unwrap();

    let start = env.tb.now() + Duration::from_millis(100);
    let mut spec = FlowSpec::voip_g711();
    spec.duration = Duration::from_secs(5);
    let tx = env.tb.add_sender(napoli, umts_slice, spec, INRIA_ADDR, start);
    let rx = env.tb.add_receiver(inria, probe_slice, 9_001, tx, false);
    env.tb.run_for(Duration::from_secs(10));

    assert!(!env.tb.receiver_records(rx).is_empty());
    // Socket demultiplexing is by port: nothing arrives at the
    // eavesdropper's queue (its port never matches).
    assert!(env.tb.node_mut(inria).take_delivered().is_empty());
}

#[test]
fn operator_firewall_blocks_unsolicited_inbound() {
    let mut env = umts_testbed(104);
    let napoli = env.napoli;
    let inria = env.inria;
    let probe_slice = env.probe_slice;
    let ppp = env.tb.node(napoli).ppp_addr().unwrap();

    // The INRIA node tries to contact the UMTS address cold (the paper's
    // "cannot ssh to the UMTS host" observation).
    let intruder_spec = FlowSpec::cbr(8_000, 64, Duration::from_secs(2));
    let _tx = env.tb.add_sender(inria, probe_slice, intruder_spec, ppp, env.tb.now());
    env.tb.run_for(Duration::from_secs(5));

    let drops: TestbedDrops = env.tb.drops();
    assert!(drops.operator_firewall > 0, "unsolicited inbound must be firewalled: {drops:?}");
}
