//! Fault injection on the wired path: what the paper's Ethernet baseline
//! would look like over a degraded residential link instead of GÉANT.
//!
//! Builds a custom testbed whose access links inject bursty
//! (Gilbert–Elliott) loss, corruption and reordering, then runs the
//! paper's VoIP workload over it and decodes the damage — demonstrating
//! the `umtslab-net` fault machinery that smoltcp-style stacks use for
//! robustness testing.
//!
//! ```sh
//! cargo run --release --example fault_injection [loss_percent]
//! ```

use umtslab::prelude::*;
use umtslab::umtslab_net::fault::LossModel;
use umtslab::Testbed;

fn run(label: &str, fault: umtslab::umtslab_net::fault::FaultConfig) {
    let mut tb = Testbed::new(99);
    let mut access = LinkConfig::wired(100_000_000, Duration::from_millis(6));
    access.fault = fault;
    let a = tb.add_node(
        "alpha",
        Ipv4Address::new(10, 1, 0, 2),
        "10.1.0.0/24".parse().unwrap(),
        Ipv4Address::new(10, 1, 0, 1),
        access.clone(),
    );
    let b = tb.add_node(
        "beta",
        Ipv4Address::new(10, 2, 0, 2),
        "10.2.0.0/24".parse().unwrap(),
        Ipv4Address::new(10, 2, 0, 1),
        access,
    );
    let s_tx = tb.node_mut(a).slices.create("tx");
    let s_rx = tb.node_mut(b).slices.create("rx");

    let mut spec = FlowSpec::voip_g711();
    spec.duration = Duration::from_secs(30);
    let dport = spec.dport;
    let tx = tb.add_sender(a, s_tx, spec, Ipv4Address::new(10, 2, 0, 2), Instant::ZERO);
    let rx = tb.add_receiver(b, s_rx, dport, tx, true);
    tb.run_until(Instant::from_secs(40));

    let (sent, rtts) = tb.sender_logs(tx);
    let recv = tb.receiver_records(rx);
    let decoder = Decoder::paper();
    let summary = decoder.summary(sent, recv, rtts);
    println!(
        "{label:<28} loss={:>5.1}%  jitter={:>9}  mean rtt={:>9}",
        summary.loss_rate * 100.0,
        summary.mean_jitter.map_or_else(|| "-".into(), |d| d.to_string()),
        summary.mean_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
    );
}

fn main() {
    let p: f64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5.0) / 100.0;

    println!("== VoIP over progressively nastier wired links ==\n");
    run("clean", umtslab::umtslab_net::fault::FaultConfig::none());
    run(
        &format!("bernoulli loss {:.0}%", p * 100.0),
        umtslab::umtslab_net::fault::FaultConfig {
            loss: LossModel::Bernoulli { p },
            ..Default::default()
        },
    );
    run(
        "bursty (Gilbert-Elliott)",
        umtslab::umtslab_net::fault::FaultConfig {
            loss: LossModel::GilbertElliott {
                p_gb: 0.02,
                p_bg: 0.25,
                loss_good: 0.001,
                loss_bad: 0.5,
            },
            ..Default::default()
        },
    );
    run(
        "corruption 3%",
        umtslab::umtslab_net::fault::FaultConfig { corrupt_prob: 0.03, ..Default::default() },
    );
    run(
        "reordering 5% (+30ms)",
        umtslab::umtslab_net::fault::FaultConfig {
            reorder_prob: 0.05,
            reorder_delay: Duration::from_millis(30),
            ..Default::default()
        },
    );
    println!("\nCorrupted packets are counted as loss: the receiving stack");
    println!("discards them on checksum failure, exactly like real UDP.");
}
