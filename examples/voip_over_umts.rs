//! VoIP feasibility study (the paper's Figures 1–3 scenario): a G.711-like
//! 72 kbps call over the UMTS path versus the wired path, with a verdict
//! on call quality.
//!
//! ```sh
//! cargo run --release --example voip_over_umts [seconds] [seed]
//! ```

use umtslab::experiment::{run_experiment, ExperimentConfig};
use umtslab::paper::{metric_points, Metric, Workload};
use umtslab::prelude::*;
use umtslab::umtslab_ditg::VoipCodec;
use umtslab::{run_workload, summary_row, PathKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let duration = Some(Duration::from_secs(secs));

    println!("== VoIP over UMTS vs Ethernet ({secs} s, seed {seed}) ==\n");
    let umts = run_workload(Workload::VoipG711, PathKind::UmtsToEthernet, seed, duration)
        .expect("umts run");
    let eth = run_workload(Workload::VoipG711, PathKind::EthernetToEthernet, seed, duration)
        .expect("ethernet run");

    println!("{}", summary_row(&umts));
    println!("{}", summary_row(&eth));

    // ITU-T G.114-style verdict: one-way delay under 150 ms is "good",
    // under 400 ms "acceptable"; jitter beyond ~50 ms strains the playout
    // buffer.
    let owd = umts.summary.mean_owd.expect("packets received");
    let jitter = umts.summary.mean_jitter.expect("jitter computed");
    let verdict = if owd <= Duration::from_millis(150) && jitter <= Duration::from_millis(20) {
        "good"
    } else if owd <= Duration::from_millis(400) && jitter <= Duration::from_millis(50) {
        "acceptable (satisfying for users, as the paper concludes)"
    } else {
        "poor"
    };
    println!("\nUMTS call quality: one-way delay {owd}, jitter {jitter} -> {verdict}");

    // A glimpse of the Figure-2 series.
    println!("\nfirst seconds of the jitter series [s] (UMTS path):");
    for (t, v) in metric_points(&umts, Metric::Jitter).into_iter().take(15) {
        let bar = "#".repeat(((v * 1000.0) as usize).min(60));
        println!("  t={t:>5.1}s {v:.4} {bar}");
    }

    // Codec sensitivity: lighter codecs trade bandwidth for robustness.
    println!("\ncodec comparison over the same UMTS link ({}s each):", secs.min(15));
    for codec in [VoipCodec::G711, VoipCodec::G729, VoipCodec::G7231] {
        let spec = FlowSpec::voip_codec(codec, Duration::from_secs(secs.min(15)));
        let cfg = ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, seed + 7);
        match run_experiment(cfg) {
            Ok(r) => println!("  {}", summary_row(&r)),
            Err(e) => println!("  {codec:?}: {e}"),
        }
    }
}
