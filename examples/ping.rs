//! A `ping` clone over the simulated network — and a demonstration that
//! the library layers compose outside the [`umtslab::Testbed`]: this
//! example wires two nodes with a raw duplex link and runs its own event
//! loop on the `umtslab-sim` scheduler. Every packet is also captured to a
//! Wireshark-readable `ping.pcap`.
//!
//! ```sh
//! cargo run --example ping -- [count]
//! ```

use umtslab::prelude::*;
use umtslab::umtslab_net::icmp;
use umtslab::umtslab_net::link::{DuplexLink, PushOutcome};
use umtslab::umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab::umtslab_net::pcap::PcapWriter;
use umtslab::umtslab_planetlab::node::ETH0;
use umtslab::umtslab_sim::{Scheduler, SimRng};

enum Ev {
    /// Send the next echo request.
    Tick(u16),
    /// A packet arrives at a node (0 = pinger, 1 = target).
    Arrive(usize, Packet),
}

fn main() {
    let count: u16 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);

    // Two hosts on a 100 Mbps link with 9 ms one-way delay and a little
    // jitter — a plausible wide-area path.
    let mut pinger = Node::new("pinger");
    pinger.configure_eth(
        Ipv4Address::new(10, 0, 0, 1),
        "10.0.0.0/24".parse().unwrap(),
        Ipv4Address::new(10, 0, 0, 254),
    );
    let mut target = Node::new("target");
    target.configure_eth(
        Ipv4Address::new(10, 0, 0, 2),
        "10.0.0.0/24".parse().unwrap(),
        Ipv4Address::new(10, 0, 0, 254),
    );
    let mut nodes = [pinger, target];
    let mut link = DuplexLink::symmetric({
        let mut cfg = LinkConfig::wired(100_000_000, Duration::from_millis(9));
        cfg.jitter = umtslab::prelude::JitterModel::Uniform { max: Duration::from_millis(2) };
        cfg
    });

    let mut sched: Scheduler<Ev> = Scheduler::new();
    let mut rng = SimRng::seed_from_u64(4);
    let mut ids = PacketIdAllocator::new();
    let mut pcap = PcapWriter::new(std::fs::File::create("ping.pcap").expect("create pcap"))
        .expect("pcap header");
    let ident = std::process::id() as u16;
    let target_addr = Ipv4Address::new(10, 0, 0, 2);

    println!("PING {target_addr} ({target_addr}) {} bytes of data.", 56);
    sched.at(Instant::ZERO, Ev::Tick(0));
    let mut received = 0u32;

    while let Some(ev) = sched.next_before(Instant::from_secs(u64::from(count) + 5)) {
        let now = sched.now();
        match ev {
            Ev::Tick(seq) => {
                // Encode the transmit time in the echo data, like real ping.
                let data = now.total_micros().to_be_bytes();
                let mut payload = vec![0u8; 56];
                payload[..8].copy_from_slice(&data);
                let req = icmp::echo_request(
                    ids.allocate(),
                    Ipv4Address::new(10, 0, 0, 1),
                    target_addr,
                    ident,
                    seq,
                    &payload,
                    now,
                );
                let _ = pcap.record_raw(now, &icmp_wire(&req));
                match link.forward.push(now, req, &mut rng) {
                    PushOutcome::Scheduled(v) => {
                        for (at, p) in v {
                            sched.at(at, Ev::Arrive(1, p));
                        }
                    }
                    PushOutcome::Dropped { .. } => println!("request {seq} lost"),
                }
                if seq + 1 < count {
                    sched.after(Duration::from_secs(1), Ev::Tick(seq + 1));
                }
            }
            Ev::Arrive(node_idx, packet) => {
                let _ = nodes[node_idx].ingress(now, ETH0, packet);
                // Drain kernel replies (the target answering) and inbox
                // (the pinger receiving).
                let out = nodes[node_idx].poll(now);
                for reply in out.wire_tx {
                    let _ = pcap.record_raw(now, &icmp_wire(&reply));
                    let pipe = if node_idx == 1 { &mut link.reverse } else { &mut link.forward };
                    if let PushOutcome::Scheduled(v) = pipe.push(now, reply, &mut rng) {
                        for (at, p) in v {
                            sched.at(at, Ev::Arrive(1 - node_idx, p));
                        }
                    }
                }
                for (at, reply) in nodes[node_idx].take_icmp() {
                    if let Some(echo) = icmp::parse_echo(&reply) {
                        let tx = u64::from_be_bytes(echo.data[..8].try_into().unwrap());
                        let rtt_us = at.total_micros() - tx;
                        received += 1;
                        println!(
                            "64 bytes from {}: icmp_seq={} ttl=64 time={:.1} ms",
                            reply.src.addr,
                            echo.seq,
                            rtt_us as f64 / 1000.0
                        );
                    }
                }
            }
        }
    }

    println!("\n--- {target_addr} ping statistics ---");
    println!(
        "{count} packets transmitted, {received} received, {:.0}% packet loss",
        (f64::from(count) - f64::from(received)) / f64::from(count) * 100.0
    );
    let file = pcap.finish().expect("flush pcap");
    drop(file);
    println!("packet capture written to ping.pcap ({} records)", count * 2);
}

/// Serializes an ICMP packet to raw IP bytes for the capture (the UDP
/// serializer does not apply; build an IPv4 header around the ICMP body).
fn icmp_wire(p: &Packet) -> Vec<u8> {
    use umtslab::umtslab_net::wire::{Ipv4PacketView, Protocol, IPV4_HEADER_LEN};
    let mut buf = vec![0u8; IPV4_HEADER_LEN + p.payload.len()];
    buf[IPV4_HEADER_LEN..].copy_from_slice(&p.payload);
    let mut v = Ipv4PacketView::new_unchecked(&mut buf[..]);
    v.init_defaults();
    v.set_protocol(Protocol::Icmp);
    v.set_src_addr(p.src.addr);
    v.set_dst_addr(p.dst.addr);
    v.fill_checksum();
    buf
}
