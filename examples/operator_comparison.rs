//! Operator comparison: the paper's point that nodes can use "a Telecom
//! Operator of choice" — here the commercial Italian network versus the
//! Alcatel-Lucent private micro-cell, compared on the same workload.
//!
//! ```sh
//! cargo run --release --example operator_comparison [seconds] [seed]
//! ```

use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
use umtslab::prelude::*;
use umtslab::summary_row;

fn run_with(operator: OperatorProfile, creds: Credentials, secs: u64, seed: u64) {
    let mut spec = FlowSpec::voip_g711();
    spec.duration = Duration::from_secs(secs);
    let mut cfg = ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, seed);
    let name = operator.name.clone();
    cfg.operator = operator;
    cfg.credentials = Some(creds);
    match run_experiment(cfg) {
        Ok(r) => {
            println!("--- {name} ---");
            println!(
                "  connected in {}",
                r.connect_time.map_or_else(|| "-".into(), |d| d.to_string())
            );
            println!("  {}", summary_row(&r));
        }
        Err(e) => println!("--- {name} --- failed: {e}"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(3);

    println!("== same workload, two operators ({secs} s, seed {seed}) ==\n");
    run_with(OperatorProfile::commercial_italy(), Credentials::new("web", "web"), secs, seed);
    run_with(
        OperatorProfile::private_microcell(),
        Credentials::new("onelab", "onelab"),
        secs,
        seed,
    );
    run_with(OperatorProfile::gprs_fallback(), Credentials::new("web", "web"), secs, seed);
    println!("\nThe micro-cell shows lower latency and cleaner radio — the");
    println!("terminal sits meters from the antenna — while the commercial");
    println!("network adds core-network delay, deeper buffers and an inbound");
    println!("firewall (the reason the paper keeps ssh on the wired path).");
    println!("The GPRS fallback cannot even carry the 72 kbps call: the");
    println!("42 kbps uplink saturates, which is exactly why the paper's");
    println!("heterogeneity argument needed UMTS-class access.");
}
