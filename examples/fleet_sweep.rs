//! A seed sweep over the fleet scenario, sharded by `umtslab-runner`.
//!
//! The `fleet` example shows one run of a multi-operator fleet; this one
//! repeats a compact two-node fleet (one commercial-UMTS node, one GPRS
//! node, one wired sink) across many seeds in parallel, then aggregates
//! every run's testbed metrics in a [`umtslab_runner::MetricsRegistry`].
//! Because every job owns its seed and its private [`umtslab::Testbed`],
//! the table is identical for any worker count.
//!
//! After each run the static slice-isolation verifier (`umtslab-verify`)
//! sweeps every node of the job's testbed; the summary table's `verified`
//! column reports the per-job verdict.
//!
//! ```sh
//! cargo run --release -p umtslab-runner --example fleet_sweep [reps] [seconds] [workers]
//! ```

use umtslab::prelude::*;
use umtslab::Testbed;
use umtslab_runner::{default_workers, run_jobs, MetricsRegistry};

/// Per-run outcome: flow stats, the metrics snapshot and the static
/// isolation verdict over every node in the testbed.
struct RunOutcome {
    loss: f64,
    mean_rtt_ms: f64,
    metrics: umtslab::TestbedMetrics,
    verified_ok: bool,
    violations: usize,
}

/// One fleet run: dial both 3G nodes, probe the sink, return the flow
/// outcome plus the testbed-wide metrics snapshot.
fn fleet_run(seed: u64, secs: u64) -> RunOutcome {
    let mut tb = Testbed::new(seed);
    let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));

    let sink = tb.add_node(
        "sink.inria.fr",
        Ipv4Address::new(138, 96, 20, 10),
        "138.96.20.0/24".parse().unwrap(),
        Ipv4Address::new(138, 96, 20, 1),
        access.clone(),
    );
    let sink_slice = tb.node_mut(sink).slices.create("sink");

    let fleet: Vec<(&str, OperatorProfile, Credentials)> = vec![
        ("unina", OperatorProfile::commercial_italy(), Credentials::new("web", "web")),
        ("legacy", OperatorProfile::gprs_fallback(), Credentials::new("web", "web")),
    ];

    let mut flows = Vec::new();
    let mut members = Vec::new();
    for (i, (name, operator, creds)) in fleet.into_iter().enumerate() {
        let addr = Ipv4Address::new(10, 10 + i as u8, 0, 2);
        let node = tb.add_node(
            format!("{name}.onelab.eu"),
            addr,
            Ipv4Cidr::new(addr, 24),
            Ipv4Address::new(10, 10 + i as u8, 0, 1),
            access.clone(),
        );
        tb.attach_umts(node, operator, DeviceProfile::option_globetrotter(), Some(creds));
        let slice = tb.node_mut(node).slices.create("umts_exp");
        tb.node_mut(node).grant_umts_access(slice);
        tb.node_mut(node).vsys_submit(slice, UmtsRequest::Start).expect("granted");
        members.push((node, slice));
    }

    tb.run_until(Instant::from_secs(30));

    for (i, (node, slice)) in members.iter().enumerate() {
        tb.node_mut(*node)
            .vsys_submit(
                *slice,
                UmtsRequest::AddDestination(Ipv4Cidr::host(Ipv4Address::new(138, 96, 20, 10))),
            )
            .expect("granted");
        let mut spec = FlowSpec::cbr(64_000, 200, Duration::from_secs(secs));
        spec.sport = 9_000 + (i as u16) * 10;
        spec.dport = 9_001 + (i as u16) * 10;
        let dport = spec.dport;
        let start = tb.now() + Duration::from_millis(500);
        let tx = tb.add_sender(*node, *slice, spec, Ipv4Address::new(138, 96, 20, 10), start);
        let rx = tb.add_receiver(sink, sink_slice, dport, tx, true);
        flows.push((tx, rx));
    }

    tb.run_for(Duration::from_secs(secs + 15));

    let mut sent_total = 0usize;
    let mut recv_total = 0usize;
    let mut rtt_sum = 0.0f64;
    let mut rtt_n = 0usize;
    for (tx, rx) in &flows {
        let (sent, rtts) = tb.sender_logs(*tx);
        sent_total += sent.len();
        recv_total += tb.receiver_records(*rx).len();
        rtt_sum += rtts.iter().map(|r| r.rtt.as_secs_f64()).sum::<f64>();
        rtt_n += rtts.len();
    }
    let loss = (sent_total - recv_total) as f64 / sent_total.max(1) as f64 * 100.0;
    let mean_rtt_ms = if rtt_n == 0 { 0.0 } else { rtt_sum / rtt_n as f64 * 1000.0 };

    // Static isolation sweep over every node of this run's testbed.
    let violations: usize =
        tb.nodes().map(|node| umtslab_verify::verify_node(node).violations.len()).sum();

    RunOutcome {
        loss,
        mean_rtt_ms,
        metrics: tb.metrics(),
        verified_ok: violations == 0,
        violations,
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let reps: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(6);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    let workers: usize =
        args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| default_workers(reps));

    println!("fleet seed sweep — {reps} run(s) of {secs} s, {workers} worker(s)\n");

    let seeds: Vec<u64> = (0..reps as u64).map(|r| 2008 + r * 7919).collect();
    let registry = MetricsRegistry::new();
    let started = std::time::Instant::now();
    let outcomes = run_jobs(seeds.clone(), workers, |idx, seed| {
        let job_started = std::time::Instant::now();
        let run = fleet_run(*seed, secs);
        registry.record(
            idx,
            format!("fleet/seed-{seed}"),
            *seed,
            run.metrics,
            job_started.elapsed(),
        );
        registry.set_verified(idx, run.verified_ok, run.violations);
        (run.loss, run.mean_rtt_ms, run.verified_ok)
    });

    println!(
        "{:<8} {:>12} {:>10} {:>14} {:>10}",
        "run", "seed", "loss %", "mean rtt ms", "verified"
    );
    for (i, (seed, (loss, rtt, ok))) in seeds.iter().zip(&outcomes).enumerate() {
        println!(
            "{:<8} {:>12} {:>9.1}% {:>14.1} {:>10}",
            i,
            seed,
            loss,
            rtt,
            if *ok { "yes" } else { "no" }
        );
    }

    println!("\n== metrics registry ==");
    print!("{}", registry.summary_table());
    println!(
        "\nsharded wall time: {:.2} s (results independent of worker count)",
        started.elapsed().as_secs_f64()
    );
}
