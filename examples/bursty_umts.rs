//! The bursty-UMTS campaign: the paper's VoIP workload on a path that
//! fades like the commercial 3G radio.
//!
//! `FaultConfig::bursty_umts()` is a Gilbert–Elliott loss process fitted
//! to the clustered losses the paper measures on the commercial uplink:
//! long clean stretches punctuated by fade bursts that eat most packets
//! for a few hundred milliseconds. This example runs the 72 kbps G.711
//! flow through the paper's two-node experiment three times — clean path,
//! the bursty preset, and a Bernoulli process *matched to the same
//! marginal loss rate* — and compares the 200 ms windowed series. The
//! marginal rates agree, but the burst structure does not: the
//! Gilbert–Elliott run concentrates its losses in a handful of ruined
//! windows while the Bernoulli run smears them thinly everywhere, which
//! is exactly why a mean loss figure alone cannot characterise a 3G path.
//!
//! ```sh
//! cargo run --release --example bursty_umts [seed]
//! ```

use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
use umtslab::prelude::*;
use umtslab::umtslab_net::fault::{FaultConfig, LossModel};

/// Stationary marginal loss probability of a loss process.
fn marginal_loss(model: &LossModel) -> f64 {
    match *model {
        LossModel::None => 0.0,
        LossModel::Bernoulli { p } => p,
        LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
            // Stationary probability of the bad state of the two-state
            // Markov chain, then the state-weighted loss probability.
            let pi_bad = p_gb / (p_gb + p_bg);
            pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
        }
    }
}

struct WindowStats {
    total: usize,
    lossy: usize,
    worst: f64,
}

fn run(label: &str, fault: FaultConfig, seed: u64) {
    let mut spec = FlowSpec::voip_g711();
    spec.duration = Duration::from_secs(60);
    let mut cfg = ExperimentConfig::paper(spec, PathKind::EthernetToEthernet, seed);
    cfg.access_fault = fault;
    let result = run_experiment(cfg).expect("wired path always comes up");

    let mut w = WindowStats { total: 0, lossy: 0, worst: 0.0 };
    for p in &result.series.points {
        let offered = p.received + p.lost;
        if offered == 0 {
            continue;
        }
        w.total += 1;
        let rate = p.lost as f64 / offered as f64;
        if p.lost > 0 {
            w.lossy += 1;
        }
        if rate > w.worst {
            w.worst = rate;
        }
    }
    println!(
        "{label:<24} loss={:>5.2}%  lossy windows={:>3}/{:<3}  worst window={:>5.1}%  jitter={}",
        result.summary.loss_rate * 100.0,
        w.lossy,
        w.total,
        w.worst * 100.0,
        result.summary.mean_jitter.map_or_else(|| "-".into(), |d| d.to_string()),
    );
}

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2008);

    let bursty = FaultConfig::bursty_umts();
    let p = marginal_loss(&bursty.loss);
    println!("== VoIP over a path that fades like the 3G radio (seed {seed}) ==");
    println!("(Gilbert–Elliott preset, stationary marginal loss {:.2}%)\n", p * 100.0);

    run("clean (GEANT)", FaultConfig::none(), seed);
    run("bursty-UMTS (GE)", bursty, seed);
    run(
        "Bernoulli (matched)",
        FaultConfig { loss: LossModel::Bernoulli { p }, ..Default::default() },
        seed,
    );

    println!("\nSame marginal loss, different damage: the Gilbert–Elliott");
    println!("channel ruins a few windows completely (a G.711 call glitches");
    println!("audibly) while the matched Bernoulli channel thinly wounds many");
    println!("windows (concealable by the codec). Mean loss hides this.");
}
