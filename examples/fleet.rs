//! The UMTS fleet at scale: one coupled topology — a thousand-plus
//! 3G-equipped PlanetLab nodes across the paper's three operator
//! networks, every node running ~100 concurrent measurement sessions to
//! a pool of wired sinks — partitioned across N deterministic schedulers
//! ([`umtslab::ShardedTestbed`]) and driven in parallel on a worker
//! pool. The printed `trace_hash` is invariant under the shard and
//! worker counts: partitioning changes wall time, never results.
//!
//! ```sh
//! cargo run --release --example fleet -- [--nodes N] [--shards N] [--seconds N]
//! ```
//!
//! Scale knobs:
//!
//! * `--nodes N` — UMTS member nodes (default 1024);
//! * `--shards N` — schedulers the topology is partitioned across
//!   (default 1; try 4 or 8 and compare hashes and wall time);
//! * `--seconds N` — measurement window in simulated seconds (default 10);
//! * `--flows-per-node N` — concurrent probe sessions per node (default
//!   100, so the default fleet carries >100,000 concurrent sessions);
//! * `--sinks N` — wired measurement servers the sessions fan into
//!   (default 16);
//! * `--seed N` — master seed (default 2008).
//!
//! Payload memory stays bounded at this scale because delivered probe
//! payloads are recycled through a `BufferPool` instead of reallocated.

use umtslab::fleet::FleetConfig;
use umtslab_runner::{default_workers, run_fleet_parallel};

fn parse_num(it: &mut std::slice::Iter<'_, String>, flag: &str) -> u64 {
    it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("error: {flag} needs a numeric value");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = FleetConfig::demo();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--nodes" => cfg.nodes = parse_num(&mut it, a) as usize,
            "--shards" => cfg.shards = parse_num(&mut it, a) as usize,
            "--seconds" => cfg.seconds = parse_num(&mut it, a),
            "--flows-per-node" => cfg.flows_per_node = parse_num(&mut it, a) as usize,
            "--sinks" => cfg.sinks = parse_num(&mut it, a) as usize,
            "--seed" => cfg.seed = parse_num(&mut it, a),
            _ => {
                eprintln!(
                    "usage: fleet [--nodes N] [--shards N] [--seconds N] \
                     [--flows-per-node N] [--sinks N] [--seed N]"
                );
                std::process::exit(2);
            }
        }
    }

    let workers = default_workers(cfg.shards);
    println!(
        "fleet: {} UMTS nodes x {} sessions = {} concurrent sessions -> {} sinks",
        cfg.nodes,
        cfg.flows_per_node,
        cfg.flows(),
        cfg.sinks
    );
    println!(
        "driving {} shard(s) on {} worker(s), {} s measurement window, seed {}",
        cfg.shards, workers, cfg.seconds, cfg.seed
    );

    let report = run_fleet_parallel(&cfg, workers);

    println!();
    println!("ppp sessions up:  {:>12} / {}", report.ppp_up, report.nodes);
    println!("probes sent:      {:>12}", report.sent);
    println!("probes received:  {:>12}", report.received);
    println!("rtt samples:      {:>12}", report.rtt_count);
    println!("scheduler events: {:>12}", report.metrics.events);
    println!(
        "radio packets:    {:>12} up / {} down",
        report.metrics.uplink.served, report.metrics.downlink.served
    );
    let c = umtslab::umtslab_net::copy_counters();
    println!("payload copies:   {:>12} deep ({} bytes materialized)", c.copies, c.bytes);
    println!();
    println!("trace_hash=0x{:016x}", report.trace_hash);
}
