//! A UMTS-equipped fleet: the paper's stated aim was "to provide every
//! node of the testbed with the possibility of using a UMTS interface".
//! This example attaches 3G cards to four PlanetLab nodes across three
//! different operator networks, dials them all concurrently, and runs
//! simultaneous measurement flows to one wired sink.
//!
//! ```sh
//! cargo run --release --example fleet [seconds]
//! ```

use umtslab::prelude::*;
use umtslab::Testbed;

fn main() {
    let secs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20);

    let mut tb = Testbed::new(2008);
    let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));

    // One wired sink (the measurement server).
    let sink = tb.add_node(
        "sink.inria.fr",
        Ipv4Address::new(138, 96, 20, 10),
        "138.96.20.0/24".parse().unwrap(),
        Ipv4Address::new(138, 96, 20, 1),
        access.clone(),
    );
    let sink_slice = tb.node_mut(sink).slices.create("sink");

    // Four 3G-equipped nodes across three operators (two share one).
    let fleet: Vec<(&str, OperatorProfile, Credentials)> = vec![
        ("unina-1", OperatorProfile::commercial_italy(), Credentials::new("web", "web")),
        ("unina-2", OperatorProfile::commercial_italy(), Credentials::new("web", "web")),
        ("vimercate", OperatorProfile::private_microcell(), Credentials::new("onelab", "onelab")),
        ("legacy", OperatorProfile::gprs_fallback(), Credentials::new("web", "web")),
    ];

    let mut members = Vec::new();
    let mut flows: Vec<(umtslab::AgentId, umtslab::AgentId)> = Vec::new();
    for (i, (name, operator, creds)) in fleet.into_iter().enumerate() {
        let addr = Ipv4Address::new(10, 10 + i as u8, 0, 2);
        let node = tb.add_node(
            format!("{name}.onelab.eu"),
            addr,
            Ipv4Cidr::new(addr, 24),
            Ipv4Address::new(10, 10 + i as u8, 0, 1),
            access.clone(),
        );
        let op_name = operator.name.clone();
        tb.attach_umts(node, operator, DeviceProfile::option_globetrotter(), Some(creds));
        let slice = tb.node_mut(node).slices.create("umts_exp");
        tb.node_mut(node).grant_umts_access(slice);
        tb.node_mut(node).vsys_submit(slice, UmtsRequest::Start).expect("granted");
        members.push((node, slice, op_name));
    }

    // Everyone dials at once.
    println!("dialing {} nodes concurrently...\n", members.len());
    tb.run_until(Instant::from_secs(30));

    for (i, (node, slice, op)) in members.iter().enumerate() {
        let status = tb.node(*node).umts_status();
        println!(
            "{:<22} {:<18} phase={:?} ppp0={}",
            tb.node(*node).name,
            op,
            status.phase,
            status.local_addr.map_or_else(|| "-".into(), |a| a.to_string())
        );
        // Register the sink and start a flow on a distinct port pair.
        tb.node_mut(*node)
            .vsys_submit(
                *slice,
                UmtsRequest::AddDestination(Ipv4Cidr::host(Ipv4Address::new(138, 96, 20, 10))),
            )
            .expect("granted");
        let mut spec = FlowSpec::cbr(64_000, 200, Duration::from_secs(secs));
        spec.sport = 9_000 + (i as u16) * 10;
        spec.dport = 9_001 + (i as u16) * 10;
        let dport = spec.dport;
        let start = tb.now() + Duration::from_millis(500);
        let tx = tb.add_sender(*node, *slice, spec, Ipv4Address::new(138, 96, 20, 10), start);
        let rx = tb.add_receiver(sink, sink_slice, dport, tx, true);
        flows.push((tx, rx));
    }

    tb.run_for(Duration::from_secs(secs + 15));

    println!("\nper-node 64 kbps probe flow results:");
    for (i, (tx, rx)) in flows.iter().enumerate() {
        let (sent, rtts) = tb.sender_logs(*tx);
        let recv = tb.receiver_records(*rx);
        let mean_rtt = if rtts.is_empty() {
            0.0
        } else {
            rtts.iter().map(|r| r.rtt.as_secs_f64()).sum::<f64>() / rtts.len() as f64 * 1000.0
        };
        println!(
            "  node {}: sent {:>4}  received {:>4}  loss {:>5.1}%  mean rtt {:>8.1} ms",
            i,
            sent.len(),
            recv.len(),
            (sent.len() - recv.len()) as f64 / sent.len().max(1) as f64 * 100.0,
            mean_rtt
        );
    }
    println!("\nNodes on the same commercial operator hold disjoint addresses;");
    println!("the GPRS node struggles even at 64 kbps — access heterogeneity,");
    println!("which is exactly what the paper set out to add to PlanetLab.");
}
