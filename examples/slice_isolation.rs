//! Slice isolation demo: the usage model of the paper's Section 2.2 —
//! one slice at a time owns the UMTS interface, enforced by the vsys ACL,
//! the interface lock, and the iptables-style drop rule.
//!
//! ```sh
//! cargo run --example slice_isolation
//! ```

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;
use umtslab::umtslab_net::packet::PacketIdAllocator;
use umtslab::umtslab_planetlab::node::EgressAction;

fn main() {
    let cfg = ExperimentConfig::paper(FlowSpec::voip_g711(), PathKind::UmtsToEthernet, 7);
    let mut env = TwoNodeTestbed::build(&cfg);
    let napoli = env.napoli;

    println!("== slice isolation on the UMTS interface ==\n");

    // A second slice exists on the node but is NOT in the vsys ACL.
    let outsider = env.tb.node_mut(napoli).slices.create("outsider");
    match env.tb.node_mut(napoli).vsys_submit(outsider, UmtsRequest::Start) {
        Err(e) => println!("[vsys] outsider slice denied: {e:?}"),
        Ok(()) => println!("[vsys] BUG: outsider was allowed!"),
    }

    // The authorized slice connects.
    let dialed = env.umts_up(Duration::from_secs(60)).expect("dial-up succeeds");
    env.register_destination();
    println!("[umts] owner slice connected in {dialed}");

    // A second *authorized* slice still cannot start: the interface lock.
    let rival = env.tb.node_mut(napoli).slices.create("rival");
    env.tb.node_mut(napoli).grant_umts_access(rival);
    env.tb.node_mut(napoli).vsys_submit(rival, UmtsRequest::Start).unwrap();
    env.tb.run_for(Duration::from_millis(10));
    for resp in env.tb.node_mut(napoli).vsys_collect(rival) {
        println!("[umts] rival start -> {resp:?}");
    }

    // Data-plane enforcement: the rival tries to push a packet out ppp0 by
    // binding to the UMTS address.
    let now = env.tb.now();
    let ppp = env.tb.node(napoli).ppp_addr().unwrap();
    let mut ids = PacketIdAllocator::new();
    let p = Packet::udp(
        ids.allocate(),
        Endpoint::new(ppp, 7000),
        Endpoint::new(INRIA_ADDR, 7001),
        vec![0; 64],
        now,
    );
    match env.tb.node_mut(napoli).send_from_slice(now, rival, p) {
        EgressAction::Wire { .. } => {
            println!("[data] rival packet fell through to eth0 (no UMTS rule matched)");
        }
        EgressAction::Dropped(kind) => println!("[data] rival packet dropped: {kind}"),
        other => println!("[data] unexpected: {other:?}"),
    }

    // While the owner's traffic sails through.
    let owner = env.umts_slice;
    let p = Packet::udp(
        ids.allocate(),
        Endpoint::new(Ipv4Address::UNSPECIFIED, 9000),
        Endpoint::new(INRIA_ADDR, 9001),
        vec![0; 64],
        now,
    );
    match env.tb.node_mut(napoli).send_from_slice(now, owner, p) {
        EgressAction::Umts => println!("[data] owner packet queued on the UMTS uplink"),
        other => println!("[data] unexpected: {other:?}"),
    }

    // The paper's `umts status` output.
    println!("\n$ umts status");
    print!(
        "{}",
        umtslab::umtslab_planetlab::umtscmd::render_status(&env.tb.node(napoli).umts_status())
    );

    // Show the installed state, iproute2/iptables style.
    let node = env.tb.node(napoli);
    println!("\n$ ip rule show");
    for r in node.rib.rules() {
        println!("  {}: {:?} lookup table {}", r.priority, r.selector, r.table.0);
    }
    println!("$ iptables -L POSTROUTING");
    for r in node.firewall.egress.rules() {
        println!("  {:?} -> {:?} ({}), {} hits", r.matcher, r.target, r.comment, r.hits);
    }
}
