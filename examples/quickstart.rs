//! Quickstart: bring up a UMTS connection on a simulated PlanetLab node
//! and push a few packets through it — the "hello world" of the testbed.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;

fn main() {
    // The testbed of the paper's Section 3: a 3G-equipped node in Napoli
    // and a wired node at INRIA. Everything is simulated and seeded.
    let cfg = ExperimentConfig::paper(FlowSpec::voip_g711(), PathKind::UmtsToEthernet, 42);
    let mut env = TwoNodeTestbed::build(&cfg);

    println!("== umtslab quickstart ==");
    println!("node: {}", env.tb.node(env.napoli).name);
    println!("operator: {}", cfg.operator.name);

    // `umts start` — what a slice user runs through vsys. This registers
    // on the network, dials, and negotiates PPP.
    let dialed = env.umts_up(Duration::from_secs(60)).expect("dial-up succeeds");
    let status = env.tb.node(env.napoli).umts_status();
    println!("connected in {dialed}");
    println!("ppp0 address: {}", status.local_addr.expect("address assigned"));
    println!("rrc state: {:?}", status.rrc.expect("rrc reported"));

    // `umts add destination` — route the INRIA node over the 3G link.
    env.register_destination();
    println!("registered destination: {INRIA_ADDR}");

    // A short probe flow from the UMTS slice to the wired node.
    let start = env.tb.now() + Duration::from_millis(500);
    let mut spec = FlowSpec::voip_g711();
    spec.duration = Duration::from_secs(5);
    let dport = spec.dport;
    let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);
    env.tb.run_for(Duration::from_secs(10));

    let (sent, rtts) = env.tb.sender_logs(tx);
    let recv = env.tb.receiver_records(rx);
    let mean_rtt_us: u64 = if rtts.is_empty() {
        0
    } else {
        rtts.iter().map(|r| r.rtt.total_micros()).sum::<u64>() / rtts.len() as u64
    };
    println!("\nprobe flow over the UMTS link:");
    println!("  sent {} packets, received {}", sent.len(), recv.len());
    println!("  mean RTT {:.1} ms", mean_rtt_us as f64 / 1000.0);
    println!("  simulated {} events", env.tb.events_processed());
}
