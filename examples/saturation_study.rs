//! Uplink saturation study (the paper's Figures 4–7 scenario): a 1 Mbps
//! CBR flow against a ~150→400 kbps uplink, showing the capacity cap, the
//! on-demand grant upgrade around t ≈ 50 s, loss, and bufferbloat RTTs.
//!
//! ```sh
//! cargo run --release --example saturation_study [seconds] [seed]
//! ```

use umtslab::paper::{metric_points, Metric, Workload};
use umtslab::prelude::*;
use umtslab::{run_workload, summary_row, PathKind};

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1);
    let duration = Some(Duration::from_secs(secs));

    println!("== 1 Mbps CBR saturation study ({secs} s, seed {seed}) ==\n");
    let umts = run_workload(Workload::Cbr1Mbps, PathKind::UmtsToEthernet, seed, duration)
        .expect("umts run");
    let eth = run_workload(Workload::Cbr1Mbps, PathKind::EthernetToEthernet, seed, duration)
        .expect("ethernet run");

    println!("{}", summary_row(&umts));
    println!("{}", summary_row(&eth));

    // The Figure-4 bitrate series, downsampled to 2 s buckets for the
    // terminal.
    println!("\nUMTS received bitrate [kbps] (the Figure-4 shape):");
    let pts = metric_points(&umts, Metric::Bitrate);
    let bucket = 2.0;
    let mut t0 = 0.0;
    while t0 < secs as f64 {
        let vals: Vec<f64> =
            pts.iter().filter(|(t, _)| *t >= t0 && *t < t0 + bucket).map(|(_, v)| *v).collect();
        if !vals.is_empty() {
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            let bar = "#".repeat((mean / 10.0) as usize);
            println!("  t={t0:>5.0}s {mean:>6.0} {bar}");
        }
        t0 += bucket;
    }

    // Locate the knee (grant upgrade) if the run is long enough.
    let knee = pts.iter().find(|(t, v)| *v > 250.0 && *t > 5.0).map(|(t, _)| *t);
    match knee {
        Some(t) if secs >= 60 => {
            println!("\ngrant upgrade detected at t ≈ {t:.0} s (the paper observes ~50 s)");
        }
        _ => println!("\n(run ≥ 120 s to observe the on-demand grant upgrade)"),
    }

    println!(
        "\nworst-case UMTS RTT: {} (bufferbloat; the paper reports up to ~3 s)",
        umts.summary.max_rtt.map_or_else(|| "-".into(), |d| d.to_string())
    );
}
