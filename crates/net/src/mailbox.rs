//! Deterministic cross-shard packet handoff.
//!
//! When one coupled topology is split across N shards, packets that leave
//! one shard's partition must re-enter another's event loop without
//! making the result depend on the partitioning. The mailbox layer pins
//! that down:
//!
//! * every handoff is stamped with its due time, the **global** index of
//!   the node that produced it, and a per-origin sequence number
//!   ([`Handoff`]);
//! * an [`Outbox`] collects the handoffs one shard produces during a
//!   window, allocating sequence numbers in the origin's own event order;
//! * an [`Inbox`] stages handoffs received at window boundaries and
//!   releases the ones due before a horizon in the canonical merge order
//!   [`Handoff::key`] — `(at, origin, seq)`.
//!
//! The origin *node* — not the origin shard — is the tie-break lane: a
//! node's shard assignment changes with the shard count, but its global
//! index does not, so the merge order (and therefore every downstream
//! event order) is invariant under re-partitioning. In the fully sharded
//! limit of one node per shard the two notions coincide, which is the
//! sense in which this realizes the "(timestamp, shard, seq)" merge the
//! sharded-core design calls for.

use umtslab_sim::time::Instant;

use crate::packet::Packet;

/// How a handed-off packet enters the destination node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKind {
    /// Down the destination's wired access link into `eth0`.
    Wire,
    /// Into the destination's UMTS downlink (operator → subscriber).
    Umts,
}

/// One packet crossing the internet core between two nodes' partitions.
#[derive(Debug, Clone)]
pub struct Handoff {
    /// When the packet is at the core, ready to take the destination leg.
    pub at: Instant,
    /// Global index of the node whose activity produced the packet.
    pub origin: u32,
    /// Sequence number within the origin's lane, in origin event order.
    pub seq: u64,
    /// Global index of the destination node.
    pub dst: u32,
    /// How the destination leg delivers.
    pub kind: HandoffKind,
    /// The packet itself.
    pub packet: Packet,
}

impl Handoff {
    /// The canonical merge key: `(at, origin, seq)`. Sorting any set of
    /// handoffs by this key yields the same order no matter how they were
    /// batched across shards.
    pub fn key(&self) -> (Instant, u32, u64) {
        (self.at, self.origin, self.seq)
    }
}

/// Collects the handoffs one shard produces during a window.
///
/// Sequence numbers are allocated per origin lane in call order; since a
/// shard processes its events deterministically, the numbering is a pure
/// function of the origin node's event history.
#[derive(Debug, Default)]
pub struct Outbox {
    staged: Vec<Handoff>,
    /// Next sequence number per origin lane, keyed by global node index.
    /// Ordered map: diagnostics iterate it deterministically.
    next_seq: std::collections::BTreeMap<u32, u64>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Outbox {
        Outbox::default()
    }

    /// Stages a handoff from `origin` to `dst`, stamping the next
    /// sequence number of the origin's lane.
    pub fn push(&mut self, at: Instant, origin: u32, dst: u32, kind: HandoffKind, packet: Packet) {
        let seq = self.next_seq.entry(origin).or_insert(0);
        self.staged.push(Handoff { at, origin, seq: *seq, dst, kind, packet });
        *seq += 1;
    }

    /// Takes everything staged so far, leaving the lane counters intact
    /// (sequence numbers keep increasing across windows).
    pub fn take(&mut self) -> Vec<Handoff> {
        std::mem::take(&mut self.staged)
    }

    /// Number of staged handoffs.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }
}

/// Stages inbound handoffs until their window comes up.
#[derive(Debug, Default)]
pub struct Inbox {
    staged: Vec<Handoff>,
}

impl Inbox {
    /// An empty inbox.
    pub fn new() -> Inbox {
        Inbox::default()
    }

    /// Accepts a batch exchanged at a window boundary.
    pub fn accept(&mut self, batch: Vec<Handoff>) {
        self.staged.extend(batch);
    }

    /// Releases every staged handoff due strictly before `horizon`, in
    /// canonical `(at, origin, seq)` order. Later handoffs stay staged.
    pub fn due_before(&mut self, horizon: Instant) -> Vec<Handoff> {
        let (mut due, later): (Vec<Handoff>, Vec<Handoff>) =
            std::mem::take(&mut self.staged).into_iter().partition(|h| h.at < horizon);
        self.staged = later;
        due.sort_by_key(Handoff::key);
        due
    }

    /// Number of handoffs still staged.
    pub fn len(&self) -> usize {
        self.staged.len()
    }

    /// Whether nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.staged.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketIdAllocator};
    use crate::wire::{Endpoint, Ipv4Address};
    use umtslab_sim::time::Duration;

    fn pkt(ids: &mut PacketIdAllocator) -> Packet {
        Packet::udp(
            ids.allocate(),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1000),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 2000),
            vec![0u8; 8],
            Instant::ZERO,
        )
    }

    #[test]
    fn outbox_numbers_each_origin_lane_independently() {
        let mut ids = PacketIdAllocator::new();
        let mut ob = Outbox::new();
        let t = Instant::from_millis(5);
        ob.push(t, 7, 1, HandoffKind::Wire, pkt(&mut ids));
        ob.push(t, 3, 1, HandoffKind::Wire, pkt(&mut ids));
        ob.push(t, 7, 2, HandoffKind::Umts, pkt(&mut ids));
        let batch = ob.take();
        assert!(ob.is_empty());
        let lanes: Vec<(u32, u64)> = batch.iter().map(|h| (h.origin, h.seq)).collect();
        assert_eq!(lanes, vec![(7, 0), (3, 0), (7, 1)]);
        // Lane counters survive the take.
        ob.push(t, 7, 1, HandoffKind::Wire, pkt(&mut ids));
        assert_eq!(ob.take()[0].seq, 2);
    }

    #[test]
    fn inbox_releases_in_canonical_order_regardless_of_batching() {
        let mut ids = PacketIdAllocator::new();
        let t1 = Instant::from_millis(10);
        let t2 = Instant::from_millis(20);
        let horizon = Instant::from_millis(25);

        // The same four handoffs arriving as different batch splits must
        // come out in the same order.
        let mk = |ids: &mut PacketIdAllocator| {
            vec![
                Handoff {
                    at: t2,
                    origin: 1,
                    seq: 0,
                    dst: 0,
                    kind: HandoffKind::Wire,
                    packet: pkt(ids),
                },
                Handoff {
                    at: t1,
                    origin: 2,
                    seq: 0,
                    dst: 0,
                    kind: HandoffKind::Wire,
                    packet: pkt(ids),
                },
                Handoff {
                    at: t1,
                    origin: 1,
                    seq: 1,
                    dst: 0,
                    kind: HandoffKind::Wire,
                    packet: pkt(ids),
                },
                Handoff {
                    at: t1,
                    origin: 1,
                    seq: 0,
                    dst: 0,
                    kind: HandoffKind::Wire,
                    packet: pkt(ids),
                },
            ]
        };
        let mut one = Inbox::new();
        one.accept(mk(&mut ids));
        let mut two = Inbox::new();
        let mut batch = mk(&mut ids);
        let tail = batch.split_off(2);
        two.accept(tail);
        two.accept(batch);

        let keys = |v: Vec<Handoff>| v.iter().map(Handoff::key).collect::<Vec<_>>();
        let a = keys(one.due_before(horizon));
        let b = keys(two.due_before(horizon));
        assert_eq!(a, b);
        assert_eq!(
            a,
            vec![(t1, 1, 0), (t1, 1, 1), (t1, 2, 0), (t2, 1, 0)],
            "sorted by (at, origin, seq)"
        );
    }

    #[test]
    fn inbox_keeps_later_handoffs_staged() {
        let mut ids = PacketIdAllocator::new();
        let mut inbox = Inbox::new();
        let near = Instant::from_millis(10);
        let far = near + Duration::from_millis(50);
        inbox.accept(vec![
            Handoff {
                at: far,
                origin: 0,
                seq: 0,
                dst: 1,
                kind: HandoffKind::Wire,
                packet: pkt(&mut ids),
            },
            Handoff {
                at: near,
                origin: 0,
                seq: 1,
                dst: 1,
                kind: HandoffKind::Wire,
                packet: pkt(&mut ids),
            },
        ]);
        let due = inbox.due_before(Instant::from_millis(20));
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].at, near);
        assert_eq!(inbox.len(), 1);
        // A handoff due exactly at the horizon stays staged for the
        // window that owns it.
        let due = inbox.due_before(far);
        assert!(due.is_empty());
        assert_eq!(inbox.due_before(far + Duration::from_millis(1)).len(), 1);
        assert!(inbox.is_empty());
    }
}
