//! Refcounted, sliceable payload buffers for the zero-copy data plane.
//!
//! A [`Bytes`] is an immutable view into a reference-counted byte buffer:
//! cloning bumps a refcount, [`Bytes::slice`] is O(1), and nothing here
//! uses `unsafe` (the workspace forbids it). Packets carry their payload
//! as `Bytes`, so duplicating a packet on a faulty link, buffering it in a
//! bearer queue, or handing it to a receiver never copies payload bytes.
//!
//! The module also keeps process-wide *deep-copy counters*: the only two
//! operations that materialize payload bytes — [`Bytes::copy_from_slice`]
//! and [`Bytes::to_vec`] — increment them. The `dataplane` bench reads
//! counter deltas around a steady-state run to assert that the forwarding
//! path performs **zero** payload copies after emission. Constructing a
//! `Bytes` from an owned `Vec<u8>` is an ownership transfer, not a copy,
//! and is deliberately uncounted.

use core::fmt;
use core::hash::{Hash, Hasher};
use core::ops::{Deref, Range};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of deep copies performed since process start.
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);
/// Number of payload bytes deep-copied since process start.
static DEEP_COPY_BYTES: AtomicU64 = AtomicU64::new(0);

fn count_copy(bytes: usize) {
    DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
    DEEP_COPY_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// A snapshot of the process-wide deep-copy counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyCounters {
    /// How many times payload bytes were materialized into a fresh buffer.
    pub copies: u64,
    /// Total payload bytes materialized.
    pub bytes: u64,
}

/// Reads the current deep-copy counters.
///
/// Benchmarks take a snapshot before and after a run and subtract; the
/// counters are monotonic and never reset.
pub fn copy_counters() -> CopyCounters {
    CopyCounters {
        copies: DEEP_COPIES.load(Ordering::Relaxed),
        bytes: DEEP_COPY_BYTES.load(Ordering::Relaxed),
    }
}

/// An immutable, reference-counted byte buffer with O(1) clone and slice.
///
/// ```
/// use umtslab_net::bytes::Bytes;
///
/// let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
/// let tail = b.slice(2..5); // O(1): shares the same allocation
/// assert_eq!(&tail[..], &[3, 4, 5]);
/// let c = b.clone(); // refcount bump, no bytes move
/// assert_eq!(b, c);
/// ```
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Materializes a new buffer by copying `src`. Counted as a deep copy.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        count_copy(src.len());
        Bytes::from(src.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// O(1) sub-view of `range` (relative to this view).
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "inverted range");
        assert!(self.start + range.end <= self.end, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Materializes the view into an owned `Vec<u8>`. Counted as a deep
    /// copy.
    pub fn to_vec(&self) -> Vec<u8> {
        count_copy(self.len());
        self.as_slice().to_vec()
    }

    /// How many `Bytes` views currently share this allocation.
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.data)
    }

    /// Reclaims the underlying allocation if this is the only reference
    /// *and* the view covers the whole buffer; otherwise returns `self`
    /// unchanged. Lets buffer pools recycle retired payloads without a
    /// copy.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        if self.start != 0 || self.end != self.data.len() {
            return Err(self);
        }
        match Arc::try_unwrap(self.data) {
            Ok(vec) => Ok(vec),
            Err(data) => Err(Bytes { start: self.start, end: self.end, data }),
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    /// Ownership transfer: the vector becomes the shared allocation.
    /// Not counted as a copy.
    fn from(vec: Vec<u8>) -> Bytes {
        let end = vec.len();
        Bytes { data: Arc::new(vec), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    /// Copies the slice into a fresh allocation (counted).
    fn from(src: &[u8]) -> Bytes {
        Bytes::copy_from_slice(src)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} B", self.len())?;
        if self.ref_count() > 1 {
            write!(f, ", shared x{}", self.ref_count())?;
        }
        f.write_str(")")
    }
}

/// A free-list of retired payload buffers.
///
/// Traffic generators `take` a buffer sized for the next payload, write it
/// once, and freeze it into a [`Bytes`]; when the last reference retires
/// (see [`Bytes::try_reclaim`]) the allocation goes back on the list. In
/// steady state the hot path allocates nothing.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    hits: u64,
    misses: u64,
}

/// Cap on pooled buffers; beyond this, retired buffers are dropped.
const POOL_CAP: usize = 64;

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Returns a zeroed buffer of exactly `len` bytes, reusing a retired
    /// allocation when one is available.
    pub fn take(&mut self, len: usize) -> Vec<u8> {
        match self.free.pop() {
            Some(mut buf) => {
                self.hits += 1;
                buf.clear();
                buf.resize(len, 0);
                buf
            }
            None => {
                self.misses += 1;
                vec![0u8; len]
            }
        }
    }

    /// Returns a buffer to the free list.
    pub fn recycle(&mut self, buf: Vec<u8>) {
        if self.free.len() < POOL_CAP {
            self.free.push(buf);
        }
    }

    /// Attempts to reclaim a retired payload's allocation into the pool.
    pub fn reclaim(&mut self, bytes: Bytes) {
        if let Ok(buf) = bytes.try_reclaim() {
            self.recycle(buf);
        }
    }

    /// `(reuses, fresh allocations)` served by [`BufferPool::take`].
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        assert_eq!(a.ref_count(), 1);
        let b = a.clone();
        assert_eq!(a.ref_count(), 2);
        assert_eq!(b.ref_count(), 2);
        assert_eq!(a, b);
        drop(b);
        assert_eq!(a.ref_count(), 1);
    }

    #[test]
    fn clone_does_not_count_as_a_copy() {
        let before = copy_counters();
        let a = Bytes::from(vec![0u8; 1024]);
        let _b = a.clone();
        let _c = a.slice(0..512);
        let after = copy_counters();
        assert_eq!(before, after);
    }

    #[test]
    fn deep_copies_are_counted() {
        let before = copy_counters();
        let a = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        let _v = a.to_vec();
        let after = copy_counters();
        assert_eq!(after.copies - before.copies, 2);
        assert_eq!(after.bytes - before.bytes, 8);
    }

    #[test]
    fn slicing_is_a_view() {
        let a = Bytes::from((0u8..10).collect::<Vec<_>>());
        let mid = a.slice(3..7);
        assert_eq!(mid.len(), 4);
        assert_eq!(&mid[..], &[3, 4, 5, 6]);
        assert_eq!(mid.ref_count(), 2, "slice shares the parent allocation");
        let inner = mid.slice(1..3);
        assert_eq!(&inner[..], &[4, 5]);
        let empty = a.slice(5..5);
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "slice out of bounds")]
    fn out_of_bounds_slice_panics() {
        let a = Bytes::from(vec![1, 2, 3]);
        let _ = a.slice(1..4);
    }

    #[test]
    fn equality_is_by_content() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[0, 1, 2, 3]).slice(1..4);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 2, 3]);
        assert_eq!(a, [1u8, 2, 3]);
        assert_eq!(a, &[1u8, 2, 3][..]);
        assert_ne!(a, Bytes::new());
    }

    #[test]
    fn hash_matches_content() {
        use std::collections::hash_map::DefaultHasher;
        let h = |b: &Bytes| {
            let mut s = DefaultHasher::new();
            b.hash(&mut s);
            s.finish()
        };
        let a = Bytes::from(vec![9, 9, 9]);
        let b = Bytes::from(vec![0, 9, 9, 9]).slice(1..4);
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn reclaim_only_unique_full_views() {
        let a = Bytes::from(vec![7u8; 16]);
        let b = a.clone();
        // Shared: cannot reclaim.
        let a = a.try_reclaim().unwrap_err();
        drop(b);
        // Unique full view: reclaims the exact allocation.
        let v = a.try_reclaim().unwrap();
        assert_eq!(v, vec![7u8; 16]);
        // A partial view never reclaims, even when unique.
        let c = Bytes::from(vec![1, 2, 3]).slice(0..2);
        assert!(c.try_reclaim().is_err());
    }

    #[test]
    fn pool_recycles_allocations() {
        let mut pool = BufferPool::new();
        let buf = pool.take(100);
        assert_eq!(buf.len(), 100);
        let frozen = Bytes::from(buf);
        pool.reclaim(frozen);
        let again = pool.take(64);
        assert_eq!(again.len(), 64);
        assert!(again.iter().all(|&b| b == 0), "reused buffers are zeroed");
        assert_eq!(pool.stats(), (1, 1));
    }
}
