//! Routing tables and policy routing.
//!
//! This module reimplements the slice of `iproute2` semantics the paper's
//! integration depends on:
//!
//! * multiple routing tables ([`RoutingTable`]) with longest-prefix-match
//!   lookup and metric tie-breaking;
//! * an ordered list of policy rules ([`PolicyRule`]) selecting a table by
//!   firewall mark, source or destination prefix — exactly the mechanism the
//!   authors use to steer only the UMTS slice's packets into the dedicated
//!   table whose single default route points at `ppp0`.
//!
//! Rule processing follows Linux: rules are scanned in ascending priority;
//! a rule whose selector matches causes a lookup in its table; if that
//! lookup fails the scan *continues* with the next rule; if no rule ever
//! yields a route the destination is unreachable.

use crate::iface::IfaceId;
use crate::packet::Mark;
use crate::wire::{Ipv4Address, Ipv4Cidr};

/// Identifier of a routing table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl TableId {
    /// The main table, consulted by the default rule (Linux table 254).
    pub const MAIN: TableId = TableId(254);
}

/// One routing table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Destination prefix.
    pub dest: Ipv4Cidr,
    /// Next-hop gateway, or `None` for an on-link route.
    pub via: Option<Ipv4Address>,
    /// Egress interface.
    pub dev: IfaceId,
    /// Metric; lower wins among equal-length prefixes.
    pub metric: u32,
    /// Preferred source address for locally originated traffic.
    pub prefsrc: Option<Ipv4Address>,
}

impl Route {
    /// An on-link route to `dest` out of `dev`.
    pub fn onlink(dest: Ipv4Cidr, dev: IfaceId) -> Route {
        Route { dest, via: None, dev, metric: 0, prefsrc: None }
    }

    /// A default route via `gateway` out of `dev`.
    pub fn default_via(gateway: Ipv4Address, dev: IfaceId) -> Route {
        Route { dest: Ipv4Cidr::ANY, via: Some(gateway), dev, metric: 0, prefsrc: None }
    }

    /// A default route out of a point-to-point device (no gateway address
    /// needed; the peer is implicit) — the shape of the UMTS table's route.
    pub fn default_dev(dev: IfaceId) -> Route {
        Route { dest: Ipv4Cidr::ANY, via: None, dev, metric: 0, prefsrc: None }
    }
}

/// A routing table: a set of routes with longest-prefix-match lookup.
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: Vec<Route>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> RoutingTable {
        RoutingTable::default()
    }

    /// Adds a route. Duplicate `(dest, metric)` entries are replaced, as
    /// `ip route replace` would.
    pub fn add(&mut self, route: Route) {
        if let Some(existing) =
            self.routes.iter_mut().find(|r| r.dest == route.dest && r.metric == route.metric)
        {
            *existing = route;
        } else {
            self.routes.push(route);
        }
    }

    /// Removes all routes matching `pred`; returns how many were removed.
    pub fn remove_where(&mut self, pred: impl Fn(&Route) -> bool) -> usize {
        let before = self.routes.len();
        self.routes.retain(|r| !pred(r));
        before - self.routes.len()
    }

    /// Removes every route through `dev` (used when an interface goes
    /// down, as the kernel does).
    pub fn purge_dev(&mut self, dev: IfaceId) -> usize {
        self.remove_where(|r| r.dev == dev)
    }

    /// Longest-prefix-match lookup; ties broken by lowest metric, then by
    /// insertion order.
    pub fn lookup(&self, dst: Ipv4Address) -> Option<&Route> {
        self.routes.iter().filter(|r| r.dest.contains(dst)).max_by(|a, b| {
            a.dest
                .prefix_len()
                .cmp(&b.dest.prefix_len())
                // lower metric should win: invert for max_by
                .then_with(|| b.metric.cmp(&a.metric))
        })
    }

    /// All routes, in insertion order.
    pub fn routes(&self) -> &[Route] {
        &self.routes
    }

    /// True if the table has no routes.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

/// Selector of a policy rule: all present fields must match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleSelector {
    /// Match packets carrying exactly this (non-zero) firewall mark.
    pub fwmark: Option<Mark>,
    /// Match packets whose source address is inside this prefix.
    pub src: Option<Ipv4Cidr>,
    /// Match packets whose destination address is inside this prefix.
    pub dst: Option<Ipv4Cidr>,
}

impl RuleSelector {
    /// A selector matching every packet.
    pub fn any() -> RuleSelector {
        RuleSelector::default()
    }

    /// A selector matching a firewall mark.
    pub fn fwmark(mark: Mark) -> RuleSelector {
        RuleSelector { fwmark: Some(mark), ..RuleSelector::default() }
    }

    /// True if `key` satisfies the selector.
    pub fn matches(&self, key: &FlowKey) -> bool {
        if let Some(m) = self.fwmark {
            if key.mark != m {
                return false;
            }
        }
        if let Some(src) = self.src {
            if !src.contains(key.src) {
                return false;
            }
        }
        if let Some(dst) = self.dst {
            if !dst.contains(key.dst) {
                return false;
            }
        }
        true
    }
}

/// The routing key extracted from a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Firewall mark.
    pub mark: Mark,
}

/// A policy routing rule: `priority` orders the scan, `selector` gates the
/// rule and `table` is consulted when it matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyRule {
    /// Scan priority; lower fires first (Linux semantics).
    pub priority: u32,
    /// Match condition.
    pub selector: RuleSelector,
    /// Table consulted on match.
    pub table: TableId,
}

/// The result of resolving a flow against the RIB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteDecision {
    /// Egress interface.
    pub dev: IfaceId,
    /// Next-hop gateway, if any.
    pub via: Option<Ipv4Address>,
    /// Preferred source address, if the route specifies one.
    pub prefsrc: Option<Ipv4Address>,
    /// The table that provided the route.
    pub table: TableId,
    /// The priority of the rule that matched.
    pub rule_priority: u32,
}

/// The node's complete routing state: tables plus policy rules.
#[derive(Debug, Clone)]
pub struct Rib {
    tables: std::collections::BTreeMap<TableId, RoutingTable>,
    rules: Vec<PolicyRule>,
}

impl Default for Rib {
    fn default() -> Self {
        Self::new()
    }
}

impl Rib {
    /// Creates a RIB with an empty main table and the default rule
    /// `priority 32766: from all lookup main`, as Linux boots with.
    pub fn new() -> Rib {
        let mut tables = std::collections::BTreeMap::new();
        tables.insert(TableId::MAIN, RoutingTable::new());
        Rib {
            tables,
            rules: vec![PolicyRule {
                priority: 32_766,
                selector: RuleSelector::any(),
                table: TableId::MAIN,
            }],
        }
    }

    /// Mutable access to a table, creating it if absent.
    pub fn table_mut(&mut self, id: TableId) -> &mut RoutingTable {
        self.tables.entry(id).or_default()
    }

    /// Shared access to a table.
    pub fn table(&self, id: TableId) -> Option<&RoutingTable> {
        self.tables.get(&id)
    }

    /// Deletes a non-main table entirely. The main table can only be
    /// emptied, never removed.
    pub fn drop_table(&mut self, id: TableId) -> bool {
        if id == TableId::MAIN {
            self.tables.insert(TableId::MAIN, RoutingTable::new());
            return false;
        }
        self.tables.remove(&id).is_some()
    }

    /// Adds a policy rule, keeping the list sorted by priority (stable for
    /// equal priorities: later additions scan after earlier ones).
    pub fn add_rule(&mut self, rule: PolicyRule) {
        let pos =
            self.rules.iter().position(|r| r.priority > rule.priority).unwrap_or(self.rules.len());
        self.rules.insert(pos, rule);
    }

    /// Removes all rules matching `pred`; returns how many were removed.
    pub fn remove_rules_where(&mut self, pred: impl Fn(&PolicyRule) -> bool) -> usize {
        let before = self.rules.len();
        self.rules.retain(|r| !pred(r));
        before - self.rules.len()
    }

    /// The rule list in scan order.
    pub fn rules(&self) -> &[PolicyRule] {
        &self.rules
    }

    /// All tables with their ids, in ascending table-id order.
    ///
    /// Read-only: static analyzers (the `umtslab-verify` crate) walk the
    /// whole RIB through this without needing mutable or crate-private
    /// access.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &RoutingTable)> {
        self.tables.iter().map(|(id, t)| (*id, t))
    }

    /// Resolves a flow: scans rules in priority order, looks up matching
    /// tables, and returns the first route found.
    pub fn resolve(&self, key: &FlowKey) -> Option<RouteDecision> {
        for rule in &self.rules {
            if !rule.selector.matches(key) {
                continue;
            }
            let Some(table) = self.tables.get(&rule.table) else {
                continue;
            };
            if let Some(route) = table.lookup(key.dst) {
                return Some(RouteDecision {
                    dev: route.dev,
                    via: route.via,
                    prefsrc: route.prefsrc,
                    table: rule.table,
                    rule_priority: rule.priority,
                });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }
    fn c(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }
    fn key(src: &str, dst: &str, mark: u32) -> FlowKey {
        FlowKey { src: a(src), dst: a(dst), mark: Mark(mark) }
    }

    const ETH0: IfaceId = IfaceId(0);
    const PPP0: IfaceId = IfaceId(1);

    #[test]
    fn longest_prefix_wins() {
        let mut t = RoutingTable::new();
        t.add(Route::default_via(a("192.168.0.1"), ETH0));
        t.add(Route::onlink(c("10.0.0.0/8"), ETH0));
        t.add(Route::onlink(c("10.1.0.0/16"), PPP0));
        assert_eq!(t.lookup(a("10.1.2.3")).unwrap().dev, PPP0);
        assert_eq!(t.lookup(a("10.9.2.3")).unwrap().dev, ETH0);
        assert_eq!(t.lookup(a("8.8.8.8")).unwrap().via, Some(a("192.168.0.1")));
    }

    #[test]
    fn metric_breaks_equal_prefix_ties() {
        let mut t = RoutingTable::new();
        let mut high = Route::onlink(c("10.0.0.0/8"), ETH0);
        high.metric = 100;
        let mut low = Route::onlink(c("10.0.0.0/8"), PPP0);
        low.metric = 50; // added second, lower metric: must win
        t.add(high);
        t.add(low);
        assert_eq!(t.lookup(a("10.0.0.1")).unwrap().dev, PPP0);
    }

    #[test]
    fn add_replaces_same_dest_and_metric() {
        let mut t = RoutingTable::new();
        t.add(Route::onlink(c("10.0.0.0/8"), ETH0));
        t.add(Route::onlink(c("10.0.0.0/8"), PPP0));
        assert_eq!(t.routes().len(), 1);
        assert_eq!(t.lookup(a("10.0.0.1")).unwrap().dev, PPP0);
    }

    #[test]
    fn purge_dev_removes_interface_routes() {
        let mut t = RoutingTable::new();
        t.add(Route::onlink(c("10.0.0.0/8"), ETH0));
        t.add(Route::default_dev(PPP0));
        assert_eq!(t.purge_dev(PPP0), 1);
        assert!(t.lookup(a("8.8.8.8")).is_none());
    }

    #[test]
    fn empty_table_lookup_fails() {
        let t = RoutingTable::new();
        assert!(t.lookup(a("1.2.3.4")).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn rib_default_rule_consults_main() {
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("192.168.0.1"), ETH0));
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, ETH0);
        assert_eq!(d.table, TableId::MAIN);
        assert_eq!(d.rule_priority, 32_766);
    }

    #[test]
    fn fwmark_rule_steers_into_umts_table() {
        // The paper's exact setup: a dedicated table with only a default
        // route out of ppp0, selected by the UMTS slice's mark.
        let umts_table = TableId(100);
        let mark = Mark(7);
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("192.168.0.1"), ETH0));
        rib.table_mut(umts_table).add(Route::default_dev(PPP0));
        rib.add_rule(PolicyRule {
            priority: 1000,
            selector: RuleSelector::fwmark(mark),
            table: umts_table,
        });

        // Marked packet goes out ppp0.
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 7)).unwrap();
        assert_eq!(d.dev, PPP0);
        assert_eq!(d.table, umts_table);
        // Unmarked packet falls through to main.
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, ETH0);
        // Differently-marked packet also falls through.
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 9)).unwrap();
        assert_eq!(d.dev, ETH0);
    }

    #[test]
    fn source_address_rule_matches_ppp_address() {
        // Second rule shape from the paper: packets sourced from the
        // PPP-assigned address use the UMTS table.
        let umts_table = TableId(100);
        let ppp_addr = a("10.64.3.7");
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("192.168.0.1"), ETH0));
        rib.table_mut(umts_table).add(Route::default_dev(PPP0));
        rib.add_rule(PolicyRule {
            priority: 1001,
            selector: RuleSelector { src: Some(Ipv4Cidr::host(ppp_addr)), ..RuleSelector::any() },
            table: umts_table,
        });
        let d = rib.resolve(&key("10.64.3.7", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, PPP0);
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, ETH0);
    }

    #[test]
    fn failed_table_lookup_continues_scan() {
        // A matching rule whose table has no route must not terminate the
        // scan (Linux continues to the next rule).
        let empty = TableId(50);
        let mut rib = Rib::new();
        rib.table_mut(empty); // exists but empty
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("192.168.0.1"), ETH0));
        rib.add_rule(PolicyRule { priority: 10, selector: RuleSelector::any(), table: empty });
        let d = rib.resolve(&key("192.168.0.2", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, ETH0);
    }

    #[test]
    fn missing_table_is_skipped() {
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("192.168.0.1"), ETH0));
        rib.add_rule(PolicyRule {
            priority: 10,
            selector: RuleSelector::any(),
            table: TableId(77), // never created
        });
        assert!(rib.resolve(&key("1.1.1.1", "8.8.8.8", 0)).is_some());
    }

    #[test]
    fn unreachable_when_no_rule_yields_route() {
        let rib = Rib::new(); // main table empty
        assert!(rib.resolve(&key("1.1.1.1", "8.8.8.8", 0)).is_none());
    }

    #[test]
    fn rules_scan_in_priority_order() {
        let t1 = TableId(1);
        let t2 = TableId(2);
        let mut rib = Rib::new();
        rib.table_mut(t1).add(Route::default_dev(ETH0));
        rib.table_mut(t2).add(Route::default_dev(PPP0));
        // Added out of order; priority must dominate.
        rib.add_rule(PolicyRule { priority: 200, selector: RuleSelector::any(), table: t2 });
        rib.add_rule(PolicyRule { priority: 100, selector: RuleSelector::any(), table: t1 });
        let d = rib.resolve(&key("1.1.1.1", "8.8.8.8", 0)).unwrap();
        assert_eq!(d.dev, ETH0);
        assert_eq!(d.rule_priority, 100);
    }

    #[test]
    fn remove_rules_where_cleans_up() {
        let mut rib = Rib::new();
        rib.add_rule(PolicyRule {
            priority: 1000,
            selector: RuleSelector::fwmark(Mark(7)),
            table: TableId(100),
        });
        assert_eq!(rib.rules().len(), 2);
        assert_eq!(rib.remove_rules_where(|r| r.table == TableId(100)), 1);
        assert_eq!(rib.rules().len(), 1);
        assert_eq!(rib.rules()[0].priority, 32_766);
    }

    #[test]
    fn drop_table_resets_main_but_removes_others() {
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_dev(ETH0));
        rib.table_mut(TableId(100)).add(Route::default_dev(PPP0));
        assert!(rib.drop_table(TableId(100)));
        assert!(rib.table(TableId(100)).is_none());
        assert!(!rib.drop_table(TableId::MAIN));
        assert!(rib.table(TableId::MAIN).unwrap().is_empty());
    }

    #[test]
    fn selector_dst_match() {
        let sel = RuleSelector { dst: Some(c("10.0.0.0/8")), ..RuleSelector::any() };
        assert!(sel.matches(&key("1.1.1.1", "10.2.3.4", 0)));
        assert!(!sel.matches(&key("1.1.1.1", "11.2.3.4", 0)));
    }

    #[test]
    fn selector_conjunction() {
        let sel = RuleSelector {
            fwmark: Some(Mark(5)),
            src: Some(c("192.168.0.0/24")),
            dst: Some(c("10.0.0.0/8")),
        };
        assert!(sel.matches(&key("192.168.0.9", "10.1.1.1", 5)));
        assert!(!sel.matches(&key("192.168.0.9", "10.1.1.1", 6)));
        assert!(!sel.matches(&key("192.168.1.9", "10.1.1.1", 5)));
        assert!(!sel.matches(&key("192.168.0.9", "11.1.1.1", 5)));
    }
}
