//! Packet-level event tracing.
//!
//! A [`TraceLog`] records what happened to each packet and where: emitted
//! by a slice, marked, routed, dropped by a filter or queue, delivered to a
//! receiver. Tests use it to assert isolation properties ("no packet of
//! slice B was ever delivered via ppp0"), and the determinism integration
//! test compares whole logs across runs. A human-readable tcpdump-style
//! dump is available via [`TraceLog::dump`].

use core::fmt;

use umtslab_sim::time::Instant;

use crate::label::Label;
use crate::packet::{Mark, Packet, PacketId};
use crate::wire::Endpoint;

/// What happened to the packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// An application/slice emitted the packet.
    Sent,
    /// The packet left a node on some interface.
    Egress,
    /// The packet arrived at a node on some interface.
    Ingress,
    /// Delivered to the destination application.
    Delivered,
    /// Dropped: transmit queue full.
    DropQueue,
    /// Dropped: lost in flight.
    DropLoss,
    /// Dropped: rejected by a filter rule.
    DropFilter,
    /// Dropped: no route to destination.
    DropNoRoute,
    /// Dropped: failed checksum at the receiver (corruption).
    DropCorrupt,
    /// Dropped: TTL expired.
    DropTtl,
    /// Dropped: operator firewall rejected unsolicited inbound traffic.
    DropOperatorFirewall,
    /// Dropped: no socket bound to the destination port.
    DropNoSocket,
    /// Session lifecycle: the UMTS session came up (marker event, no
    /// packet attached).
    SessionUp,
    /// Session lifecycle: the UMTS session went down (marker event).
    SessionDown,
    /// Session lifecycle: the supervisor scheduled a redial after backoff
    /// (marker event).
    RedialScheduled,
}

impl TraceKind {
    /// True for the terminal drop kinds.
    pub fn is_drop(self) -> bool {
        matches!(
            self,
            TraceKind::DropQueue
                | TraceKind::DropLoss
                | TraceKind::DropFilter
                | TraceKind::DropNoRoute
                | TraceKind::DropCorrupt
                | TraceKind::DropTtl
                | TraceKind::DropOperatorFirewall
                | TraceKind::DropNoSocket
        )
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceKind::Sent => "sent",
            TraceKind::Egress => "egress",
            TraceKind::Ingress => "ingress",
            TraceKind::Delivered => "delivered",
            TraceKind::DropQueue => "drop(queue)",
            TraceKind::DropLoss => "drop(loss)",
            TraceKind::DropFilter => "drop(filter)",
            TraceKind::DropNoRoute => "drop(no-route)",
            TraceKind::DropCorrupt => "drop(corrupt)",
            TraceKind::DropTtl => "drop(ttl)",
            TraceKind::DropOperatorFirewall => "drop(op-firewall)",
            TraceKind::DropNoSocket => "drop(no-socket)",
            TraceKind::SessionUp => "session-up",
            TraceKind::SessionDown => "session-down",
            TraceKind::RedialScheduled => "redial-scheduled",
        };
        f.write_str(s)
    }
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: Instant,
    /// What happened.
    pub kind: TraceKind,
    /// Which packet.
    pub packet: PacketId,
    /// Source endpoint at the time of the event.
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Firewall mark at the time of the event.
    pub mark: Mark,
    /// Wire length in bytes.
    pub len: usize,
    /// Where it happened (interned node/interface label; recording a
    /// previously interned place allocates nothing).
    pub place: Label,
}

/// An append-only log of trace events.
///
/// Recording can be disabled (the default for long benchmark runs) in which
/// case [`TraceLog::record`] is a no-op and only the aggregate counters are
/// kept.
#[derive(Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    enabled: bool,
    drops: u64,
    total: u64,
}

impl TraceLog {
    /// Creates a disabled log (counters only).
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Creates a log that records full events.
    pub fn enabled() -> TraceLog {
        TraceLog { enabled: true, ..TraceLog::default() }
    }

    /// Turns full recording on or off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records an event for `packet` at `place`.
    ///
    /// Hot-path callers pass an already-interned [`Label`] (a `Copy`);
    /// tests may pass `&str` literals, interned on the fly.
    pub fn record(
        &mut self,
        time: Instant,
        kind: TraceKind,
        packet: &Packet,
        place: impl Into<Label>,
    ) {
        self.total += 1;
        if kind.is_drop() {
            self.drops += 1;
        }
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            time,
            kind,
            packet: packet.id,
            src: packet.src,
            dst: packet.dst,
            mark: packet.mark,
            len: packet.wire_len(),
            place: place.into(),
        });
    }

    /// Records a packet-less marker event (session lifecycle): the packet
    /// id is the sentinel `u64::MAX`, endpoints are unspecified and the
    /// length is zero, so markers sort and dump alongside packet events
    /// without colliding with any real packet.
    pub fn record_marker(&mut self, time: Instant, kind: TraceKind, place: impl Into<Label>) {
        self.total += 1;
        if kind.is_drop() {
            self.drops += 1;
        }
        if !self.enabled {
            return;
        }
        let unspecified = Endpoint::new(crate::wire::Ipv4Address::UNSPECIFIED, 0);
        self.events.push(TraceEvent {
            time,
            kind,
            packet: PacketId(u64::MAX),
            src: unspecified,
            dst: unspecified,
            mark: Mark(0),
            len: 0,
            place: place.into(),
        });
    }

    /// All recorded events, in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of a given kind.
    pub fn of_kind(&self, kind: TraceKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// The history of one packet.
    pub fn history(&self, id: PacketId) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.packet == id).collect()
    }

    /// Total events observed (even while disabled).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Total drop events observed (even while disabled).
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Renders a tcpdump-style textual dump.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            use fmt::Write;
            let _ = writeln!(
                out,
                "{} {:<18} {} {} > {} mark={} len={} @{}",
                e.time,
                e.kind.to_string(),
                e.packet,
                e.src,
                e.dst,
                e.mark.0,
                e.len,
                e.place
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketId;
    use crate::wire::Ipv4Address;

    fn pkt(id: u64) -> Packet {
        Packet::udp(
            PacketId(id),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1000),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 2000),
            vec![0; 4],
            Instant::ZERO,
        )
    }

    #[test]
    fn disabled_log_keeps_counters_only() {
        let mut log = TraceLog::new();
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(0), "a");
        log.record(Instant::ZERO, TraceKind::DropLoss, &pkt(0), "a");
        assert_eq!(log.total(), 2);
        assert_eq!(log.drops(), 1);
        assert!(log.events().is_empty());
    }

    #[test]
    fn enabled_log_records_everything() {
        let mut log = TraceLog::enabled();
        log.record(Instant::from_millis(1), TraceKind::Sent, &pkt(0), "napoli");
        log.record(Instant::from_millis(2), TraceKind::Delivered, &pkt(0), "inria");
        assert_eq!(log.events().len(), 2);
        assert_eq!(log.events()[0].place, "napoli");
        assert_eq!(log.events()[1].kind, TraceKind::Delivered);
    }

    #[test]
    fn history_follows_one_packet() {
        let mut log = TraceLog::enabled();
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(0), "a");
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(1), "a");
        log.record(Instant::from_millis(1), TraceKind::Delivered, &pkt(0), "b");
        let h = log.history(PacketId(0));
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|e| e.packet == PacketId(0)));
    }

    #[test]
    fn of_kind_filters() {
        let mut log = TraceLog::enabled();
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(0), "a");
        log.record(Instant::ZERO, TraceKind::DropFilter, &pkt(1), "a");
        assert_eq!(log.of_kind(TraceKind::DropFilter).count(), 1);
        assert_eq!(log.of_kind(TraceKind::Delivered).count(), 0);
    }

    #[test]
    fn drop_classification() {
        assert!(TraceKind::DropQueue.is_drop());
        assert!(TraceKind::DropOperatorFirewall.is_drop());
        assert!(!TraceKind::Sent.is_drop());
        assert!(!TraceKind::Delivered.is_drop());
    }

    #[test]
    fn session_markers_record_without_a_packet() {
        let mut log = TraceLog::enabled();
        log.record_marker(Instant::from_secs(1), TraceKind::SessionUp, "node/supervisor");
        log.record_marker(Instant::from_secs(2), TraceKind::SessionDown, "node/supervisor");
        log.record_marker(Instant::from_secs(3), TraceKind::RedialScheduled, "node/supervisor");
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.drops(), 0, "lifecycle markers are not drops");
        assert!(!TraceKind::SessionUp.is_drop());
        assert!(!TraceKind::SessionDown.is_drop());
        assert!(!TraceKind::RedialScheduled.is_drop());
        let e = &log.events()[0];
        assert_eq!(e.packet, PacketId(u64::MAX));
        assert_eq!(e.len, 0);
        let dump = log.dump();
        assert!(dump.contains("session-up"));
        assert!(dump.contains("session-down"));
        assert!(dump.contains("redial-scheduled"));
    }

    #[test]
    fn dump_is_line_per_event() {
        let mut log = TraceLog::enabled();
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(0), "a");
        log.record(Instant::from_millis(5), TraceKind::DropTtl, &pkt(0), "b");
        let dump = log.dump();
        assert_eq!(dump.lines().count(), 2);
        assert!(dump.contains("drop(ttl)"));
        assert!(dump.contains("@a"));
    }

    #[test]
    fn toggle_enabled() {
        let mut log = TraceLog::new();
        log.set_enabled(true);
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(0), "a");
        log.set_enabled(false);
        log.record(Instant::ZERO, TraceKind::Sent, &pkt(1), "a");
        assert_eq!(log.events().len(), 1);
        assert_eq!(log.total(), 2);
    }
}
