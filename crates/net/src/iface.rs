//! Network interface descriptors.
//!
//! Interfaces are identified by a small integer [`IfaceId`] assigned by the
//! owning node; routing and filtering refer to interfaces only through this
//! id, mirroring how the kernel's routing tables reference `ifindex`.

use crate::wire::Ipv4Address;

/// Identifier of a network interface within one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IfaceId(pub u32);

impl core::fmt::Display for IfaceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "if{}", self.0)
    }
}

/// Kind of interface, which determines its addressing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IfaceKind {
    /// Broadcast-capable interface on a subnet (Ethernet).
    Ethernet,
    /// Point-to-point interface with a single peer (PPP over the 3G modem).
    PointToPoint,
    /// Loopback.
    Loopback,
}

/// A configured network interface.
#[derive(Debug, Clone)]
pub struct Iface {
    /// Node-local id.
    pub id: IfaceId,
    /// Human-readable name (`eth0`, `ppp0`, `lo`).
    pub name: String,
    /// Interface kind.
    pub kind: IfaceKind,
    /// Local address (unspecified until configured).
    pub addr: Ipv4Address,
    /// Peer address for point-to-point interfaces.
    pub peer: Option<Ipv4Address>,
    /// Maximum transmission unit in bytes.
    pub mtu: usize,
    /// Administrative state.
    pub up: bool,
}

impl Iface {
    /// Creates a down, unconfigured Ethernet interface.
    pub fn ethernet(id: IfaceId, name: impl Into<String>) -> Iface {
        Iface {
            id,
            name: name.into(),
            kind: IfaceKind::Ethernet,
            addr: Ipv4Address::UNSPECIFIED,
            peer: None,
            mtu: 1500,
            up: false,
        }
    }

    /// Creates a down, unconfigured point-to-point interface.
    pub fn point_to_point(id: IfaceId, name: impl Into<String>) -> Iface {
        Iface {
            id,
            name: name.into(),
            kind: IfaceKind::PointToPoint,
            addr: Ipv4Address::UNSPECIFIED,
            peer: None,
            mtu: 1500,
            up: false,
        }
    }

    /// Brings the interface up with the given address (and peer, for
    /// point-to-point interfaces).
    pub fn configure(&mut self, addr: Ipv4Address, peer: Option<Ipv4Address>) {
        self.addr = addr;
        self.peer = peer;
        self.up = true;
    }

    /// Takes the interface down and clears its addresses.
    pub fn deconfigure(&mut self) {
        self.addr = Ipv4Address::UNSPECIFIED;
        self.peer = None;
        self.up = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_defaults() {
        let i = Iface::ethernet(IfaceId(0), "eth0");
        assert_eq!(i.name, "eth0");
        assert_eq!(i.kind, IfaceKind::Ethernet);
        assert!(!i.up);
        assert!(i.addr.is_unspecified());
        assert_eq!(i.mtu, 1500);
    }

    #[test]
    fn configure_and_deconfigure() {
        let mut i = Iface::point_to_point(IfaceId(1), "ppp0");
        i.configure(Ipv4Address::new(10, 64, 0, 2), Some(Ipv4Address::new(10, 64, 0, 1)));
        assert!(i.up);
        assert_eq!(i.peer, Some(Ipv4Address::new(10, 64, 0, 1)));
        i.deconfigure();
        assert!(!i.up);
        assert!(i.addr.is_unspecified());
        assert_eq!(i.peer, None);
    }

    #[test]
    fn iface_id_display() {
        assert_eq!(IfaceId(3).to_string(), "if3");
    }
}
