//! Point-to-point links with rate, delay, jitter and a drop-tail buffer.
//!
//! A [`Pipe`] is one direction of a link. It uses an *analytic* ("virtual
//! clock") model: instead of scheduling per-byte events, each push computes
//! the packet's serialization start/end from the link rate and the
//! transmitter's busy horizon, then adds propagation delay and jitter to
//! obtain the delivery instant. The caller (the simulation main loop)
//! schedules the delivery event. This is exact for FIFO links and keeps the
//! event count at one per packet.
//!
//! Delivery times are monotone per pipe — jitter never reorders packets —
//! except for packets explicitly reordered by fault injection.

use std::sync::Arc;

use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{serialization_time, Duration, Instant};

use crate::fault::{FaultConfig, FaultInjector};
use crate::packet::Packet;

/// Random per-packet delay added on top of the fixed propagation delay.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum JitterModel {
    /// No jitter.
    #[default]
    None,
    /// Uniform in `[0, max]`.
    Uniform {
        /// Upper bound of the jitter.
        max: Duration,
    },
    /// Truncated normal: `max(0, N(mean, std))`.
    Normal {
        /// Mean extra delay.
        mean: Duration,
        /// Standard deviation.
        std: Duration,
    },
}

impl JitterModel {
    /// Draws one jitter sample.
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        match *self {
            JitterModel::None => Duration::ZERO,
            JitterModel::Uniform { max } => {
                Duration::from_micros(rng.uniform_u64(0, max.total_micros()))
            }
            JitterModel::Normal { mean, std } => {
                let v = rng.normal(mean.as_secs_f64(), std.as_secs_f64());
                Duration::from_secs_f64(v.max(0.0))
            }
        }
    }
}

/// One piecewise-constant segment of a [`LinkSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSegment {
    /// Offset from the schedule's start at which this segment begins.
    pub start: Duration,
    /// Link rate while the segment is active; `0` means infinitely fast.
    pub rate_bps: u64,
    /// Extra random loss while the segment is active, in parts per
    /// million (`1_000_000` = drop everything).
    pub loss_ppm: u32,
}

/// A time-varying capacity/loss plan for a pipe: the link-layer half of
/// trace replay (`umtslab-traffic` parses recorded traces into this).
///
/// Segments are held in increasing `start` order; the segment active at
/// an offset is the last one that began at or before it, and the final
/// segment holds forever. Offsets before the first segment fall back to
/// the first segment's values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkSchedule {
    segments: Vec<LinkSegment>,
}

impl LinkSchedule {
    /// Builds a schedule, sorting the segments by start offset.
    ///
    /// # Panics
    /// Panics if `segments` is empty: a schedule must pin the rate at
    /// every instant.
    pub fn new(mut segments: Vec<LinkSegment>) -> LinkSchedule {
        assert!(!segments.is_empty(), "a link schedule needs at least one segment");
        segments.sort_by_key(|s| s.start);
        LinkSchedule { segments }
    }

    /// The segments in start order.
    pub fn segments(&self) -> &[LinkSegment] {
        &self.segments
    }

    /// The segment active at `offset` from the schedule start.
    fn active(&self, offset: Duration) -> &LinkSegment {
        match self.segments.partition_point(|s| s.start <= offset) {
            0 => &self.segments[0],
            n => &self.segments[n - 1],
        }
    }

    /// The rate in force at `offset` from the schedule start.
    pub fn rate_at(&self, offset: Duration) -> u64 {
        self.active(offset).rate_bps
    }

    /// The loss (parts per million) in force at `offset`.
    pub fn loss_ppm_at(&self, offset: Duration) -> u32 {
        self.active(offset).loss_ppm
    }
}

/// Static configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Link rate in bits per second; `0` means infinitely fast (no
    /// serialization delay), convenient for ideal links in tests.
    pub rate_bps: u64,
    /// Fixed one-way propagation delay.
    pub delay: Duration,
    /// Random extra delay per packet.
    pub jitter: JitterModel,
    /// Transmit buffer limit in packets (`0` = unlimited).
    pub queue_packets: usize,
    /// Transmit buffer limit in bytes (`0` = unlimited).
    pub queue_bytes: usize,
    /// Fault injection.
    pub fault: FaultConfig,
}

impl LinkConfig {
    /// An ideal, infinitely fast, lossless link with the given delay.
    pub fn ideal(delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps: 0,
            delay,
            jitter: JitterModel::None,
            queue_packets: 0,
            queue_bytes: 0,
            fault: FaultConfig::none(),
        }
    }

    /// A typical wired path: `rate_bps` with `delay` and a 100-packet
    /// buffer.
    pub fn wired(rate_bps: u64, delay: Duration) -> LinkConfig {
        LinkConfig {
            rate_bps,
            delay,
            jitter: JitterModel::None,
            queue_packets: 100,
            queue_bytes: 0,
            fault: FaultConfig::none(),
        }
    }
}

/// Why a push failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The transmit buffer was full.
    QueueFull,
    /// Fault injection lost the packet in flight.
    Loss,
}

/// One or two scheduled deliveries from a push (two when fault injection
/// duplicated the packet).
///
/// A fixed two-slot container instead of a `Vec`: pushing a packet onto a
/// link allocates nothing on the heap. Iterate it with a `for` loop.
#[derive(Debug)]
pub struct Deliveries {
    first: (Instant, Packet),
    second: Option<(Instant, Packet)>,
}

impl Deliveries {
    fn single(at: Instant, packet: Packet) -> Deliveries {
        Deliveries { first: (at, packet), second: None }
    }

    fn pair(first: (Instant, Packet), second: (Instant, Packet)) -> Deliveries {
        Deliveries { first, second: Some(second) }
    }

    /// Number of deliveries (1 or 2).
    pub fn len(&self) -> usize {
        1 + usize::from(self.second.is_some())
    }

    /// Always false: a push that schedules anything schedules at least one
    /// delivery.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The sole delivery.
    ///
    /// # Panics
    /// Panics if the packet was duplicated (two deliveries).
    pub fn into_single(self) -> (Instant, Packet) {
        assert!(self.second.is_none(), "expected a single delivery, got a duplicate");
        self.first
    }
}

impl IntoIterator for Deliveries {
    type Item = (Instant, Packet);
    type IntoIter = core::iter::Chain<
        core::iter::Once<(Instant, Packet)>,
        std::option::IntoIter<(Instant, Packet)>,
    >;

    fn into_iter(self) -> Self::IntoIter {
        core::iter::once(self.first).chain(self.second)
    }
}

/// Outcome of offering a packet to a pipe.
#[derive(Debug)]
pub enum PushOutcome {
    /// The packet (and possibly a duplicate) will arrive at the listed
    /// instants. The caller must schedule the deliveries.
    Scheduled(Deliveries),
    /// The packet was dropped.
    Dropped {
        /// The rejected packet.
        packet: Packet,
        /// Why it was rejected.
        reason: DropReason,
    },
}

/// Lifetime counters for one pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Packets offered.
    pub pushed: u64,
    /// Packets scheduled for delivery (duplicates not counted).
    pub delivered: u64,
    /// Packets dropped on buffer overflow.
    pub dropped_queue: u64,
    /// Packets dropped by the loss process.
    pub dropped_loss: u64,
    /// Packets corrupted in flight.
    pub corrupted: u64,
    /// Extra deliveries created by duplication.
    pub duplicated: u64,
    /// Packets delayed out of order.
    pub reordered: u64,
}

impl LinkStats {
    /// Folds another counter set into this one, field by field.
    ///
    /// Used by the metrics registry to aggregate the forward and reverse
    /// pipes of every access link into a single per-experiment total.
    pub fn absorb(&mut self, other: LinkStats) {
        self.pushed += other.pushed;
        self.delivered += other.delivered;
        self.dropped_queue += other.dropped_queue;
        self.dropped_loss += other.dropped_loss;
        self.corrupted += other.corrupted;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
    }
}

/// One direction of a point-to-point link.
#[derive(Debug)]
pub struct Pipe {
    /// Shared with the sibling pipe of a duplex link: the configuration
    /// (including the fault plan) exists once per link, not once per
    /// direction.
    config: Arc<LinkConfig>,
    fault: FaultInjector,
    /// When the transmitter finishes its current backlog.
    next_free: Instant,
    /// Latest in-order delivery instant handed out, for the FIFO clamp.
    last_delivery: Instant,
    /// Serialization horizons of packets still occupying the buffer:
    /// `(serialization_end, wire_len)`.
    backlog: std::collections::VecDeque<(Instant, usize)>,
    /// Trace replay: a time-varying rate/loss plan overriding
    /// `config.rate_bps` from its anchor instant onwards.
    schedule: Option<(Arc<LinkSchedule>, Instant)>,
    stats: LinkStats,
}

impl Pipe {
    /// Creates a pipe.
    pub fn new(config: LinkConfig) -> Pipe {
        Pipe::from_shared(Arc::new(config))
    }

    /// Creates a pipe over an already-shared configuration.
    pub fn from_shared(config: Arc<LinkConfig>) -> Pipe {
        let fault = FaultInjector::new(config.fault.clone());
        Pipe {
            config,
            fault,
            next_free: Instant::ZERO,
            last_delivery: Instant::ZERO,
            backlog: std::collections::VecDeque::new(),
            schedule: None,
            stats: LinkStats::default(),
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Installs a trace-replay schedule anchored at `start`: from then
    /// on, each packet serializes at the rate the schedule pins for its
    /// serialization-start offset, and pays the segment's extra loss.
    pub fn set_schedule(&mut self, schedule: Arc<LinkSchedule>, start: Instant) {
        self.schedule = Some((schedule, start));
    }

    /// Removes the replay schedule; the static `rate_bps` governs again.
    pub fn clear_schedule(&mut self) {
        self.schedule = None;
    }

    /// The replay schedule, if one is installed.
    pub fn schedule(&self) -> Option<&LinkSchedule> {
        self.schedule.as_ref().map(|(s, _)| s.as_ref())
    }

    /// The rate in force for a packet starting to serialize at `at`.
    fn effective_rate(&self, at: Instant) -> u64 {
        match &self.schedule {
            Some((s, start)) => s.rate_at(at.saturating_duration_since(*start)),
            None => self.config.rate_bps,
        }
    }

    /// The schedule's extra loss (ppm) in force at `at`; 0 without one.
    fn scheduled_loss_ppm(&self, at: Instant) -> u32 {
        match &self.schedule {
            Some((s, start)) => s.loss_ppm_at(at.saturating_duration_since(*start)),
            None => 0,
        }
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Bytes currently waiting in (or being serialized out of) the buffer.
    pub fn backlog_bytes(&mut self, now: Instant) -> usize {
        self.purge(now);
        self.backlog.iter().map(|&(_, len)| len).sum()
    }

    /// Packets currently in the buffer.
    pub fn backlog_packets(&mut self, now: Instant) -> usize {
        self.purge(now);
        self.backlog.len()
    }

    /// The queueing delay a packet offered right now would experience
    /// before starting serialization.
    pub fn queueing_delay(&self, now: Instant) -> Duration {
        self.next_free.saturating_duration_since(now)
    }

    /// Offers a packet to the link at `now`.
    pub fn push(&mut self, now: Instant, mut packet: Packet, rng: &mut SimRng) -> PushOutcome {
        self.stats.pushed += 1;
        self.purge(now);

        let wire_len = packet.wire_len();
        let over_packets =
            self.config.queue_packets != 0 && self.backlog.len() >= self.config.queue_packets;
        let cur_bytes: usize = self.backlog.iter().map(|&(_, len)| len).sum();
        let over_bytes =
            self.config.queue_bytes != 0 && cur_bytes + wire_len > self.config.queue_bytes;
        if over_packets || over_bytes {
            self.stats.dropped_queue += 1;
            return PushOutcome::Dropped { packet, reason: DropReason::QueueFull };
        }

        let verdict = self.fault.judge(rng);
        if verdict.drop {
            self.stats.dropped_loss += 1;
            return PushOutcome::Dropped { packet, reason: DropReason::Loss };
        }

        let ser_start = self.next_free.max(now);
        // Trace replay: the loss draw happens even when the segment is
        // lossless so that installing an all-zero-loss schedule does not
        // shift the RNG stream relative to a lossy one.
        if self.schedule.is_some() {
            let loss_ppm = self.scheduled_loss_ppm(ser_start);
            if rng.uniform_u64(0, 999_999) < u64::from(loss_ppm) {
                self.stats.dropped_loss += 1;
                return PushOutcome::Dropped { packet, reason: DropReason::Loss };
            }
        }
        let ser_end = ser_start + serialization_time(wire_len, self.effective_rate(ser_start));
        self.next_free = ser_end;
        self.backlog.push_back((ser_end, wire_len));

        let jitter = self.config.jitter.sample(rng);
        let base = ser_end + self.config.delay + jitter;
        let delivery = if let Some(extra) = verdict.reorder_delay {
            self.stats.reordered += 1;
            base + extra // exempt from the FIFO clamp
        } else {
            let clamped = base.max(self.last_delivery);
            self.last_delivery = clamped;
            clamped
        };

        if verdict.corrupt {
            packet.corrupted = true;
            self.stats.corrupted += 1;
        }

        self.stats.delivered += 1;
        let deliveries = if verdict.duplicate {
            self.stats.duplicated += 1;
            let dup_at = delivery + self.config.jitter.sample(rng);
            // The clone shares the payload allocation (refcount bump):
            // duplication copies the header struct, never the bytes.
            Deliveries::pair((delivery, packet.clone()), (dup_at.max(delivery), packet))
        } else {
            Deliveries::single(delivery, packet)
        };
        PushOutcome::Scheduled(deliveries)
    }

    fn purge(&mut self, now: Instant) {
        while let Some(&(end, _)) = self.backlog.front() {
            if end <= now {
                self.backlog.pop_front();
            } else {
                break;
            }
        }
    }
}

/// A bidirectional link: two independent pipes.
#[derive(Debug)]
pub struct DuplexLink {
    /// A → B direction.
    pub forward: Pipe,
    /// B → A direction.
    pub reverse: Pipe,
}

impl DuplexLink {
    /// Creates a symmetric duplex link. Both directions share one
    /// configuration allocation — the fault plan is not cloned per pipe.
    pub fn symmetric(config: LinkConfig) -> DuplexLink {
        let shared = Arc::new(config);
        DuplexLink {
            forward: Pipe::from_shared(Arc::clone(&shared)),
            reverse: Pipe::from_shared(shared),
        }
    }

    /// Creates an asymmetric duplex link.
    pub fn asymmetric(forward: LinkConfig, reverse: LinkConfig) -> DuplexLink {
        DuplexLink { forward: Pipe::new(forward), reverse: Pipe::new(reverse) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::LossModel;
    use crate::packet::{Packet, PacketId};
    use crate::wire::{Endpoint, Ipv4Address};

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet::udp(
            PacketId(id),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 2),
            vec![0; payload],
            Instant::ZERO,
        )
    }

    fn rng() -> SimRng {
        SimRng::seed_from_u64(99)
    }

    fn single_delivery(outcome: PushOutcome) -> (Instant, Packet) {
        match outcome {
            PushOutcome::Scheduled(d) => d.into_single(),
            other => panic!("expected delivery, got {other:?}"),
        }
    }

    #[test]
    fn ideal_link_delivers_after_delay() {
        let mut pipe = Pipe::new(LinkConfig::ideal(Duration::from_millis(10)));
        let (at, p) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 100), &mut rng()));
        assert_eq!(at, Instant::from_millis(10));
        assert_eq!(p.id, PacketId(0));
    }

    #[test]
    fn serialization_delay_matches_rate() {
        // 1 Mbps; a 972-byte payload is 1000 wire bytes = 8 ms.
        let mut pipe = Pipe::new(LinkConfig::wired(1_000_000, Duration::from_millis(5)));
        let (at, _) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 972), &mut rng()));
        assert_eq!(at, Instant::from_millis(13));
    }

    #[test]
    fn back_to_back_packets_queue_behind_each_other() {
        let mut pipe = Pipe::new(LinkConfig::wired(1_000_000, Duration::ZERO));
        let mut r = rng();
        let (t1, _) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 972), &mut r));
        let (t2, _) = single_delivery(pipe.push(Instant::ZERO, pkt(1, 972), &mut r));
        let (t3, _) = single_delivery(pipe.push(Instant::ZERO, pkt(2, 972), &mut r));
        assert_eq!(t1, Instant::from_millis(8));
        assert_eq!(t2, Instant::from_millis(16));
        assert_eq!(t3, Instant::from_millis(24));
    }

    #[test]
    fn transmitter_idles_between_spaced_packets() {
        let mut pipe = Pipe::new(LinkConfig::wired(1_000_000, Duration::ZERO));
        let mut r = rng();
        let (t1, _) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 972), &mut r));
        // Second packet arrives long after the first finished.
        let (t2, _) = single_delivery(pipe.push(Instant::from_millis(100), pkt(1, 972), &mut r));
        assert_eq!(t1, Instant::from_millis(8));
        assert_eq!(t2, Instant::from_millis(108));
    }

    #[test]
    fn queue_overflow_drops() {
        let mut cfg = LinkConfig::wired(8_000, Duration::ZERO); // 1 byte/ms: slow
        cfg.queue_packets = 2;
        let mut pipe = Pipe::new(cfg);
        let mut r = rng();
        assert!(matches!(pipe.push(Instant::ZERO, pkt(0, 100), &mut r), PushOutcome::Scheduled(_)));
        assert!(matches!(pipe.push(Instant::ZERO, pkt(1, 100), &mut r), PushOutcome::Scheduled(_)));
        match pipe.push(Instant::ZERO, pkt(2, 100), &mut r) {
            PushOutcome::Dropped { reason, packet } => {
                assert_eq!(reason, DropReason::QueueFull);
                assert_eq!(packet.id, PacketId(2));
            }
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(pipe.stats().dropped_queue, 1);
    }

    #[test]
    fn byte_limit_drops() {
        let mut cfg = LinkConfig::wired(8_000, Duration::ZERO);
        cfg.queue_bytes = 200; // wire len of pkt(_, 100) is 128
        let mut pipe = Pipe::new(cfg);
        let mut r = rng();
        assert!(matches!(pipe.push(Instant::ZERO, pkt(0, 100), &mut r), PushOutcome::Scheduled(_)));
        assert!(matches!(
            pipe.push(Instant::ZERO, pkt(1, 100), &mut r),
            PushOutcome::Dropped { reason: DropReason::QueueFull, .. }
        ));
    }

    #[test]
    fn backlog_drains_over_time() {
        let mut cfg = LinkConfig::wired(8_000, Duration::ZERO); // 1 byte/ms
        cfg.queue_packets = 10;
        let mut pipe = Pipe::new(cfg);
        let mut r = rng();
        // Two 128-wire-byte packets: each takes 128 ms to serialize.
        pipe.push(Instant::ZERO, pkt(0, 100), &mut r);
        pipe.push(Instant::ZERO, pkt(1, 100), &mut r);
        assert_eq!(pipe.backlog_packets(Instant::ZERO), 2);
        assert_eq!(pipe.backlog_packets(Instant::from_millis(128)), 1);
        assert_eq!(pipe.backlog_packets(Instant::from_millis(256)), 0);
        assert_eq!(pipe.backlog_bytes(Instant::from_millis(256)), 0);
    }

    #[test]
    fn queueing_delay_reflects_busy_horizon() {
        let mut pipe = Pipe::new(LinkConfig::wired(8_000, Duration::ZERO));
        let mut r = rng();
        pipe.push(Instant::ZERO, pkt(0, 100), &mut r); // busy until 128 ms
        assert_eq!(pipe.queueing_delay(Instant::ZERO), Duration::from_millis(128));
        assert_eq!(pipe.queueing_delay(Instant::from_millis(130)), Duration::ZERO);
    }

    #[test]
    fn jitter_never_reorders() {
        let mut cfg = LinkConfig::ideal(Duration::from_millis(10));
        cfg.jitter = JitterModel::Uniform { max: Duration::from_millis(50) };
        let mut pipe = Pipe::new(cfg);
        let mut r = rng();
        let mut last = Instant::ZERO;
        for i in 0..200 {
            let now = Instant::from_millis(i);
            let (at, _) = single_delivery(pipe.push(now, pkt(i, 10), &mut r));
            assert!(at >= last, "delivery went backwards at packet {i}");
            last = at;
        }
    }

    #[test]
    fn loss_fault_drops() {
        let mut cfg = LinkConfig::ideal(Duration::ZERO);
        cfg.fault.loss = LossModel::Bernoulli { p: 1.0 };
        let mut pipe = Pipe::new(cfg);
        assert!(matches!(
            pipe.push(Instant::ZERO, pkt(0, 10), &mut rng()),
            PushOutcome::Dropped { reason: DropReason::Loss, .. }
        ));
        assert_eq!(pipe.stats().dropped_loss, 1);
    }

    #[test]
    fn corruption_flags_packet() {
        let mut cfg = LinkConfig::ideal(Duration::ZERO);
        cfg.fault.corrupt_prob = 1.0;
        let mut pipe = Pipe::new(cfg);
        let (_, p) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 10), &mut rng()));
        assert!(p.corrupted);
        assert_eq!(pipe.stats().corrupted, 1);
    }

    #[test]
    fn duplication_yields_two_deliveries() {
        let mut cfg = LinkConfig::ideal(Duration::from_millis(5));
        cfg.fault.duplicate_prob = 1.0;
        let mut pipe = Pipe::new(cfg);
        match pipe.push(Instant::ZERO, pkt(7, 10), &mut rng()) {
            PushOutcome::Scheduled(d) => {
                assert_eq!(d.len(), 2);
                let v: Vec<(Instant, Packet)> = d.into_iter().collect();
                assert_eq!(v[0].1.id, PacketId(7));
                assert_eq!(v[1].1.id, PacketId(7));
                assert!(v[1].0 >= v[0].0);
                // The duplicate shares the original's payload allocation.
                assert_eq!(v[0].1.payload.ref_count(), 2);
            }
            other => panic!("expected two deliveries, got {other:?}"),
        }
        assert_eq!(pipe.stats().duplicated, 1);
    }

    #[test]
    fn reordered_packet_is_delayed_past_successor() {
        let mut cfg = LinkConfig::ideal(Duration::from_millis(10));
        cfg.fault.reorder_prob = 0.5;
        cfg.fault.reorder_delay = Duration::from_millis(100);
        let mut pipe = Pipe::new(cfg);
        let mut r = rng();
        let mut times = Vec::new();
        for i in 0..100 {
            let (at, p) = single_delivery(pipe.push(Instant::from_millis(i), pkt(i, 10), &mut r));
            times.push((p.id.0, at));
        }
        assert!(pipe.stats().reordered > 0);
        // At least one packet must arrive after a later-sent packet.
        let mut inverted = false;
        for i in 0..times.len() {
            for j in i + 1..times.len() {
                if times[i].1 > times[j].1 {
                    inverted = true;
                }
            }
        }
        assert!(inverted, "reordering fault produced no inversions");
    }

    fn two_step_schedule() -> LinkSchedule {
        LinkSchedule::new(vec![
            LinkSegment { start: Duration::ZERO, rate_bps: 1_000_000, loss_ppm: 0 },
            LinkSegment { start: Duration::from_millis(100), rate_bps: 125_000, loss_ppm: 0 },
        ])
    }

    #[test]
    fn schedule_lookup_uses_last_started_segment() {
        let s = two_step_schedule();
        assert_eq!(s.rate_at(Duration::ZERO), 1_000_000);
        assert_eq!(s.rate_at(Duration::from_millis(99)), 1_000_000);
        assert_eq!(s.rate_at(Duration::from_millis(100)), 125_000);
        assert_eq!(s.rate_at(Duration::from_secs(1_000)), 125_000);
    }

    #[test]
    fn scheduled_pipe_changes_rate_mid_replay() {
        let mut pipe = Pipe::new(LinkConfig::wired(56_000, Duration::ZERO));
        pipe.set_schedule(Arc::new(two_step_schedule()), Instant::ZERO);
        let mut r = rng();
        // 972-byte payload = 1000 wire bytes. At 1 Mbps: 8 ms.
        let (t1, _) = single_delivery(pipe.push(Instant::ZERO, pkt(0, 972), &mut r));
        assert_eq!(t1, Instant::from_millis(8));
        // After the 100 ms mark the trace drops to 125 kbps: 64 ms.
        let (t2, _) = single_delivery(pipe.push(Instant::from_millis(200), pkt(1, 972), &mut r));
        assert_eq!(t2, Instant::from_millis(264));
    }

    #[test]
    fn schedule_rate_is_sampled_at_serialization_start() {
        // A packet pushed just before the rate change but queued past it
        // serializes at the rate in force when its serialization starts.
        let mut pipe = Pipe::new(LinkConfig::wired(56_000, Duration::ZERO));
        pipe.set_schedule(Arc::new(two_step_schedule()), Instant::ZERO);
        let mut r = rng();
        // First packet occupies the line for 8 ms from t=96 ms → busy
        // until 104 ms; the second starts at 104 ms, inside the slow
        // segment, so it takes 64 ms.
        let (t1, _) = single_delivery(pipe.push(Instant::from_millis(96), pkt(0, 972), &mut r));
        assert_eq!(t1, Instant::from_millis(104));
        let (t2, _) = single_delivery(pipe.push(Instant::from_millis(96), pkt(1, 972), &mut r));
        assert_eq!(t2, Instant::from_millis(168));
    }

    #[test]
    fn schedule_loss_segment_drops_everything() {
        let schedule = LinkSchedule::new(vec![
            LinkSegment { start: Duration::ZERO, rate_bps: 0, loss_ppm: 0 },
            LinkSegment { start: Duration::from_millis(10), rate_bps: 0, loss_ppm: 1_000_000 },
        ]);
        let mut pipe = Pipe::new(LinkConfig::ideal(Duration::ZERO));
        pipe.set_schedule(Arc::new(schedule), Instant::ZERO);
        let mut r = rng();
        assert!(matches!(pipe.push(Instant::ZERO, pkt(0, 10), &mut r), PushOutcome::Scheduled(_)));
        assert!(matches!(
            pipe.push(Instant::from_millis(20), pkt(1, 10), &mut r),
            PushOutcome::Dropped { reason: DropReason::Loss, .. }
        ));
        assert_eq!(pipe.stats().dropped_loss, 1);
        pipe.clear_schedule();
        assert!(pipe.schedule().is_none());
        assert!(matches!(
            pipe.push(Instant::from_millis(30), pkt(2, 10), &mut r),
            PushOutcome::Scheduled(_)
        ));
    }

    #[test]
    fn duplex_links_are_independent() {
        let mut link =
            DuplexLink::symmetric(LinkConfig::wired(1_000_000, Duration::from_millis(1)));
        let mut r = rng();
        let (tf, _) = single_delivery(link.forward.push(Instant::ZERO, pkt(0, 972), &mut r));
        let (tr, _) = single_delivery(link.reverse.push(Instant::ZERO, pkt(1, 972), &mut r));
        // Both directions serialize from t=0: no cross-direction contention.
        assert_eq!(tf, tr);
    }

    #[test]
    fn stats_accumulate() {
        let mut pipe = Pipe::new(LinkConfig::ideal(Duration::ZERO));
        let mut r = rng();
        for i in 0..10 {
            pipe.push(Instant::ZERO, pkt(i, 1), &mut r);
        }
        let s = pipe.stats();
        assert_eq!(s.pushed, 10);
        assert_eq!(s.delivered, 10);
        assert_eq!(s.dropped_queue + s.dropped_loss, 0);
    }
}
