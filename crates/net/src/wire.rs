//! Wire-format types: addresses, prefixes and packet views.
//!
//! Follows the smoltcp idiom: a *view* type (e.g. [`Ipv4PacketView`]) wraps a
//! byte buffer and exposes checked, typed accessors over the raw octets.
//! Construction validates length and version invariants so that the getters
//! cannot panic on a checked view. The simulator mostly carries packets in
//! the structured [`crate::packet::Packet`] form, but serializes through
//! these views at stack boundaries (PPP framing, traces) and in tests, which
//! keeps the formats honest.

use core::fmt;
use core::str::FromStr;

/// An IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Address(pub [u8; 4]);

impl Ipv4Address {
    /// The unspecified address `0.0.0.0`.
    pub const UNSPECIFIED: Ipv4Address = Ipv4Address([0; 4]);
    /// The limited broadcast address `255.255.255.255`.
    pub const BROADCAST: Ipv4Address = Ipv4Address([255; 4]);

    /// Creates an address from four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4Address {
        Ipv4Address([a, b, c, d])
    }

    /// The address as a big-endian `u32`.
    pub const fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }

    /// Builds an address from a big-endian `u32`.
    pub const fn from_u32(v: u32) -> Ipv4Address {
        Ipv4Address(v.to_be_bytes())
    }

    /// True if this is `0.0.0.0`.
    pub const fn is_unspecified(self) -> bool {
        self.to_u32() == 0
    }

    /// True for `127.0.0.0/8`.
    pub const fn is_loopback(self) -> bool {
        self.0[0] == 127
    }

    /// True for RFC 1918 private ranges.
    pub const fn is_private(self) -> bool {
        self.0[0] == 10
            || (self.0[0] == 172 && self.0[1] >= 16 && self.0[1] <= 31)
            || (self.0[0] == 192 && self.0[1] == 168)
    }
}

impl fmt::Display for Ipv4Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// Error parsing an address or prefix from text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrParseError;

impl fmt::Display for AddrParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address or prefix")
    }
}

impl std::error::Error for AddrParseError {}

impl FromStr for Ipv4Address {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            let part = parts.next().ok_or(AddrParseError)?;
            if part.is_empty() || part.len() > 3 || (part.len() > 1 && part.starts_with('0')) {
                return Err(AddrParseError);
            }
            *octet = part.parse().map_err(|_| AddrParseError)?;
        }
        if parts.next().is_some() {
            return Err(AddrParseError);
        }
        Ok(Ipv4Address(octets))
    }
}

/// An IPv4 CIDR prefix, e.g. `10.0.0.0/8`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Cidr {
    address: Ipv4Address,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// The whole address space, `0.0.0.0/0`.
    pub const ANY: Ipv4Cidr = Ipv4Cidr { address: Ipv4Address::UNSPECIFIED, prefix_len: 0 };

    /// Creates a prefix; the address is canonicalized to its network base.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > 32`.
    pub fn new(address: Ipv4Address, prefix_len: u8) -> Ipv4Cidr {
        assert!(prefix_len <= 32, "prefix length {prefix_len} out of range");
        let mask = Self::mask_of(prefix_len);
        Ipv4Cidr { address: Ipv4Address::from_u32(address.to_u32() & mask), prefix_len }
    }

    /// A /32 prefix covering exactly `address`.
    pub fn host(address: Ipv4Address) -> Ipv4Cidr {
        Ipv4Cidr::new(address, 32)
    }

    /// The canonical network address.
    pub fn address(&self) -> Ipv4Address {
        self.address
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The netmask as an address.
    pub fn netmask(&self) -> Ipv4Address {
        Ipv4Address::from_u32(Self::mask_of(self.prefix_len))
    }

    /// True if `addr` falls inside this prefix.
    pub fn contains(&self, addr: Ipv4Address) -> bool {
        let mask = Self::mask_of(self.prefix_len);
        addr.to_u32() & mask == self.address.to_u32()
    }

    /// True if `other` is entirely inside this prefix.
    pub fn contains_prefix(&self, other: &Ipv4Cidr) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.address)
    }

    /// The `index`-th subnet of this prefix at `new_prefix_len`, or `None`
    /// if the length does not subdivide this prefix or the index is out of
    /// range. Used to hand disjoint address slices to multiple subscribers
    /// of one operator pool.
    pub fn subnet(&self, new_prefix_len: u8, index: u32) -> Option<Ipv4Cidr> {
        if new_prefix_len <= self.prefix_len || new_prefix_len > 32 {
            return None;
        }
        let bits = new_prefix_len - self.prefix_len;
        if bits < 32 && u64::from(index) >= (1u64 << bits) {
            return None;
        }
        let shift = 32 - new_prefix_len as u32;
        let base = self.address.to_u32() | (index << shift);
        Some(Ipv4Cidr::new(Ipv4Address::from_u32(base), new_prefix_len))
    }

    fn mask_of(prefix_len: u8) -> u32 {
        if prefix_len == 0 {
            0
        } else {
            u32::MAX << (32 - prefix_len as u32)
        }
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.address, self.prefix_len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = AddrParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or(AddrParseError)?;
        let address: Ipv4Address = addr.parse()?;
        let prefix_len: u8 = len.parse().map_err(|_| AddrParseError)?;
        if prefix_len > 32 {
            return Err(AddrParseError);
        }
        Ok(Ipv4Cidr::new(address, prefix_len))
    }
}

/// A transport endpoint: address plus port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Endpoint {
    /// The IPv4 address.
    pub addr: Ipv4Address,
    /// The transport-layer port.
    pub port: u16,
}

impl Endpoint {
    /// Creates an endpoint.
    pub const fn new(addr: Ipv4Address, port: u16) -> Endpoint {
        Endpoint { addr, port }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.addr, self.port)
    }
}

/// Transport-layer protocol carried in the IP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// ICMP (protocol number 1).
    Icmp,
    /// TCP (protocol number 6).
    Tcp,
    /// UDP (protocol number 17).
    Udp,
    /// Anything else, carried verbatim.
    Other(u8),
}

impl Protocol {
    /// The IANA protocol number.
    pub const fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
            Protocol::Other(n) => n,
        }
    }

    /// Builds from an IANA protocol number.
    pub const fn from_number(n: u8) -> Protocol {
        match n {
            1 => Protocol::Icmp,
            6 => Protocol::Tcp,
            17 => Protocol::Udp,
            other => Protocol::Other(other),
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Icmp => write!(f, "icmp"),
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Udp => write!(f, "udp"),
            Protocol::Other(n) => write!(f, "proto-{n}"),
        }
    }
}

/// Errors produced when parsing a wire buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the fixed header.
    Truncated,
    /// A version/length field is inconsistent with the buffer.
    Malformed,
    /// The header checksum does not verify.
    BadChecksum,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed header"),
            WireError::BadChecksum => write!(f, "bad checksum"),
        }
    }
}

impl std::error::Error for WireError {}

/// The Internet checksum (RFC 1071) over `data`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Length of the (option-less) IPv4 header emitted by this stack.
pub const IPV4_HEADER_LEN: usize = 20;
/// Length of the UDP header.
pub const UDP_HEADER_LEN: usize = 8;

/// A checked view over an IPv4 packet (20-byte header, no options).
///
/// ```
/// use umtslab_net::wire::{Ipv4PacketView, Ipv4Address, Protocol};
///
/// let mut buf = vec![0u8; 28];
/// let mut view = Ipv4PacketView::new_unchecked(&mut buf);
/// view.init_defaults();
/// view.set_src_addr(Ipv4Address::new(10, 0, 0, 1));
/// view.set_dst_addr(Ipv4Address::new(10, 0, 0, 2));
/// view.set_protocol(Protocol::Udp);
/// view.fill_checksum();
///
/// let parsed = Ipv4PacketView::new_checked(&buf[..]).unwrap();
/// assert_eq!(parsed.src_addr(), Ipv4Address::new(10, 0, 0, 1));
/// assert!(parsed.verify_checksum());
/// ```
#[derive(Debug)]
pub struct Ipv4PacketView<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4PacketView<T> {
    /// Wraps a buffer without validation. Accessors may panic on short
    /// buffers; prefer [`Ipv4PacketView::new_checked`] for untrusted input.
    pub fn new_unchecked(buffer: T) -> Ipv4PacketView<T> {
        Ipv4PacketView { buffer }
    }

    /// Wraps and validates a buffer: length, version, IHL and total length
    /// must all be consistent.
    pub fn new_checked(buffer: T) -> Result<Ipv4PacketView<T>, WireError> {
        let len = buffer.as_ref().len();
        if len < IPV4_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let view = Ipv4PacketView { buffer };
        let data = view.buffer.as_ref();
        if data[0] >> 4 != 4 {
            return Err(WireError::Malformed);
        }
        if (data[0] & 0x0F) as usize * 4 != IPV4_HEADER_LEN {
            // Options are never emitted by this stack.
            return Err(WireError::Malformed);
        }
        let total = view.total_len() as usize;
        if total < IPV4_HEADER_LEN || total > len {
            return Err(WireError::Malformed);
        }
        Ok(view)
    }

    /// Releases the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// IP version field (always 4 for checked views).
    pub fn version(&self) -> u8 {
        self.buffer.as_ref()[0] >> 4
    }

    /// Differentiated-services / TOS byte.
    pub fn tos(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Total length field (header plus payload).
    pub fn total_len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Identification field.
    pub fn ident(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Transport protocol.
    pub fn protocol(&self) -> Protocol {
        Protocol::from_number(self.buffer.as_ref()[9])
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[10], d[11]])
    }

    /// Source address.
    pub fn src_addr(&self) -> Ipv4Address {
        let d = self.buffer.as_ref();
        Ipv4Address([d[12], d[13], d[14], d[15]])
    }

    /// Destination address.
    pub fn dst_addr(&self) -> Ipv4Address {
        let d = self.buffer.as_ref();
        Ipv4Address([d[16], d[17], d[18], d[19]])
    }

    /// The payload bytes (after the header, up to total length).
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[IPV4_HEADER_LEN..total]
    }

    /// Recomputes the header checksum and compares it with the stored one.
    pub fn verify_checksum(&self) -> bool {
        internet_checksum(&self.buffer.as_ref()[..IPV4_HEADER_LEN]) == 0
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4PacketView<T> {
    /// Writes version/IHL, clears flags and sets a default TTL of 64;
    /// total length is set to the buffer length.
    pub fn init_defaults(&mut self) {
        let len = self.buffer.as_ref().len() as u16;
        let d = self.buffer.as_mut();
        d[0] = 0x45;
        d[1] = 0;
        d[2..4].copy_from_slice(&len.to_be_bytes());
        d[4..8].fill(0);
        d[8] = 64;
        d[9] = 0;
        d[10..12].fill(0);
    }

    /// Sets the TOS byte.
    pub fn set_tos(&mut self, tos: u8) {
        self.buffer.as_mut()[1] = tos;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets the identification field.
    pub fn set_ident(&mut self, id: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&id.to_be_bytes());
    }

    /// Sets the TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the transport protocol.
    pub fn set_protocol(&mut self, p: Protocol) {
        self.buffer.as_mut()[9] = p.number();
    }

    /// Sets the source address.
    pub fn set_src_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }

    /// Sets the destination address.
    pub fn set_dst_addr(&mut self, a: Ipv4Address) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }

    /// Mutable access to the payload bytes.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[IPV4_HEADER_LEN..]
    }

    /// Computes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        self.buffer.as_mut()[10..12].fill(0);
        let sum = internet_checksum(&self.buffer.as_ref()[..IPV4_HEADER_LEN]);
        self.buffer.as_mut()[10..12].copy_from_slice(&sum.to_be_bytes());
    }
}

/// A checked view over a UDP datagram.
#[derive(Debug)]
pub struct UdpDatagramView<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagramView<T> {
    /// Wraps a buffer without validation.
    pub fn new_unchecked(buffer: T) -> UdpDatagramView<T> {
        UdpDatagramView { buffer }
    }

    /// Wraps and validates: the buffer must hold the 8-byte header and the
    /// length field must cover at least the header and fit the buffer.
    pub fn new_checked(buffer: T) -> Result<UdpDatagramView<T>, WireError> {
        if buffer.as_ref().len() < UDP_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let view = UdpDatagramView { buffer };
        let len = view.len() as usize;
        if len < UDP_HEADER_LEN || len > view.buffer.as_ref().len() {
            return Err(WireError::Malformed);
        }
        Ok(view)
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[0], d[1]])
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[2], d[3]])
    }

    /// Length field (header plus payload).
    pub fn len(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[4], d[5]])
    }

    /// True if the datagram carries no payload.
    pub fn is_empty(&self) -> bool {
        self.len() as usize <= UDP_HEADER_LEN
    }

    /// Checksum field (0 means "not computed", as UDP-over-IPv4 allows).
    pub fn checksum(&self) -> u16 {
        let d = self.buffer.as_ref();
        u16::from_be_bytes([d[6], d[7]])
    }

    /// Payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[UDP_HEADER_LEN..self.len() as usize]
    }

    /// Verifies the checksum (a zero field means "unchecked": accepted).
    pub fn verify_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        self.pseudo_checksum(src, dst) == 0
    }

    fn pseudo_checksum(&self, src: Ipv4Address, dst: Ipv4Address) -> u16 {
        let len = self.len();
        let data = &self.buffer.as_ref()[..len as usize];
        let mut pseudo = Vec::with_capacity(12 + data.len());
        pseudo.extend_from_slice(&src.0);
        pseudo.extend_from_slice(&dst.0);
        pseudo.push(0);
        pseudo.push(Protocol::Udp.number());
        pseudo.extend_from_slice(&len.to_be_bytes());
        pseudo.extend_from_slice(data);
        internet_checksum(&pseudo)
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagramView<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Computes and stores the checksum over the pseudo-header and payload.
    pub fn fill_checksum(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.buffer.as_mut()[6..8].fill(0);
        let sum = self.pseudo_checksum(src, dst);
        // Per RFC 768, a computed zero checksum is transmitted as 0xFFFF.
        let sum = if sum == 0 { 0xFFFF } else { sum };
        self.buffer.as_mut()[6..8].copy_from_slice(&sum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_display_and_parse_roundtrip() {
        let a = Ipv4Address::new(192, 168, 1, 42);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert_eq!("192.168.1.42".parse::<Ipv4Address>().unwrap(), a);
    }

    #[test]
    fn address_parse_rejects_garbage() {
        for bad in ["", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "01.2.3.4", "1..2.3"] {
            assert!(bad.parse::<Ipv4Address>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    fn address_u32_roundtrip() {
        let a = Ipv4Address::new(10, 20, 30, 40);
        assert_eq!(Ipv4Address::from_u32(a.to_u32()), a);
    }

    #[test]
    fn address_classification() {
        assert!(Ipv4Address::UNSPECIFIED.is_unspecified());
        assert!(Ipv4Address::new(127, 0, 0, 1).is_loopback());
        assert!(Ipv4Address::new(10, 1, 2, 3).is_private());
        assert!(Ipv4Address::new(172, 16, 0, 1).is_private());
        assert!(!Ipv4Address::new(172, 32, 0, 1).is_private());
        assert!(Ipv4Address::new(192, 168, 0, 1).is_private());
        assert!(!Ipv4Address::new(8, 8, 8, 8).is_private());
    }

    #[test]
    fn cidr_canonicalizes_base_address() {
        let c = Ipv4Cidr::new(Ipv4Address::new(10, 1, 2, 3), 8);
        assert_eq!(c.address(), Ipv4Address::new(10, 0, 0, 0));
        assert_eq!(c.netmask(), Ipv4Address::new(255, 0, 0, 0));
    }

    #[test]
    fn cidr_contains() {
        let c: Ipv4Cidr = "192.168.0.0/24".parse().unwrap();
        assert!(c.contains(Ipv4Address::new(192, 168, 0, 200)));
        assert!(!c.contains(Ipv4Address::new(192, 168, 1, 1)));
        assert!(Ipv4Cidr::ANY.contains(Ipv4Address::new(8, 8, 8, 8)));
        let host = Ipv4Cidr::host(Ipv4Address::new(1, 2, 3, 4));
        assert!(host.contains(Ipv4Address::new(1, 2, 3, 4)));
        assert!(!host.contains(Ipv4Address::new(1, 2, 3, 5)));
    }

    #[test]
    fn cidr_contains_prefix() {
        let big: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let small: Ipv4Cidr = "10.9.0.0/16".parse().unwrap();
        assert!(big.contains_prefix(&small));
        assert!(!small.contains_prefix(&big));
        assert!(big.contains_prefix(&big));
    }

    #[test]
    fn cidr_subnet_subdivides() {
        let pool: Ipv4Cidr = "10.64.128.0/17".parse().unwrap();
        let s0 = pool.subnet(24, 0).unwrap();
        let s1 = pool.subnet(24, 1).unwrap();
        assert_eq!(s0.to_string(), "10.64.128.0/24");
        assert_eq!(s1.to_string(), "10.64.129.0/24");
        assert!(pool.contains_prefix(&s0));
        assert!(pool.contains_prefix(&s1));
        // Disjoint.
        assert!(!s0.contains_prefix(&s1) && !s1.contains_prefix(&s0));
        // 2^(24-17) = 128 subnets.
        assert!(pool.subnet(24, 127).is_some());
        assert!(pool.subnet(24, 128).is_none());
        // Degenerate requests.
        assert!(pool.subnet(17, 0).is_none());
        assert!(pool.subnet(16, 0).is_none());
        assert!(pool.subnet(33, 0).is_none());
        assert_eq!(pool.subnet(32, 5).unwrap().to_string(), "10.64.128.5/32");
    }

    #[test]
    fn cidr_parse_rejects_garbage() {
        for bad in ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/x", "/8"] {
            assert!(bad.parse::<Ipv4Cidr>().is_err(), "{bad} should not parse");
        }
    }

    #[test]
    #[should_panic(expected = "prefix length")]
    fn cidr_rejects_long_prefix() {
        Ipv4Cidr::new(Ipv4Address::UNSPECIFIED, 33);
    }

    #[test]
    fn protocol_numbers_roundtrip() {
        for p in [Protocol::Icmp, Protocol::Tcp, Protocol::Udp, Protocol::Other(99)] {
            assert_eq!(Protocol::from_number(p.number()), p);
        }
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        let sum = internet_checksum(&data);
        assert_eq!(sum, !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        let even = internet_checksum(&[0x12, 0x34]);
        let odd = internet_checksum(&[0x12, 0x34, 0x56]);
        assert_ne!(even, odd);
        // Verifying a buffer with its checksum appended yields zero.
        let mut buf = vec![0xAA, 0xBB, 0xCC];
        buf.push(0);
        let with_pad_sum = internet_checksum(&buf);
        let _ = with_pad_sum;
    }

    #[test]
    fn ipv4_view_roundtrip() {
        let mut buf = vec![0u8; 40];
        let mut v = Ipv4PacketView::new_unchecked(&mut buf);
        v.init_defaults();
        v.set_tos(0x2E);
        v.set_ident(0xBEEF);
        v.set_ttl(63);
        v.set_protocol(Protocol::Udp);
        v.set_src_addr(Ipv4Address::new(1, 2, 3, 4));
        v.set_dst_addr(Ipv4Address::new(5, 6, 7, 8));
        v.payload_mut().fill(0x5A);
        v.fill_checksum();

        let v = Ipv4PacketView::new_checked(&buf[..]).unwrap();
        assert_eq!(v.version(), 4);
        assert_eq!(v.tos(), 0x2E);
        assert_eq!(v.ident(), 0xBEEF);
        assert_eq!(v.ttl(), 63);
        assert_eq!(v.protocol(), Protocol::Udp);
        assert_eq!(v.src_addr(), Ipv4Address::new(1, 2, 3, 4));
        assert_eq!(v.dst_addr(), Ipv4Address::new(5, 6, 7, 8));
        assert_eq!(v.total_len(), 40);
        assert_eq!(v.payload().len(), 20);
        assert!(v.payload().iter().all(|&b| b == 0x5A));
        assert!(v.verify_checksum());
    }

    #[test]
    fn ipv4_view_detects_corruption() {
        let mut buf = vec![0u8; 20];
        let mut v = Ipv4PacketView::new_unchecked(&mut buf);
        v.init_defaults();
        v.fill_checksum();
        buf[8] ^= 0xFF; // flip the TTL
        let v = Ipv4PacketView::new_checked(&buf[..]).unwrap();
        assert!(!v.verify_checksum());
    }

    #[test]
    fn ipv4_view_rejects_bad_buffers() {
        assert_eq!(Ipv4PacketView::new_checked(&[0u8; 10][..]).unwrap_err(), WireError::Truncated);
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        buf[2..4].copy_from_slice(&20u16.to_be_bytes());
        assert_eq!(Ipv4PacketView::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
        buf[0] = 0x46; // IHL 24 (options) unsupported
        assert_eq!(Ipv4PacketView::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&200u16.to_be_bytes()); // longer than buffer
        assert_eq!(Ipv4PacketView::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn udp_view_roundtrip_and_checksum() {
        let src = Ipv4Address::new(10, 0, 0, 1);
        let dst = Ipv4Address::new(10, 0, 0, 2);
        let mut buf = vec![0u8; 16];
        let mut v = UdpDatagramView::new_unchecked(&mut buf);
        v.set_src_port(5000);
        v.set_dst_port(9000);
        v.set_len(16);
        for (i, b) in AsMut::<[u8]>::as_mut(&mut v.buffer)[8..].iter_mut().enumerate() {
            *b = i as u8;
        }
        v.fill_checksum(src, dst);

        let v = UdpDatagramView::new_checked(&buf[..]).unwrap();
        assert_eq!(v.src_port(), 5000);
        assert_eq!(v.dst_port(), 9000);
        assert_eq!(v.len(), 16);
        assert!(!v.is_empty());
        assert_eq!(v.payload(), &[0, 1, 2, 3, 4, 5, 6, 7]);
        assert!(v.verify_checksum(src, dst));
        // The Internet checksum is commutative, so swapping src/dst does not
        // change it — use a genuinely different address to provoke failure.
        assert!(!v.verify_checksum(src, Ipv4Address::new(10, 0, 0, 3)));
    }

    #[test]
    fn udp_view_zero_checksum_accepted() {
        let mut buf = vec![0u8; 8];
        let mut v = UdpDatagramView::new_unchecked(&mut buf);
        v.set_len(8);
        let v = UdpDatagramView::new_checked(&buf[..]).unwrap();
        assert!(v.verify_checksum(Ipv4Address::UNSPECIFIED, Ipv4Address::UNSPECIFIED));
        assert!(v.is_empty());
    }

    #[test]
    fn udp_view_rejects_bad_buffers() {
        assert_eq!(UdpDatagramView::new_checked(&[0u8; 4][..]).unwrap_err(), WireError::Truncated);
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // len < header
        assert_eq!(UdpDatagramView::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
        buf[4..6].copy_from_slice(&64u16.to_be_bytes()); // len > buffer
        assert_eq!(UdpDatagramView::new_checked(&buf[..]).unwrap_err(), WireError::Malformed);
    }
}
