//! # umtslab-net — packet-level network substrate
//!
//! The generic networking layer under the `umtslab` testbed simulator:
//!
//! * [`wire`] — IPv4 addresses/prefixes and checked wire-format views
//!   (smoltcp-style) with real checksums;
//! * [`bytes`] — refcounted, sliceable payload buffers ([`bytes::Bytes`])
//!   with deep-copy accounting, plus a [`bytes::BufferPool`];
//! * [`label`] — interned `Copy` string handles ([`label::Label`]) for
//!   trace places, node/slice names and metrics keys;
//! * [`packet`] — the structured [`packet::Packet`] carried through the
//!   simulator, serializable to honest IPv4+UDP bytes;
//! * [`iface`] — interface descriptors (`eth0`, `ppp0`);
//! * [`queue`] — drop-tail packet FIFOs and token buckets;
//! * [`link`] — analytic point-to-point pipes with rate, delay, jitter and
//!   buffering;
//! * [`mailbox`] — deterministic cross-shard packet handoff with the
//!   canonical `(at, origin, seq)` merge order;
//! * [`fault`] — loss (Bernoulli / Gilbert–Elliott), corruption,
//!   duplication and reordering injection;
//! * [`route`] — multi-table routing with `iproute2`-style policy rules;
//! * [`filter`] — an `iptables`-style mark/accept/drop rule engine;
//! * [`trace`] — per-packet event logging for tests and analysis;
//! * [`pcap`] — libpcap capture files readable by Wireshark;
//! * [`icmp`] — ICMP echo (ping) messages.
//!
//! Everything here is deterministic given a seeded
//! [`umtslab_sim::SimRng`]; nothing touches the host network.
//!
//! ## Example
//!
//! ```
//! use umtslab_net::packet::{Packet, PacketIdAllocator};
//! use umtslab_net::wire::{Endpoint, Ipv4Address};
//! use umtslab_sim::Instant;
//!
//! // Build a UDP packet and round-trip it through honest IPv4 bytes.
//! let mut ids = PacketIdAllocator::new();
//! let p = Packet::udp(
//!     ids.allocate(),
//!     Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 5000),
//!     Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 5001),
//!     vec![0xAB; 32],
//!     Instant::ZERO,
//! );
//! let bytes = p.to_wire().unwrap();
//! let back = Packet::from_wire(&bytes, p.id, p.created).unwrap();
//! assert_eq!(back.payload, p.payload);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytes;
pub mod fault;
pub mod filter;
pub mod icmp;
pub mod iface;
pub mod label;
pub mod link;
pub mod mailbox;
pub mod packet;
pub mod pcap;
pub mod queue;
pub mod route;
pub mod trace;
pub mod wire;

pub use bytes::{copy_counters, BufferPool, Bytes, CopyCounters};
pub use fault::{FaultConfig, FaultInjector, LossModel};
pub use filter::{Chain, FilterMatch, FilterRule, FilterVerdict, Firewall, HookContext, Target};
pub use iface::{Iface, IfaceId, IfaceKind};
pub use label::Label;
pub use link::{
    Deliveries, DropReason, DuplexLink, JitterModel, LinkConfig, LinkStats, Pipe, PushOutcome,
};
pub use mailbox::{Handoff, HandoffKind, Inbox, Outbox};
pub use packet::{Mark, Packet, PacketId, PacketIdAllocator};
pub use queue::{PacketQueue, QueueStats, TokenBucket};
pub use route::{
    FlowKey, PolicyRule, Rib, Route, RouteDecision, RoutingTable, RuleSelector, TableId,
};
pub use trace::{TraceEvent, TraceKind, TraceLog};
pub use wire::{Endpoint, Ipv4Address, Ipv4Cidr, Protocol, WireError};
