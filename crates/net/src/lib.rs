//! # umtslab-net — packet-level network substrate
//!
//! The generic networking layer under the `umtslab` testbed simulator:
//!
//! * [`wire`] — IPv4 addresses/prefixes and checked wire-format views
//!   (smoltcp-style) with real checksums;
//! * [`packet`] — the structured [`packet::Packet`] carried through the
//!   simulator, serializable to honest IPv4+UDP bytes;
//! * [`iface`] — interface descriptors (`eth0`, `ppp0`);
//! * [`queue`] — drop-tail packet FIFOs and token buckets;
//! * [`link`] — analytic point-to-point pipes with rate, delay, jitter and
//!   buffering;
//! * [`fault`] — loss (Bernoulli / Gilbert–Elliott), corruption,
//!   duplication and reordering injection;
//! * [`route`] — multi-table routing with `iproute2`-style policy rules;
//! * [`filter`] — an `iptables`-style mark/accept/drop rule engine;
//! * [`trace`] — per-packet event logging for tests and analysis;
//! * [`pcap`] — libpcap capture files readable by Wireshark;
//! * [`icmp`] — ICMP echo (ping) messages.
//!
//! Everything here is deterministic given a seeded
//! [`umtslab_sim::SimRng`]; nothing touches the host network.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod filter;
pub mod icmp;
pub mod iface;
pub mod link;
pub mod packet;
pub mod pcap;
pub mod queue;
pub mod route;
pub mod trace;
pub mod wire;

pub use fault::{FaultConfig, FaultInjector, LossModel};
pub use filter::{Chain, Firewall, FilterMatch, FilterRule, FilterVerdict, HookContext, Target};
pub use iface::{Iface, IfaceId, IfaceKind};
pub use link::{DropReason, DuplexLink, JitterModel, LinkConfig, LinkStats, Pipe, PushOutcome};
pub use packet::{Mark, Packet, PacketId, PacketIdAllocator};
pub use queue::{PacketQueue, QueueStats, TokenBucket};
pub use route::{FlowKey, PolicyRule, Rib, Route, RouteDecision, RoutingTable, RuleSelector, TableId};
pub use trace::{TraceEvent, TraceKind, TraceLog};
pub use wire::{Endpoint, Ipv4Address, Ipv4Cidr, Protocol, WireError};
