//! The structured packet representation carried through the simulator.
//!
//! Inside the simulator a packet is a plain struct ([`Packet`]) rather than
//! a byte buffer: links, queues and routing only need the header fields, and
//! keeping them typed makes the policy logic (marks, rules) explicit. The
//! packet can be serialized to real IPv4+UDP wire bytes with
//! [`Packet::to_wire`] — used at the PPP boundary and for traces — and
//! parsed back with [`Packet::from_wire`], which re-validates checksums and
//! therefore catches injected corruption like a real stack would.

use umtslab_sim::time::Instant;

use crate::bytes::Bytes;
use crate::wire::{
    Endpoint, Ipv4PacketView, Protocol, UdpDatagramView, WireError, IPV4_HEADER_LEN, UDP_HEADER_LEN,
};

/// Globally unique packet identifier (within one simulation run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl core::fmt::Display for PacketId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A firewall mark, as applied by the node's packet classifier.
///
/// Mark `0` conventionally means "unmarked", mirroring Linux `fwmark`
/// semantics where rules match against a non-zero mark value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mark(pub u32);

impl Mark {
    /// The unmarked state.
    pub const NONE: Mark = Mark(0);

    /// True if the packet carries no mark.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Issues sequential [`PacketId`]s.
#[derive(Debug, Default)]
pub struct PacketIdAllocator {
    next: u64,
}

impl PacketIdAllocator {
    /// Creates an allocator starting at id 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a fresh id.
    pub fn allocate(&mut self) -> PacketId {
        let id = PacketId(self.next);
        self.next += 1;
        id
    }
}

/// A packet in flight through the simulated network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Unique id for tracing.
    pub id: PacketId,
    /// Source endpoint (address and UDP/TCP port, or 0 for ICMP).
    pub src: Endpoint,
    /// Destination endpoint.
    pub dst: Endpoint,
    /// Transport protocol.
    pub protocol: Protocol,
    /// Type-of-service byte.
    pub tos: u8,
    /// Remaining time-to-live.
    pub ttl: u8,
    /// Firewall mark stamped by the emitting node (VNET+ substitute).
    pub mark: Mark,
    /// Application payload bytes (refcounted: cloning the packet shares
    /// the payload allocation instead of copying it).
    pub payload: Bytes,
    /// Simulated time at which the application emitted the packet.
    pub created: Instant,
    /// Set by fault injection when the packet was damaged in flight; a
    /// receiving stack treats this as a checksum failure and drops it.
    pub corrupted: bool,
}

impl Packet {
    /// Default TTL for freshly created packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Creates a UDP packet with the given payload.
    ///
    /// Accepts anything convertible into [`Bytes`]; passing an owned
    /// `Vec<u8>` is an ownership transfer, not a copy.
    pub fn udp(
        id: PacketId,
        src: Endpoint,
        dst: Endpoint,
        payload: impl Into<Bytes>,
        created: Instant,
    ) -> Packet {
        Packet {
            id,
            src,
            dst,
            protocol: Protocol::Udp,
            tos: 0,
            ttl: Self::DEFAULT_TTL,
            mark: Mark::NONE,
            payload: payload.into(),
            created,
            corrupted: false,
        }
    }

    /// Total bytes this packet occupies on an IP link (IPv4 + UDP headers
    /// plus payload). Non-UDP packets are accounted with the IPv4 header
    /// only.
    pub fn wire_len(&self) -> usize {
        match self.protocol {
            Protocol::Udp => IPV4_HEADER_LEN + UDP_HEADER_LEN + self.payload.len(),
            _ => IPV4_HEADER_LEN + self.payload.len(),
        }
    }

    /// Serializes to real IPv4+UDP wire bytes with valid checksums.
    ///
    /// Only UDP packets can be serialized; the simulator's measurement
    /// traffic is UDP, matching the paper's methodology.
    pub fn to_wire(&self) -> Result<Vec<u8>, WireError> {
        if self.protocol != Protocol::Udp {
            return Err(WireError::Malformed);
        }
        let total = IPV4_HEADER_LEN + UDP_HEADER_LEN + self.payload.len();
        if total > u16::MAX as usize {
            return Err(WireError::Malformed);
        }
        let mut buf = vec![0u8; total];
        {
            let mut udp = UdpDatagramView::new_unchecked(&mut buf[IPV4_HEADER_LEN..]);
            udp.set_src_port(self.src.port);
            udp.set_dst_port(self.dst.port);
            udp.set_len((UDP_HEADER_LEN + self.payload.len()) as u16);
        }
        buf[IPV4_HEADER_LEN + UDP_HEADER_LEN..].copy_from_slice(&self.payload);
        {
            let mut udp = UdpDatagramView::new_unchecked(&mut buf[IPV4_HEADER_LEN..]);
            udp.fill_checksum(self.src.addr, self.dst.addr);
        }
        {
            let mut ip = Ipv4PacketView::new_unchecked(&mut buf[..]);
            ip.init_defaults();
            ip.set_tos(self.tos);
            ip.set_ttl(self.ttl);
            ip.set_ident((self.id.0 & 0xFFFF) as u16);
            ip.set_protocol(Protocol::Udp);
            ip.set_src_addr(self.src.addr);
            ip.set_dst_addr(self.dst.addr);
            ip.fill_checksum();
        }
        Ok(buf)
    }

    /// Parses wire bytes back into a packet, validating both checksums.
    ///
    /// `id` and `created` are simulation-side metadata not present on the
    /// wire, so the caller supplies them.
    pub fn from_wire(bytes: &[u8], id: PacketId, created: Instant) -> Result<Packet, WireError> {
        let ip = Ipv4PacketView::new_checked(bytes)?;
        if !ip.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        if ip.protocol() != Protocol::Udp {
            return Err(WireError::Malformed);
        }
        let src_addr = ip.src_addr();
        let dst_addr = ip.dst_addr();
        let tos = ip.tos();
        let ttl = ip.ttl();
        let udp = UdpDatagramView::new_checked(ip.payload())?;
        if !udp.verify_checksum(src_addr, dst_addr) {
            return Err(WireError::BadChecksum);
        }
        Ok(Packet {
            id,
            src: Endpoint::new(src_addr, udp.src_port()),
            dst: Endpoint::new(dst_addr, udp.dst_port()),
            protocol: Protocol::Udp,
            tos,
            ttl,
            mark: Mark::NONE,
            payload: Bytes::copy_from_slice(udp.payload()),
            created,
            corrupted: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::Ipv4Address;

    fn sample_packet() -> Packet {
        Packet::udp(
            PacketId(7),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 9000),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 5), 9001),
            vec![1, 2, 3, 4, 5],
            Instant::from_millis(100),
        )
    }

    #[test]
    fn id_allocator_is_sequential() {
        let mut alloc = PacketIdAllocator::new();
        assert_eq!(alloc.allocate(), PacketId(0));
        assert_eq!(alloc.allocate(), PacketId(1));
        assert_eq!(alloc.allocate(), PacketId(2));
    }

    #[test]
    fn mark_none_semantics() {
        assert!(Mark::NONE.is_none());
        assert!(Mark(0).is_none());
        assert!(!Mark(5).is_none());
    }

    #[test]
    fn wire_len_accounts_headers() {
        let p = sample_packet();
        assert_eq!(p.wire_len(), 20 + 8 + 5);
    }

    #[test]
    fn wire_roundtrip_preserves_fields() {
        let mut p = sample_packet();
        p.tos = 0x2E;
        p.ttl = 17;
        let bytes = p.to_wire().unwrap();
        assert_eq!(bytes.len(), p.wire_len());
        let q = Packet::from_wire(&bytes, PacketId(7), Instant::from_millis(100)).unwrap();
        assert_eq!(q.src, p.src);
        assert_eq!(q.dst, p.dst);
        assert_eq!(q.tos, p.tos);
        assert_eq!(q.ttl, p.ttl);
        assert_eq!(q.payload, p.payload);
        // The mark is node-local state and never crosses the wire.
        assert!(q.mark.is_none());
    }

    #[test]
    fn wire_corruption_is_detected() {
        let p = sample_packet();
        let mut bytes = p.to_wire().unwrap();
        // Corrupt a payload byte: UDP checksum must catch it.
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert_eq!(
            Packet::from_wire(&bytes, PacketId(0), Instant::ZERO).unwrap_err(),
            WireError::BadChecksum
        );
        // Corrupt an IP header byte: IP checksum must catch it.
        let mut bytes = p.to_wire().unwrap();
        bytes[8] ^= 0x01;
        assert_eq!(
            Packet::from_wire(&bytes, PacketId(0), Instant::ZERO).unwrap_err(),
            WireError::BadChecksum
        );
    }

    #[test]
    fn non_udp_cannot_serialize() {
        let mut p = sample_packet();
        p.protocol = Protocol::Icmp;
        assert_eq!(p.to_wire().unwrap_err(), WireError::Malformed);
    }

    #[test]
    fn clone_shares_the_payload_allocation() {
        let p = sample_packet();
        let q = p.clone();
        assert_eq!(p.payload.ref_count(), 2, "clone must not copy payload bytes");
        assert_eq!(q, p);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let mut p = sample_packet();
        p.payload = Bytes::new();
        let bytes = p.to_wire().unwrap();
        assert_eq!(bytes.len(), 28);
        let q = Packet::from_wire(&bytes, p.id, p.created).unwrap();
        assert!(q.payload.is_empty());
    }
}
