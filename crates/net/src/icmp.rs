//! ICMP echo (ping) messages.
//!
//! The testbed's nodes answer echo requests in the kernel path, like any
//! Linux host, which lets experiments measure RTT without deploying a
//! receiver — the classic first step of the paper's style of path
//! characterization. Messages use the real ICMP wire layout (type, code,
//! checksum, identifier, sequence) carried as the payload of a
//! [`Protocol::Icmp`] packet, with the checksum computed and verified.

use umtslab_sim::time::Instant;

use crate::packet::{Packet, PacketId};
use crate::wire::{internet_checksum, Endpoint, Ipv4Address, Protocol};

/// ICMP type for echo request.
pub const ECHO_REQUEST: u8 = 8;
/// ICMP type for echo reply.
pub const ECHO_REPLY: u8 = 0;

/// Header length of an echo message.
pub const ICMP_HEADER_LEN: usize = 8;

fn build(ty: u8, ident: u16, seq: u16, data: &[u8]) -> Vec<u8> {
    let mut msg = Vec::with_capacity(ICMP_HEADER_LEN + data.len());
    msg.push(ty);
    msg.push(0); // code
    msg.extend_from_slice(&[0, 0]); // checksum placeholder
    msg.extend_from_slice(&ident.to_be_bytes());
    msg.extend_from_slice(&seq.to_be_bytes());
    msg.extend_from_slice(data);
    let sum = internet_checksum(&msg);
    msg[2..4].copy_from_slice(&sum.to_be_bytes());
    msg
}

/// A parsed echo message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echo {
    /// [`ECHO_REQUEST`] or [`ECHO_REPLY`].
    pub ty: u8,
    /// Identifier (plays the role of a port for demultiplexing).
    pub ident: u16,
    /// Sequence number.
    pub seq: u16,
    /// Echo data (the ping example stores the transmit timestamp here).
    pub data: Vec<u8>,
}

/// Creates an echo-request packet.
pub fn echo_request(
    id: PacketId,
    src: Ipv4Address,
    dst: Ipv4Address,
    ident: u16,
    seq: u16,
    data: &[u8],
    created: Instant,
) -> Packet {
    let mut p = Packet::udp(
        id,
        Endpoint::new(src, 0),
        Endpoint::new(dst, 0),
        build(ECHO_REQUEST, ident, seq, data),
        created,
    );
    p.protocol = Protocol::Icmp;
    p
}

/// Parses an ICMP packet's payload as an echo message, verifying the
/// checksum. Returns `None` for non-ICMP packets, non-echo types or
/// checksum failures.
pub fn parse_echo(packet: &Packet) -> Option<Echo> {
    if packet.protocol != Protocol::Icmp {
        return None;
    }
    let msg = &packet.payload;
    if msg.len() < ICMP_HEADER_LEN {
        return None;
    }
    if internet_checksum(msg) != 0 {
        return None;
    }
    let ty = msg[0];
    if ty != ECHO_REQUEST && ty != ECHO_REPLY {
        return None;
    }
    if msg[1] != 0 {
        return None;
    }
    Some(Echo {
        ty,
        ident: u16::from_be_bytes([msg[4], msg[5]]),
        seq: u16::from_be_bytes([msg[6], msg[7]]),
        data: msg[ICMP_HEADER_LEN..].to_vec(),
    })
}

/// Builds the reply a host generates for `request` (addresses swapped,
/// identifier/sequence/data preserved), or `None` if `request` is not a
/// valid echo request.
pub fn echo_reply_for(request: &Packet, id: PacketId, now: Instant) -> Option<Packet> {
    let echo = parse_echo(request)?;
    if echo.ty != ECHO_REQUEST {
        return None;
    }
    let mut p = Packet::udp(
        id,
        Endpoint::new(request.dst.addr, 0),
        Endpoint::new(request.src.addr, 0),
        build(ECHO_REPLY, echo.ident, echo.seq, &echo.data),
        now,
    );
    p.protocol = Protocol::Icmp;
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn request_roundtrip() {
        let p = echo_request(
            PacketId(1),
            a("10.0.0.1"),
            a("10.0.0.2"),
            0xBEEF,
            3,
            b"payload",
            Instant::ZERO,
        );
        assert_eq!(p.protocol, Protocol::Icmp);
        let e = parse_echo(&p).unwrap();
        assert_eq!(e.ty, ECHO_REQUEST);
        assert_eq!(e.ident, 0xBEEF);
        assert_eq!(e.seq, 3);
        assert_eq!(e.data, b"payload");
    }

    #[test]
    fn reply_swaps_addresses_and_preserves_fields() {
        let req =
            echo_request(PacketId(1), a("10.0.0.1"), a("10.0.0.2"), 7, 9, b"ts", Instant::ZERO);
        let rep = echo_reply_for(&req, PacketId(2), Instant::from_millis(5)).unwrap();
        assert_eq!(rep.src.addr, a("10.0.0.2"));
        assert_eq!(rep.dst.addr, a("10.0.0.1"));
        let e = parse_echo(&rep).unwrap();
        assert_eq!(e.ty, ECHO_REPLY);
        assert_eq!(e.ident, 7);
        assert_eq!(e.seq, 9);
        assert_eq!(e.data, b"ts");
    }

    #[test]
    fn reply_for_reply_is_none() {
        let req = echo_request(PacketId(1), a("1.1.1.1"), a("2.2.2.2"), 1, 1, b"", Instant::ZERO);
        let rep = echo_reply_for(&req, PacketId(2), Instant::ZERO).unwrap();
        assert!(echo_reply_for(&rep, PacketId(3), Instant::ZERO).is_none());
    }

    #[test]
    fn corruption_is_detected() {
        let mut p =
            echo_request(PacketId(1), a("1.1.1.1"), a("2.2.2.2"), 1, 1, b"abc", Instant::ZERO);
        let mut damaged = p.payload.to_vec();
        damaged[9] ^= 0x40;
        p.payload = damaged.into();
        assert!(parse_echo(&p).is_none());
    }

    #[test]
    fn non_icmp_is_none() {
        let p = Packet::udp(
            PacketId(0),
            Endpoint::new(a("1.1.1.1"), 1),
            Endpoint::new(a("2.2.2.2"), 2),
            build(ECHO_REQUEST, 1, 1, b""),
            Instant::ZERO,
        );
        assert!(parse_echo(&p).is_none());
    }

    #[test]
    fn truncated_is_none() {
        let mut p = echo_request(PacketId(1), a("1.1.1.1"), a("2.2.2.2"), 1, 1, b"", Instant::ZERO);
        p.payload = p.payload.slice(0..4);
        assert!(parse_echo(&p).is_none());
    }
}
