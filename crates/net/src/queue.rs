//! Packet queues and rate limiting.
//!
//! [`PacketQueue`] is a drop-tail FIFO bounded in both packets and bytes —
//! the discipline of the PlanetLab node interfaces and of the operator-side
//! UMTS buffers whose depth produces the multi-second RTTs measured in the
//! paper's saturation experiment. [`TokenBucket`] provides the classic
//! shaper used by fault injection and by the radio bearer pacing.

use umtslab_sim::time::{Duration, Instant};

use crate::packet::Packet;

/// Counters describing the life of a queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Packets accepted into the queue.
    pub enqueued: u64,
    /// Packets handed out of the queue.
    pub dequeued: u64,
    /// Packets rejected because the queue was full.
    pub dropped: u64,
}

/// A drop-tail FIFO bounded by a packet count and a byte count.
#[derive(Debug)]
pub struct PacketQueue {
    items: std::collections::VecDeque<Packet>,
    max_packets: usize,
    max_bytes: usize,
    cur_bytes: usize,
    stats: QueueStats,
}

impl PacketQueue {
    /// Creates a queue holding at most `max_packets` packets and
    /// `max_bytes` total wire bytes. A zero limit means "unlimited" for
    /// that dimension.
    pub fn new(max_packets: usize, max_bytes: usize) -> PacketQueue {
        PacketQueue {
            items: std::collections::VecDeque::new(),
            max_packets,
            max_bytes,
            cur_bytes: 0,
            stats: QueueStats::default(),
        }
    }

    /// Attempts to enqueue; on overflow the packet is returned to the
    /// caller (dropped, in protocol terms) and the drop counter increments.
    pub fn enqueue(&mut self, packet: Packet) -> Result<(), Packet> {
        let size = packet.wire_len();
        let over_packets = self.max_packets != 0 && self.items.len() >= self.max_packets;
        let over_bytes = self.max_bytes != 0 && self.cur_bytes + size > self.max_bytes;
        if over_packets || over_bytes {
            self.stats.dropped += 1;
            return Err(packet);
        }
        self.cur_bytes += size;
        self.items.push_back(packet);
        self.stats.enqueued += 1;
        Ok(())
    }

    /// Removes and returns the head-of-line packet.
    pub fn dequeue(&mut self) -> Option<Packet> {
        let p = self.items.pop_front()?;
        self.cur_bytes -= p.wire_len();
        self.stats.dequeued += 1;
        Some(p)
    }

    /// The head-of-line packet, if any.
    pub fn peek(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Number of queued packets.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total wire bytes currently queued.
    pub fn bytes(&self) -> usize {
        self.cur_bytes
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Drops everything queued (counted as drops).
    pub fn clear(&mut self) {
        self.stats.dropped += self.items.len() as u64;
        self.items.clear();
        self.cur_bytes = 0;
    }
}

/// A token-bucket rate limiter / shaper.
///
/// Tokens are denominated in bytes and refill continuously at `rate_bps / 8`
/// bytes per second up to `burst_bytes`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_bps: u64,
    burst_bytes: u64,
    /// Available tokens, in micro-byte fixed point to avoid rounding drift.
    tokens_ub: u64,
    last_refill: Instant,
}

const UB: u64 = 1_000_000; // micro-bytes per byte

impl TokenBucket {
    /// Creates a bucket that is initially full.
    pub fn new(rate_bps: u64, burst_bytes: u64) -> TokenBucket {
        TokenBucket {
            rate_bps,
            burst_bytes,
            tokens_ub: burst_bytes.saturating_mul(UB),
            last_refill: Instant::ZERO,
        }
    }

    /// The configured rate in bits per second.
    pub fn rate_bps(&self) -> u64 {
        self.rate_bps
    }

    /// Changes the refill rate (tokens already accrued are kept).
    pub fn set_rate(&mut self, now: Instant, rate_bps: u64) {
        self.refill(now);
        self.rate_bps = rate_bps;
    }

    /// Whole tokens (bytes) currently available.
    pub fn available(&mut self, now: Instant) -> u64 {
        self.refill(now);
        self.tokens_ub / UB
    }

    /// Tries to spend `bytes` tokens; returns whether the send conforms.
    pub fn try_consume(&mut self, now: Instant, bytes: usize) -> bool {
        self.refill(now);
        let need = (bytes as u64).saturating_mul(UB);
        if self.tokens_ub >= need {
            self.tokens_ub -= need;
            true
        } else {
            false
        }
    }

    /// How long until `bytes` tokens will be available, assuming no other
    /// consumption. [`Duration::ZERO`] if available now; [`Duration::MAX`]
    /// if the bucket can never hold that many (bytes > burst) or the rate
    /// is zero.
    pub fn time_until(&mut self, now: Instant, bytes: usize) -> Duration {
        self.refill(now);
        let need = (bytes as u64).saturating_mul(UB);
        if self.tokens_ub >= need {
            return Duration::ZERO;
        }
        if self.rate_bps == 0 || bytes as u64 > self.burst_bytes {
            return Duration::MAX;
        }
        let deficit_ub = need - self.tokens_ub;
        // rate in micro-bytes per second = rate_bps / 8 * UB
        let rate_ub_per_sec = self.rate_bps as u128 * UB as u128 / 8;
        // lint:allow(D4) rate→time conversion scratch; immediately wrapped in Duration below
        let micros = (deficit_ub as u128 * 1_000_000).div_ceil(rate_ub_per_sec);
        Duration::from_micros(micros.min(u64::MAX as u128) as u64)
    }

    fn refill(&mut self, now: Instant) {
        if now <= self.last_refill {
            return;
        }
        let elapsed = now.duration_since(self.last_refill);
        self.last_refill = now;
        // bytes accrued = rate_bps / 8 * seconds; in micro-bytes:
        let add = self.rate_bps as u128 * elapsed.total_micros() as u128 / 8;
        let cap = self.burst_bytes.saturating_mul(UB);
        self.tokens_ub = (self.tokens_ub as u128 + add).min(cap as u128) as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};
    use crate::wire::{Endpoint, Ipv4Address};

    fn pkt(id: u64, payload: usize) -> Packet {
        Packet::udp(
            PacketId(id),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 2),
            vec![0; payload],
            Instant::ZERO,
        )
    }

    #[test]
    fn fifo_order() {
        let mut q = PacketQueue::new(10, 0);
        for i in 0..5 {
            q.enqueue(pkt(i, 10)).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.dequeue().unwrap().id, PacketId(i));
        }
        assert!(q.dequeue().is_none());
    }

    #[test]
    fn packet_limit_enforced() {
        let mut q = PacketQueue::new(2, 0);
        q.enqueue(pkt(0, 1)).unwrap();
        q.enqueue(pkt(1, 1)).unwrap();
        let rejected = q.enqueue(pkt(2, 1)).unwrap_err();
        assert_eq!(rejected.id, PacketId(2));
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn byte_limit_enforced() {
        // Each packet is 28 + payload bytes on the wire.
        let mut q = PacketQueue::new(0, 100);
        q.enqueue(pkt(0, 20)).unwrap(); // 48 bytes
        q.enqueue(pkt(1, 20)).unwrap(); // 96 bytes
        assert!(q.enqueue(pkt(2, 20)).is_err()); // would be 144
        assert_eq!(q.bytes(), 96);
        q.dequeue().unwrap();
        assert_eq!(q.bytes(), 48);
        q.enqueue(pkt(3, 20)).unwrap();
    }

    #[test]
    fn zero_limits_mean_unlimited() {
        let mut q = PacketQueue::new(0, 0);
        for i in 0..1000 {
            q.enqueue(pkt(i, 100)).unwrap();
        }
        assert_eq!(q.len(), 1000);
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut q = PacketQueue::new(1, 0);
        q.enqueue(pkt(0, 1)).unwrap();
        let _ = q.enqueue(pkt(1, 1));
        q.dequeue();
        assert_eq!(q.stats(), QueueStats { enqueued: 1, dequeued: 1, dropped: 1 });
    }

    #[test]
    fn clear_counts_drops() {
        let mut q = PacketQueue::new(0, 0);
        q.enqueue(pkt(0, 1)).unwrap();
        q.enqueue(pkt(1, 1)).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.bytes(), 0);
        assert_eq!(q.stats().dropped, 2);
    }

    #[test]
    fn bucket_starts_full() {
        let mut tb = TokenBucket::new(8_000, 1000);
        assert!(tb.try_consume(Instant::ZERO, 1000));
        assert!(!tb.try_consume(Instant::ZERO, 1));
    }

    #[test]
    fn bucket_refills_at_rate() {
        // 8000 bps = 1000 bytes/s = 1 byte/ms.
        let mut tb = TokenBucket::new(8_000, 1000);
        assert!(tb.try_consume(Instant::ZERO, 1000));
        assert!(!tb.try_consume(Instant::from_millis(499), 500));
        assert!(tb.try_consume(Instant::from_millis(500), 500));
    }

    #[test]
    fn bucket_caps_at_burst() {
        let mut tb = TokenBucket::new(8_000, 100);
        // After a long idle period, tokens cap at burst.
        assert_eq!(tb.available(Instant::from_secs(60)), 100);
    }

    #[test]
    fn time_until_is_exact() {
        let mut tb = TokenBucket::new(8_000, 1000);
        assert!(tb.try_consume(Instant::ZERO, 1000));
        // Need 250 bytes: at 1 byte/ms that is 250 ms.
        assert_eq!(tb.time_until(Instant::ZERO, 250), Duration::from_millis(250));
        assert_eq!(tb.time_until(Instant::ZERO, 0), Duration::ZERO);
        // More than burst can never be satisfied.
        assert_eq!(tb.time_until(Instant::ZERO, 1001), Duration::MAX);
    }

    #[test]
    fn zero_rate_never_refills() {
        let mut tb = TokenBucket::new(0, 100);
        assert!(tb.try_consume(Instant::ZERO, 100));
        assert_eq!(tb.time_until(Instant::from_secs(10), 1), Duration::MAX);
    }

    #[test]
    fn set_rate_takes_effect() {
        let mut tb = TokenBucket::new(8_000, 1000);
        tb.try_consume(Instant::ZERO, 1000);
        tb.set_rate(Instant::ZERO, 16_000); // 2 bytes/ms now
        assert!(tb.try_consume(Instant::from_millis(250), 500));
    }

    #[test]
    fn time_until_then_consume_conforms() {
        let mut tb = TokenBucket::new(56_000, 700);
        assert!(tb.try_consume(Instant::ZERO, 700));
        let wait = tb.time_until(Instant::ZERO, 700);
        let at = Instant::ZERO + wait;
        assert!(tb.try_consume(at, 700), "tokens must be available after the computed wait");
    }
}
