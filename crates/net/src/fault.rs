//! Fault injection for links.
//!
//! Modeled after the fault-injection options of smoltcp's example suite:
//! random loss, corruption, duplication and reordering, each independently
//! configurable. Loss supports both a memoryless Bernoulli model and a
//! two-state Gilbert–Elliott model, which reproduces the bursty loss typical
//! of radio links.

use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Duration;

/// Packet-loss process.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LossModel {
    /// No loss.
    #[default]
    None,
    /// Independent loss with probability `p` per packet.
    Bernoulli {
        /// Loss probability in `[0, 1]`.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) loss: the channel alternates
    /// between a good and a bad state with the given transition
    /// probabilities (evaluated per packet), and drops packets with a
    /// state-dependent probability.
    GilbertElliott {
        /// P(good -> bad) per packet.
        p_gb: f64,
        /// P(bad -> good) per packet.
        p_bg: f64,
        /// Loss probability while in the good state.
        loss_good: f64,
        /// Loss probability while in the bad state.
        loss_bad: f64,
    },
}

/// Full fault-injection configuration for one link direction.
#[derive(Debug, Clone, Default)]
pub struct FaultConfig {
    /// Loss process.
    pub loss: LossModel,
    /// Probability a surviving packet is corrupted in flight (the receiving
    /// stack will discard it on checksum failure).
    pub corrupt_prob: f64,
    /// Probability a surviving packet is delivered twice.
    pub duplicate_prob: f64,
    /// Probability a surviving packet is delayed past its successors.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_delay: Duration,
}

impl FaultConfig {
    /// A configuration that never interferes.
    pub fn none() -> FaultConfig {
        FaultConfig::default()
    }

    /// A bursty-UMTS channel: the Gilbert–Elliott parameters reproduce the
    /// clustered losses the paper measures on the commercial 3G uplink
    /// (long clean stretches punctuated by fade bursts that eat most
    /// packets for a few hundred milliseconds). Used by the bursty-UMTS
    /// campaign preset and the bench figures binary.
    pub fn bursty_umts() -> FaultConfig {
        FaultConfig {
            loss: LossModel::GilbertElliott {
                p_gb: 0.004,
                p_bg: 0.25,
                loss_good: 0.001,
                loss_bad: 0.45,
            },
            ..FaultConfig::default()
        }
    }

    /// True if no fault can ever fire (fast path for clean links).
    pub fn is_none(&self) -> bool {
        matches!(self.loss, LossModel::None)
            && self.corrupt_prob <= 0.0
            && self.duplicate_prob <= 0.0
            && self.reorder_prob <= 0.0
    }
}

/// The fate decided for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Verdict {
    /// Packet is lost entirely.
    pub drop: bool,
    /// Packet is damaged (delivered, but fails receiver checksum).
    pub corrupt: bool,
    /// Packet is delivered twice.
    pub duplicate: bool,
    /// Extra delay (packet exempt from FIFO ordering), if reordered.
    pub reorder_delay: Option<Duration>,
}

impl Verdict {
    /// A clean pass-through verdict.
    pub const PASS: Verdict =
        Verdict { drop: false, corrupt: false, duplicate: false, reorder_delay: None };
}

/// Stateful fault injector for one link direction.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    /// Gilbert–Elliott channel state: `true` when in the bad state.
    in_bad_state: bool,
}

impl FaultInjector {
    /// Creates an injector; the Gilbert–Elliott channel starts good.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector { config, in_bad_state: false }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decides the fate of the next packet.
    pub fn judge(&mut self, rng: &mut SimRng) -> Verdict {
        if self.config.is_none() {
            return Verdict::PASS;
        }
        let lost = match self.config.loss {
            LossModel::None => false,
            LossModel::Bernoulli { p } => rng.chance(p),
            LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
                // Transition first, then sample loss in the new state.
                if self.in_bad_state {
                    if rng.chance(p_bg) {
                        self.in_bad_state = false;
                    }
                } else if rng.chance(p_gb) {
                    self.in_bad_state = true;
                }
                rng.chance(if self.in_bad_state { loss_bad } else { loss_good })
            }
        };
        if lost {
            return Verdict { drop: true, ..Verdict::PASS };
        }
        let corrupt = rng.chance(self.config.corrupt_prob);
        let duplicate = rng.chance(self.config.duplicate_prob);
        let reorder_delay = if rng.chance(self.config.reorder_prob) {
            Some(self.config.reorder_delay)
        } else {
            None
        };
        Verdict { drop: false, corrupt, duplicate, reorder_delay }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(1234)
    }

    #[test]
    fn none_config_always_passes() {
        let mut inj = FaultInjector::new(FaultConfig::none());
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(inj.judge(&mut r), Verdict::PASS);
        }
    }

    #[test]
    fn bernoulli_loss_rate_is_plausible() {
        let mut inj = FaultInjector::new(FaultConfig {
            loss: LossModel::Bernoulli { p: 0.2 },
            ..FaultConfig::none()
        });
        let mut r = rng();
        let n = 50_000;
        let drops = (0..n).filter(|_| inj.judge(&mut r).drop).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.01, "observed {rate}");
    }

    #[test]
    fn gilbert_elliott_losses_are_bursty() {
        // Strongly bursty channel: rare transitions, lossless good state,
        // very lossy bad state.
        let cfg = FaultConfig {
            loss: LossModel::GilbertElliott {
                p_gb: 0.01,
                p_bg: 0.2,
                loss_good: 0.0,
                loss_bad: 0.9,
            },
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let n = 200_000;
        let fates: Vec<bool> = (0..n).map(|_| inj.judge(&mut r).drop).collect();
        let total = fates.iter().filter(|&&d| d).count();
        assert!(total > 0, "bursty channel should lose something");

        // Burstiness check: the probability that the packet after a loss is
        // also lost must be much higher than the marginal loss rate.
        let mut after_loss = 0usize;
        let mut after_loss_lost = 0usize;
        for w in fates.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let marginal = total as f64 / n as f64;
        let conditional = after_loss_lost as f64 / after_loss as f64;
        assert!(
            conditional > 3.0 * marginal,
            "loss not bursty: marginal {marginal:.4}, conditional {conditional:.4}"
        );
    }

    #[test]
    fn corruption_and_duplication_fire() {
        let cfg = FaultConfig { corrupt_prob: 0.5, duplicate_prob: 0.5, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let n = 10_000;
        let mut corrupt = 0;
        let mut dup = 0;
        for _ in 0..n {
            let v = inj.judge(&mut r);
            assert!(!v.drop);
            if v.corrupt {
                corrupt += 1;
            }
            if v.duplicate {
                dup += 1;
            }
        }
        assert!((corrupt as f64 / n as f64 - 0.5).abs() < 0.03);
        assert!((dup as f64 / n as f64 - 0.5).abs() < 0.03);
    }

    #[test]
    fn reorder_carries_configured_delay() {
        let cfg = FaultConfig {
            reorder_prob: 1.0,
            reorder_delay: Duration::from_millis(30),
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let v = inj.judge(&mut r);
        assert_eq!(v.reorder_delay, Some(Duration::from_millis(30)));
    }

    #[test]
    fn bursty_umts_preset_is_gilbert_elliott_and_active() {
        let cfg = FaultConfig::bursty_umts();
        assert!(!cfg.is_none());
        assert!(matches!(cfg.loss, LossModel::GilbertElliott { .. }));
        // The preset must actually lose packets, in bursts.
        let mut inj = FaultInjector::new(cfg);
        let mut r = rng();
        let n = 100_000;
        let fates: Vec<bool> = (0..n).map(|_| inj.judge(&mut r).drop).collect();
        let total = fates.iter().filter(|&&d| d).count();
        let marginal = total as f64 / n as f64;
        assert!(marginal > 0.001 && marginal < 0.1, "marginal loss {marginal}");
        let mut after_loss = 0usize;
        let mut after_loss_lost = 0usize;
        for w in fates.windows(2) {
            if w[0] {
                after_loss += 1;
                if w[1] {
                    after_loss_lost += 1;
                }
            }
        }
        let conditional = after_loss_lost as f64 / after_loss.max(1) as f64;
        assert!(conditional > 3.0 * marginal, "preset not bursty: {marginal} vs {conditional}");
    }

    #[test]
    fn is_none_detects_active_faults() {
        assert!(FaultConfig::none().is_none());
        assert!(!FaultConfig { corrupt_prob: 0.1, ..FaultConfig::none() }.is_none());
        assert!(!FaultConfig { loss: LossModel::Bernoulli { p: 0.01 }, ..FaultConfig::none() }
            .is_none());
    }
}
