//! libpcap-format packet capture.
//!
//! Following smoltcp's example suite, every experiment can dump the
//! packets it observed to a standard `.pcap` file (classic format,
//! microsecond resolution, `LINKTYPE_RAW` = 101: each record is a raw
//! IPv4 packet) readable by Wireshark/tcpdump. Packets are serialized
//! through the honest wire encoder, so what lands in the file is real
//! IPv4+UDP bytes with valid checksums.

use std::io::{self, Write};

use umtslab_sim::time::Instant;

use crate::packet::Packet;

/// Global header magic for microsecond-resolution classic pcap.
const MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_RAW: packets begin directly with the IPv4 header.
const LINKTYPE_RAW: u32 = 101;

/// Writes a classic pcap stream.
///
/// ```
/// use umtslab_net::pcap::PcapWriter;
/// use umtslab_net::packet::{Packet, PacketId};
/// use umtslab_net::wire::{Endpoint, Ipv4Address};
/// use umtslab_sim::time::Instant;
///
/// let mut buf = Vec::new();
/// let mut w = PcapWriter::new(&mut buf).unwrap();
/// let p = Packet::udp(
///     PacketId(0),
///     Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 9000),
///     Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 9001),
///     b"hello".to_vec(),
///     Instant::ZERO,
/// );
/// w.record(Instant::from_millis(5), &p).unwrap();
/// assert!(buf.len() > 24 + 16 + 28);
/// ```
pub struct PcapWriter<W: Write> {
    sink: W,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Creates a writer and emits the global header.
    pub fn new(mut sink: W) -> io::Result<PcapWriter<W>> {
        sink.write_all(&MAGIC.to_le_bytes())?;
        sink.write_all(&2u16.to_le_bytes())?; // version major
        sink.write_all(&4u16.to_le_bytes())?; // version minor
        sink.write_all(&0i32.to_le_bytes())?; // thiszone
        sink.write_all(&0u32.to_le_bytes())?; // sigfigs
        sink.write_all(&65_535u32.to_le_bytes())?; // snaplen
        sink.write_all(&LINKTYPE_RAW.to_le_bytes())?;
        Ok(PcapWriter { sink, records: 0 })
    }

    /// Appends one packet observed at `at` (simulated time maps directly
    /// to the capture timestamp).
    pub fn record(&mut self, at: Instant, packet: &Packet) -> io::Result<()> {
        let bytes = packet
            .to_wire()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.record_raw(at, &bytes)
    }

    /// Appends pre-serialized IP bytes.
    pub fn record_raw(&mut self, at: Instant, bytes: &[u8]) -> io::Result<()> {
        let secs = at.total_secs() as u32;
        // lint:allow(D4) the pcap record header demands raw sec/usec fields
        let micros = (at.total_micros() % 1_000_000) as u32;
        let len = bytes.len() as u32;
        self.sink.write_all(&secs.to_le_bytes())?;
        self.sink.write_all(&micros.to_le_bytes())?;
        self.sink.write_all(&len.to_le_bytes())?; // captured
        self.sink.write_all(&len.to_le_bytes())?; // original
        self.sink.write_all(bytes)?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Flushes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Minimal reader for validation/tests: parses the global header and
/// yields `(timestamp, bytes)` records.
#[derive(Debug)]
pub struct PcapReader<'a> {
    data: &'a [u8],
    offset: usize,
}

/// Errors from [`PcapReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcapError {
    /// The global header is missing or has the wrong magic.
    BadHeader,
    /// A record header or body is truncated.
    Truncated,
}

impl<'a> PcapReader<'a> {
    /// Opens a pcap byte buffer, validating the global header.
    pub fn new(data: &'a [u8]) -> Result<PcapReader<'a>, PcapError> {
        if data.len() < 24 {
            return Err(PcapError::BadHeader);
        }
        let magic = u32::from_le_bytes(data[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(PcapError::BadHeader);
        }
        let network = u32::from_le_bytes(data[20..24].try_into().expect("4 bytes"));
        if network != LINKTYPE_RAW {
            return Err(PcapError::BadHeader);
        }
        Ok(PcapReader { data, offset: 24 })
    }

    /// Reads the next record.
    pub fn next_record(&mut self) -> Result<Option<(Instant, &'a [u8])>, PcapError> {
        if self.offset == self.data.len() {
            return Ok(None);
        }
        if self.data.len() - self.offset < 16 {
            return Err(PcapError::Truncated);
        }
        let h = &self.data[self.offset..self.offset + 16];
        let secs = u32::from_le_bytes(h[0..4].try_into().expect("4 bytes")) as u64;
        // lint:allow(D4) decoding the pcap record header's raw sec/usec fields
        let micros = u32::from_le_bytes(h[4..8].try_into().expect("4 bytes")) as u64;
        let caplen = u32::from_le_bytes(h[8..12].try_into().expect("4 bytes")) as usize;
        let start = self.offset + 16;
        let end = start + caplen;
        if end > self.data.len() {
            return Err(PcapError::Truncated);
        }
        self.offset = end;
        Ok(Some((Instant::from_micros(secs * 1_000_000 + micros), &self.data[start..end])))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Packet, PacketId};
    use crate::wire::{Endpoint, Ipv4Address};

    fn pkt(id: u64, payload: &[u8]) -> Packet {
        Packet::udp(
            PacketId(id),
            Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 9000),
            Endpoint::new(Ipv4Address::new(192, 0, 2, 9), 9001),
            payload.to_vec(),
            Instant::ZERO,
        )
    }

    #[test]
    fn header_layout() {
        let mut buf = Vec::new();
        let w = PcapWriter::new(&mut buf).unwrap();
        assert_eq!(w.records(), 0);
        let _ = w.finish().unwrap();
        assert_eq!(buf.len(), 24);
        assert_eq!(&buf[0..4], &MAGIC.to_le_bytes());
        assert_eq!(u32::from_le_bytes(buf[20..24].try_into().unwrap()), 101);
    }

    #[test]
    fn roundtrip_through_reader() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        let p1 = pkt(1, b"alpha");
        let p2 = pkt(2, b"bravo-longer-payload");
        w.record(Instant::from_micros(1_234_567), &p1).unwrap();
        w.record(Instant::from_secs(2), &p2).unwrap();
        assert_eq!(w.records(), 2);
        let _ = w.finish().unwrap();

        let mut r = PcapReader::new(&buf).unwrap();
        let (t1, b1) = r.next_record().unwrap().unwrap();
        assert_eq!(t1, Instant::from_micros(1_234_567));
        let parsed = Packet::from_wire(b1, PacketId(1), Instant::ZERO).unwrap();
        assert_eq!(parsed.payload, b"alpha");
        let (t2, b2) = r.next_record().unwrap().unwrap();
        assert_eq!(t2, Instant::from_secs(2));
        assert_eq!(b2.len(), p2.wire_len());
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn reader_rejects_garbage() {
        assert_eq!(PcapReader::new(&[0u8; 10]).unwrap_err(), PcapError::BadHeader);
        let mut bad = Vec::new();
        let w = PcapWriter::new(&mut bad).unwrap();
        let _ = w.finish().unwrap();
        bad[0] ^= 0xFF;
        assert_eq!(PcapReader::new(&bad).unwrap_err(), PcapError::BadHeader);
    }

    #[test]
    fn truncated_record_detected() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        w.record(Instant::ZERO, &pkt(1, b"x")).unwrap();
        let _ = w.finish().unwrap();
        let cut = &buf[..buf.len() - 3];
        let mut r = PcapReader::new(cut).unwrap();
        assert_eq!(r.next_record().unwrap_err(), PcapError::Truncated);
    }

    #[test]
    fn non_udp_packet_is_an_io_error() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf).unwrap();
        let mut p = pkt(0, b"x");
        p.protocol = crate::wire::Protocol::Tcp;
        assert!(w.record(Instant::ZERO, &p).is_err());
    }
}
