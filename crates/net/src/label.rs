//! Interned string labels for hot-path identifiers.
//!
//! Trace records, metrics keys and node/slice names all repeat a small,
//! bounded set of strings ("planetlab1.unina.it/ppp0", "unina_umts", …).
//! A [`Label`] replaces those owned `String`s with a `Copy` 4-byte handle
//! into a process-wide symbol table, so recording a trace event or keying
//! a metrics map never allocates. Interning a given string is O(1)
//! amortized and happens once; every later lookup of the same text yields
//! the same handle.
//!
//! The table stores each unique string by leaking a boxed `str` (safe, no
//! `unsafe` involved). The set of labels in a simulation is bounded by the
//! topology — node names, interfaces, slices — so the leak is a one-time,
//! bounded cost, the classic trade for `&'static str` interning.

use core::fmt;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The process-wide symbol table.
struct Interner {
    // lint:allow(D1) lookup-only interner table; ids come from `names` insertion order, never from iterating the map
    map: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static TABLE: OnceLock<Mutex<Interner>> = OnceLock::new();
    // lint:allow(D1) constructing the lookup-only interner table justified above
    TABLE.get_or_init(|| Mutex::new(Interner { map: HashMap::new(), names: Vec::new() }))
}

/// An interned string: a `Copy` handle that resolves back to its text.
///
/// ```
/// use umtslab_net::label::Label;
///
/// let a = Label::intern("ppp0");
/// let b = Label::intern("ppp0");
/// assert_eq!(a, b); // same text, same handle
/// assert_eq!(a.as_str(), "ppp0");
/// assert_eq!(a, "ppp0"); // compares by text
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Label(u32);

impl Label {
    /// Interns `text`, returning its stable handle.
    pub fn intern(text: &str) -> Label {
        let mut table = interner().lock().expect("label interner poisoned");
        if let Some(&id) = table.map.get(text) {
            return Label(id);
        }
        let id = u32::try_from(table.names.len()).expect("label table overflow");
        let leaked: &'static str = Box::leak(text.to_owned().into_boxed_str());
        table.map.insert(leaked, id);
        table.names.push(leaked);
        Label(id)
    }

    /// Resolves the label back to its text.
    pub fn as_str(self) -> &'static str {
        let table = interner().lock().expect("label interner poisoned");
        table.names[self.0 as usize]
    }
}

impl From<&str> for Label {
    fn from(text: &str) -> Label {
        Label::intern(text)
    }
}

impl From<&String> for Label {
    fn from(text: &String) -> Label {
        Label::intern(text)
    }
}

impl From<String> for Label {
    fn from(text: String) -> Label {
        Label::intern(&text)
    }
}

impl PartialEq<str> for Label {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Label {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Label {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_text_same_handle() {
        let a = Label::intern("eth0");
        let b = Label::intern("eth0");
        assert_eq!(a, b);
        assert_eq!(a.0, b.0);
    }

    #[test]
    fn distinct_text_distinct_handles() {
        let a = Label::intern("label-test-a");
        let b = Label::intern("label-test-b");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "label-test-a");
        assert_eq!(b.as_str(), "label-test-b");
    }

    #[test]
    fn compares_against_strings() {
        let a = Label::intern("napoli");
        assert_eq!(a, "napoli");
        assert_eq!(a, String::from("napoli"));
        assert!(a != "inria");
    }

    #[test]
    fn conversions_and_display() {
        let a: Label = "lo".into();
        let b: Label = String::from("lo").into();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "lo");
        assert_eq!(format!("{a:?}"), "Label(\"lo\")");
    }

    #[test]
    fn labels_key_hash_maps() {
        use std::collections::HashMap;
        let mut m: HashMap<Label, u32> = HashMap::new();
        m.insert(Label::intern("op"), 1);
        *m.entry(Label::intern("op")).or_insert(0) += 1;
        assert_eq!(m.len(), 1);
        assert_eq!(m[&Label::intern("op")], 2);
    }
}
