//! Property test: wire serialization round-trips packets bit-exactly.
//!
//! With the refcounted [`Bytes`] payload the simulator never serializes on
//! the wired fast path, so the honest wire encoding at the PPP/pcap
//! boundaries is the only place where payload bytes are materialized. This
//! test drives `to_wire` → `from_wire` over a seeded stream of randomized
//! packets and checks that every field — and every payload byte — survives
//! the trip unchanged, including zero-length and maximum-oddity payloads.

use umtslab_net::bytes::Bytes;
use umtslab_net::packet::{Packet, PacketId};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Instant;

fn random_packet(rng: &mut SimRng, id: u64) -> Packet {
    let src = Endpoint::new(
        Ipv4Address::new(
            rng.uniform_u64(1, 223) as u8,
            rng.uniform_u64(0, 255) as u8,
            rng.uniform_u64(0, 255) as u8,
            rng.uniform_u64(1, 254) as u8,
        ),
        rng.uniform_u64(1, 65535) as u16,
    );
    let dst = Endpoint::new(
        Ipv4Address::new(
            rng.uniform_u64(1, 223) as u8,
            rng.uniform_u64(0, 255) as u8,
            rng.uniform_u64(0, 255) as u8,
            rng.uniform_u64(1, 254) as u8,
        ),
        rng.uniform_u64(1, 65535) as u16,
    );
    let len = match rng.uniform_u64(0, 3) {
        0 => 0,
        1 => rng.uniform_u64(1, 32) as usize,
        2 => rng.uniform_u64(33, 1472) as usize,
        _ => 1472, // Ethernet-MTU-sized UDP payload.
    };
    let mut payload = vec![0u8; len];
    for b in &mut payload {
        *b = rng.uniform_u64(0, 255) as u8;
    }
    let mut p = Packet::udp(PacketId(id), src, dst, payload, Instant::ZERO);
    p.tos = rng.uniform_u64(0, 255) as u8;
    p.ttl = rng.uniform_u64(1, 255) as u8;
    p
}

#[test]
fn wire_roundtrip_is_bit_exact_over_seeded_stream() {
    let mut rng = SimRng::seed_from_u64(0x5eed_da7a);
    for id in 0..500 {
        let original = random_packet(&mut rng, id);
        let wire = original.to_wire().expect("serializable UDP packet");
        assert_eq!(wire.len(), original.wire_len(), "packet {id}");
        let parsed =
            Packet::from_wire(&wire, original.id, original.created).expect("valid wire bytes");
        assert_eq!(parsed.src, original.src, "packet {id}");
        assert_eq!(parsed.dst, original.dst, "packet {id}");
        assert_eq!(parsed.protocol, original.protocol, "packet {id}");
        assert_eq!(parsed.tos, original.tos, "packet {id}");
        assert_eq!(parsed.ttl, original.ttl, "packet {id}");
        assert_eq!(&parsed.payload[..], &original.payload[..], "payload bytes for packet {id}");
        // Re-encoding the parsed packet must reproduce the identical frame:
        // the encoding is canonical, not merely invertible.
        let wire2 = parsed.to_wire().expect("re-serializable");
        assert_eq!(wire, wire2, "canonical re-encode for packet {id}");
    }
}

#[test]
fn roundtrip_through_shared_slices_is_bit_exact() {
    // Slicing a shared payload must not disturb what goes on the wire.
    let mut rng = SimRng::seed_from_u64(42);
    let mut backing = vec![0u8; 256];
    for b in &mut backing {
        *b = rng.uniform_u64(0, 255) as u8;
    }
    let whole = Bytes::from(backing);
    for start in [0usize, 1, 17, 128] {
        let view = whole.slice(start..256);
        let src = Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 5000);
        let dst = Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 6000);
        let p = Packet::udp(PacketId(start as u64), src, dst, view.clone(), Instant::ZERO);
        // The packet shares the backing allocation rather than copying it.
        assert!(whole.ref_count() >= 2);
        let wire = p.to_wire().expect("serializable");
        let parsed = Packet::from_wire(&wire, p.id, p.created).expect("valid");
        assert_eq!(&parsed.payload[..], &view[..]);
    }
}
