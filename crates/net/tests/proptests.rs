//! Property-style tests for the network substrate, driven by the
//! workspace's deterministic [`SimRng`] generator (the build environment
//! is offline, so no external property-testing crate is used).

use umtslab_net::link::{JitterModel, LinkConfig, Pipe, PushOutcome};
use umtslab_net::packet::{Mark, Packet, PacketId};
use umtslab_net::queue::PacketQueue;
use umtslab_net::route::{FlowKey, PolicyRule, Rib, Route, RoutingTable, RuleSelector, TableId};
use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr, IPV4_HEADER_LEN, UDP_HEADER_LEN};
use umtslab_net::IfaceId;
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

/// Randomized cases per property.
const CASES: u64 = 96;

fn rand_addr(rng: &mut SimRng) -> Ipv4Address {
    Ipv4Address::from_u32(rng.next_u64() as u32)
}

fn rand_cidr(rng: &mut SimRng) -> Ipv4Cidr {
    let len = rng.uniform_u64(0, 32) as u8;
    Ipv4Cidr::new(rand_addr(rng), len)
}

fn rand_bytes(rng: &mut SimRng, min: usize, max: usize) -> Vec<u8> {
    let len = rng.uniform_u64(min as u64, max as u64) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn packet(id: u64, payload: Vec<u8>) -> Packet {
    Packet::udp(
        PacketId(id),
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1000),
        Endpoint::new(Ipv4Address::new(192, 0, 2, 7), 2000),
        payload,
        Instant::ZERO,
    )
}

/// Address textual round trip is lossless.
#[test]
fn addr_display_parse_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x0101);
    for _ in 0..CASES {
        let a = rand_addr(&mut rng);
        let text = a.to_string();
        let parsed: Ipv4Address = text.parse().unwrap();
        assert_eq!(parsed, a);
    }
}

/// CIDR containment agrees with the mask arithmetic definition, and the
/// canonical network base is always inside its own prefix.
#[test]
fn cidr_contains_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0x0102);
    for _ in 0..CASES {
        let c = rand_cidr(&mut rng);
        let a = rand_addr(&mut rng);
        let reference = if c.prefix_len() == 0 {
            true
        } else {
            let shift = 32 - c.prefix_len() as u32;
            (a.to_u32() >> shift) == (c.address().to_u32() >> shift)
        };
        assert_eq!(c.contains(a), reference);
        assert!(c.contains(c.address()), "base must be a member of {c}");
    }
}

/// Wire serialization round-trips arbitrary payloads and preserves every
/// header field.
#[test]
fn wire_roundtrip() {
    let mut rng = SimRng::seed_from_u64(0x0103);
    for _ in 0..CASES {
        let payload = rand_bytes(&mut rng, 0, 1399);
        let mut p = packet(1, payload.clone());
        p.src = Endpoint::new(rand_addr(&mut rng), rng.next_u64() as u16);
        p.dst = Endpoint::new(rand_addr(&mut rng), rng.next_u64() as u16);
        p.tos = rng.next_u64() as u8;
        p.ttl = rng.uniform_u64(1, 255) as u8;
        let bytes = p.to_wire().unwrap();
        assert_eq!(bytes.len(), IPV4_HEADER_LEN + UDP_HEADER_LEN + payload.len());
        let q = Packet::from_wire(&bytes, p.id, p.created).unwrap();
        assert_eq!(q.src, p.src);
        assert_eq!(q.dst, p.dst);
        assert_eq!(q.tos, p.tos);
        assert_eq!(q.ttl, p.ttl);
        assert_eq!(q.payload, payload);
    }
}

/// Any single-bit flip anywhere in the wire image is detected by one of
/// the two checksums (as long as the structural fields still parse, the
/// packet must not round-trip silently).
#[test]
fn wire_single_bit_flip_never_silent() {
    let mut rng = SimRng::seed_from_u64(0x0104);
    for _ in 0..CASES {
        let payload = rand_bytes(&mut rng, 1, 255);
        let p = packet(1, payload);
        let mut bytes = p.to_wire().unwrap();
        let pos = rng.uniform_u64(0, bytes.len() as u64 - 1) as usize;
        let bit = rng.uniform_u64(0, 7);
        bytes[pos] ^= 1 << bit;
        if let Ok(q) = Packet::from_wire(&bytes, p.id, p.created) {
            // A flip that survives both checksums must be... impossible
            // for a single bit: internet checksums detect all 1-bit
            // errors.
            panic!("silent corruption accepted: {q:?} vs {p:?}");
        }
    }
}

/// Queue conservation: enqueued == dequeued + dropped + still-queued,
/// and the byte gauge matches the queued packets exactly.
#[test]
fn queue_conserves_packets() {
    let mut rng = SimRng::seed_from_u64(0x0105);
    for _ in 0..CASES {
        let max_packets = rng.uniform_u64(0, 15) as usize;
        let max_bytes = rng.uniform_u64(0, 3999) as usize;
        let mut q = PacketQueue::new(max_packets, max_bytes);
        let mut id = 0u64;
        let ops = rng.uniform_u64(1, 199);
        for _ in 0..ops {
            if rng.chance(0.5) {
                let size = rng.uniform_u64(0, 199) as usize;
                let _ = q.enqueue(packet(id, vec![0; size]));
                id += 1;
            } else {
                let _ = q.dequeue();
            }
            // Invariants hold at every step.
            let s = q.stats();
            assert_eq!(s.enqueued, s.dequeued + q.len() as u64);
            if max_packets != 0 {
                assert!(q.len() <= max_packets);
            }
            if max_bytes != 0 {
                assert!(q.bytes() <= max_bytes);
            }
        }
        // Byte gauge agrees with a full drain.
        while q.dequeue().is_some() {}
        assert_eq!(q.bytes(), 0);
    }
}

/// Longest-prefix match agrees with a naive reference implementation.
#[test]
fn lpm_matches_reference() {
    let mut rng = SimRng::seed_from_u64(0x0106);
    for _ in 0..CASES {
        let n_routes = rng.uniform_u64(1, 23) as usize;
        let routes: Vec<(Ipv4Cidr, u32)> =
            (0..n_routes).map(|_| (rand_cidr(&mut rng), rng.uniform_u64(0, 3) as u32)).collect();
        let mut table = RoutingTable::new();
        for (i, (dest, metric)) in routes.iter().enumerate() {
            table.add(Route {
                dest: *dest,
                via: None,
                dev: IfaceId(i as u32),
                metric: *metric,
                prefsrc: None,
            });
        }
        let inserted = table.routes().to_vec();
        let n_probes = rng.uniform_u64(1, 31) as usize;
        for _ in 0..n_probes {
            let probe = rand_addr(&mut rng);
            let got = table.lookup(probe);
            // Reference: max prefix_len among containing routes, then min
            // metric, then earliest insertion.
            let best = inserted.iter().filter(|r| r.dest.contains(probe)).max_by(|a, b| {
                a.dest.prefix_len().cmp(&b.dest.prefix_len()).then_with(|| b.metric.cmp(&a.metric))
            });
            match (got, best) {
                (None, None) => {}
                (Some(g), Some(b)) => {
                    assert_eq!(g.dest.prefix_len(), b.dest.prefix_len());
                    assert_eq!(g.metric, b.metric);
                }
                (g, b) => panic!("lookup {:?} vs reference {:?}", g.is_some(), b.is_some()),
            }
        }
    }
}

/// Policy routing always returns the lowest-priority matching rule whose
/// table resolves, regardless of insertion order.
#[test]
fn policy_rules_scan_by_priority() {
    let mut rng = SimRng::seed_from_u64(0x0107);
    for _ in 0..CASES {
        let n_rules = rng.uniform_u64(1, 11) as usize;
        let priorities: Vec<u32> = (0..n_rules).map(|_| rng.uniform_u64(1, 999) as u32).collect();
        let mark = rng.uniform_u64(1, 4) as u32;
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_dev(IfaceId(0)));
        for (i, prio) in priorities.iter().enumerate() {
            let t = TableId(300 + i as u32);
            rib.table_mut(t).add(Route::default_dev(IfaceId(100 + i as u32)));
            rib.add_rule(PolicyRule {
                priority: *prio,
                selector: RuleSelector::fwmark(Mark(mark)),
                table: t,
            });
        }
        let key = FlowKey {
            src: Ipv4Address::new(1, 1, 1, 1),
            dst: Ipv4Address::new(2, 2, 2, 2),
            mark: Mark(mark),
        };
        let decision = rib.resolve(&key).unwrap();
        let min_prio = *priorities.iter().min().unwrap();
        assert_eq!(decision.rule_priority, min_prio);
        // Unmarked traffic always falls through to main.
        let unmarked = FlowKey { mark: Mark(0), ..key };
        assert_eq!(rib.resolve(&unmarked).unwrap().table, TableId::MAIN);
    }
}

/// Pipe delivery times are non-decreasing (jitter never reorders) and
/// every pushed packet is either scheduled or reported dropped.
#[test]
fn pipe_is_fifo_and_total() {
    let mut rng = SimRng::seed_from_u64(0x0108);
    for _ in 0..CASES {
        let n = rng.uniform_u64(1, 99) as usize;
        let mut cfg = LinkConfig::wired(2_000_000, Duration::from_millis(10));
        cfg.queue_packets = 16;
        cfg.jitter = JitterModel::Uniform { max: Duration::from_millis(5) };
        let mut pipe = Pipe::new(cfg);
        let mut pipe_rng = SimRng::seed_from_u64(rng.next_u64());
        let mut now = Instant::ZERO;
        let mut last_delivery = Instant::ZERO;
        let mut scheduled = 0u64;
        let mut dropped = 0u64;
        for i in 0..n {
            now += Duration::from_micros(rng.uniform_u64(0, 19_999));
            let size = rng.uniform_u64(1, 1199) as usize;
            match pipe.push(now, packet(i as u64, vec![0; size]), &mut pipe_rng) {
                PushOutcome::Scheduled(v) => {
                    for (at, _) in v {
                        assert!(at >= last_delivery, "reordered delivery");
                        assert!(at >= now, "delivery in the past");
                        last_delivery = at;
                        scheduled += 1;
                    }
                }
                PushOutcome::Dropped { .. } => dropped += 1,
            }
        }
        assert_eq!(scheduled + dropped, n as u64);
        let stats = pipe.stats();
        assert_eq!(stats.pushed, n as u64);
        assert_eq!(stats.delivered + stats.dropped_queue + stats.dropped_loss, n as u64);
    }
}

/// `LinkStats::absorb` is an exact field-wise sum.
#[test]
fn link_stats_absorb_is_fieldwise_sum() {
    let mut rng = SimRng::seed_from_u64(0x0109);
    for _ in 0..CASES {
        let mut sample = || {
            let mut pipe = Pipe::new(LinkConfig::wired(1_000_000, Duration::from_millis(1)));
            let mut prng = SimRng::seed_from_u64(rng.next_u64());
            let n = rng.uniform_u64(1, 40);
            for i in 0..n {
                let _ = pipe.push(Instant::from_micros(i * 50), packet(i, vec![0; 400]), &mut prng);
            }
            pipe.stats()
        };
        let a = sample();
        let b = sample();
        let mut total = a;
        total.absorb(b);
        assert_eq!(total.pushed, a.pushed + b.pushed);
        assert_eq!(total.delivered, a.delivered + b.delivered);
        assert_eq!(total.dropped_queue, a.dropped_queue + b.dropped_queue);
        assert_eq!(total.dropped_loss, a.dropped_loss + b.dropped_loss);
    }
}
