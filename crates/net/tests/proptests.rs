//! Property-based tests for the network substrate.

use proptest::prelude::*;

use umtslab_net::link::{JitterModel, LinkConfig, Pipe, PushOutcome};
use umtslab_net::packet::{Mark, Packet, PacketId};
use umtslab_net::queue::PacketQueue;
use umtslab_net::route::{FlowKey, PolicyRule, Rib, Route, RoutingTable, RuleSelector, TableId};
use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr, IPV4_HEADER_LEN, UDP_HEADER_LEN};
use umtslab_net::IfaceId;
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

fn addr_strategy() -> impl Strategy<Value = Ipv4Address> {
    any::<u32>().prop_map(Ipv4Address::from_u32)
}

fn cidr_strategy() -> impl Strategy<Value = Ipv4Cidr> {
    (any::<u32>(), 0u8..=32).prop_map(|(a, len)| Ipv4Cidr::new(Ipv4Address::from_u32(a), len))
}

fn packet(id: u64, payload: Vec<u8>) -> Packet {
    Packet::udp(
        PacketId(id),
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1000),
        Endpoint::new(Ipv4Address::new(192, 0, 2, 7), 2000),
        payload,
        Instant::ZERO,
    )
}

proptest! {
    /// Address textual round trip is lossless.
    #[test]
    fn addr_display_parse_roundtrip(a in addr_strategy()) {
        let text = a.to_string();
        let parsed: Ipv4Address = text.parse().unwrap();
        prop_assert_eq!(parsed, a);
    }

    /// CIDR containment agrees with the mask arithmetic definition.
    #[test]
    fn cidr_contains_matches_reference(c in cidr_strategy(), a in addr_strategy()) {
        let reference = if c.prefix_len() == 0 {
            true
        } else {
            let shift = 32 - c.prefix_len() as u32;
            (a.to_u32() >> shift) == (c.address().to_u32() >> shift)
        };
        prop_assert_eq!(c.contains(a), reference);
    }

    /// The canonical network base is always inside its own prefix.
    #[test]
    fn cidr_base_is_member(c in cidr_strategy()) {
        prop_assert!(c.contains(c.address()));
    }

    /// Wire serialization round-trips arbitrary payloads and preserves
    /// every header field.
    #[test]
    fn wire_roundtrip(
        payload in proptest::collection::vec(any::<u8>(), 0..1400),
        src in addr_strategy(),
        dst in addr_strategy(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        tos in any::<u8>(),
        ttl in 1u8..,
    ) {
        let mut p = packet(1, payload.clone());
        p.src = Endpoint::new(src, sport);
        p.dst = Endpoint::new(dst, dport);
        p.tos = tos;
        p.ttl = ttl;
        let bytes = p.to_wire().unwrap();
        prop_assert_eq!(bytes.len(), IPV4_HEADER_LEN + UDP_HEADER_LEN + payload.len());
        let q = Packet::from_wire(&bytes, p.id, p.created).unwrap();
        prop_assert_eq!(q.src, p.src);
        prop_assert_eq!(q.dst, p.dst);
        prop_assert_eq!(q.tos, tos);
        prop_assert_eq!(q.ttl, ttl);
        prop_assert_eq!(q.payload, payload);
    }

    /// Any single-bit flip anywhere in the wire image is detected by one
    /// of the two checksums (as long as the structural fields still
    /// parse, the packet must not round-trip silently).
    #[test]
    fn wire_single_bit_flip_never_silent(
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        bit in 0usize..8,
        pos_seed in any::<usize>(),
    ) {
        let p = packet(1, payload);
        let mut bytes = p.to_wire().unwrap();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= 1 << bit;
        match Packet::from_wire(&bytes, p.id, p.created) {
            Err(_) => {} // detected: good
            Ok(q) => {
                // A flip that survives both checksums must be... impossible
                // for a single bit: internet checksums detect all 1-bit
                // errors.
                prop_assert!(false, "silent corruption accepted: {:?} vs {:?}", q, p);
            }
        }
    }

    /// Queue conservation: enqueued == dequeued + dropped + still-queued,
    /// and the byte gauge matches the queued packets exactly.
    #[test]
    fn queue_conserves_packets(
        ops in proptest::collection::vec((any::<bool>(), 0usize..200), 1..200),
        max_packets in 0usize..16,
        max_bytes in 0usize..4000,
    ) {
        let mut q = PacketQueue::new(max_packets, max_bytes);
        let mut id = 0u64;
        for (is_enq, size) in ops {
            if is_enq {
                let _ = q.enqueue(packet(id, vec![0; size]));
                id += 1;
            } else {
                let _ = q.dequeue();
            }
            // Invariants hold at every step.
            let s = q.stats();
            prop_assert_eq!(s.enqueued, s.dequeued + q.len() as u64);
            if max_packets != 0 {
                prop_assert!(q.len() <= max_packets);
            }
            if max_bytes != 0 {
                prop_assert!(q.bytes() <= max_bytes);
            }
        }
        // Byte gauge agrees with a full drain.
        let mut measured = 0usize;
        while let Some(p) = q.dequeue() {
            measured += p.wire_len();
        }
        prop_assert_eq!(measured, 0usize.max(measured)); // drain succeeded
        prop_assert_eq!(q.bytes(), 0);
    }

    /// Longest-prefix match agrees with a naive reference implementation.
    #[test]
    fn lpm_matches_reference(
        routes in proptest::collection::vec((cidr_strategy(), 0u32..4), 1..24),
        probes in proptest::collection::vec(addr_strategy(), 1..32),
    ) {
        let mut table = RoutingTable::new();
        // Insert with distinct metrics per duplicate dest to avoid replace.
        for (i, (dest, metric)) in routes.iter().enumerate() {
            table.add(Route {
                dest: *dest,
                via: None,
                dev: IfaceId(i as u32),
                metric: *metric,
                prefsrc: None,
            });
        }
        let inserted = table.routes().to_vec();
        for probe in probes {
            let got = table.lookup(probe);
            // Reference: max prefix_len among containing routes, then min
            // metric, then earliest insertion.
            let best = inserted
                .iter()
                .filter(|r| r.dest.contains(probe))
                .max_by(|a, b| {
                    a.dest
                        .prefix_len()
                        .cmp(&b.dest.prefix_len())
                        .then_with(|| b.metric.cmp(&a.metric))
                });
            match (got, best) {
                (None, None) => {}
                (Some(g), Some(b)) => {
                    prop_assert_eq!(g.dest.prefix_len(), b.dest.prefix_len());
                    prop_assert_eq!(g.metric, b.metric);
                }
                (g, b) => prop_assert!(false, "lookup {:?} vs reference {:?}", g.is_some(), b.is_some()),
            }
        }
    }

    /// Policy routing always returns the lowest-priority matching rule
    /// whose table resolves, regardless of insertion order.
    #[test]
    fn policy_rules_scan_by_priority(
        priorities in proptest::collection::vec(1u32..1000, 1..12),
        mark in 1u32..5,
    ) {
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_dev(IfaceId(0)));
        for (i, prio) in priorities.iter().enumerate() {
            let t = TableId(300 + i as u32);
            rib.table_mut(t).add(Route::default_dev(IfaceId(100 + i as u32)));
            rib.add_rule(PolicyRule {
                priority: *prio,
                selector: RuleSelector::fwmark(Mark(mark)),
                table: t,
            });
        }
        let key = FlowKey {
            src: Ipv4Address::new(1, 1, 1, 1),
            dst: Ipv4Address::new(2, 2, 2, 2),
            mark: Mark(mark),
        };
        let decision = rib.resolve(&key).unwrap();
        let min_prio = *priorities.iter().min().unwrap();
        prop_assert_eq!(decision.rule_priority, min_prio);
        // Unmarked traffic always falls through to main.
        let unmarked = FlowKey { mark: Mark(0), ..key };
        prop_assert_eq!(rib.resolve(&unmarked).unwrap().table, TableId::MAIN);
    }

    /// Pipe delivery times are non-decreasing (jitter never reorders) and
    /// every pushed packet is either scheduled or reported dropped.
    #[test]
    fn pipe_is_fifo_and_total(
        sizes in proptest::collection::vec(1usize..1200, 1..100),
        gaps_us in proptest::collection::vec(0u64..20_000, 1..100),
        seed in any::<u64>(),
    ) {
        let mut cfg = LinkConfig::wired(2_000_000, Duration::from_millis(10));
        cfg.queue_packets = 16;
        cfg.jitter = JitterModel::Uniform { max: Duration::from_millis(5) };
        let mut pipe = Pipe::new(cfg);
        let mut rng = SimRng::seed_from_u64(seed);
        let mut now = Instant::ZERO;
        let mut last_delivery = Instant::ZERO;
        let mut scheduled = 0u64;
        let mut dropped = 0u64;
        let n = sizes.len().min(gaps_us.len());
        for i in 0..n {
            now += Duration::from_micros(gaps_us[i]);
            match pipe.push(now, packet(i as u64, vec![0; sizes[i]]), &mut rng) {
                PushOutcome::Scheduled(v) => {
                    for (at, _) in v {
                        prop_assert!(at >= last_delivery, "reordered delivery");
                        prop_assert!(at >= now, "delivery in the past");
                        last_delivery = at;
                        scheduled += 1;
                    }
                }
                PushOutcome::Dropped { .. } => dropped += 1,
            }
        }
        prop_assert_eq!(scheduled + dropped, n as u64);
        let stats = pipe.stats();
        prop_assert_eq!(stats.pushed, n as u64);
        prop_assert_eq!(stats.delivered + stats.dropped_queue + stats.dropped_loss, n as u64);
    }
}
