//! The round-trip guarantee, property-tested.
//!
//! For every valid document `d`:
//! `serialize(parse(d)) == serialize(parse(serialize(parse(d))))`,
//! and parsing the canonical form recovers the identical typed pack.
//! Seeded [`random_pack`] generation drives hundreds of structurally
//! diverse packs through the pipeline; the shipped `packs/` catalog is
//! held to the stricter bar of already *being* canonical.

use std::path::Path;

use umtslab_pack::{random_pack, serialize, Pack};

/// Seeds are fixed, so a failure names the exact generated pack.
const PROPERTY_SEEDS: u64 = 300;

#[test]
fn random_packs_round_trip_byte_identically() {
    for seed in 0..PROPERTY_SEEDS {
        let pack = random_pack(seed);
        let once = serialize(&pack);
        let reparsed = Pack::parse(&once)
            .unwrap_or_else(|e| panic!("seed {seed}: canonical form fails to parse: {e}\n{once}"));
        assert_eq!(reparsed, pack, "seed {seed}: reparse differs from the generated pack");
        let twice = serialize(&reparsed);
        assert_eq!(once, twice, "seed {seed}: serialize is not idempotent");
    }
}

#[test]
fn formatting_noise_does_not_change_the_canonical_form() {
    let pack = random_pack(17);
    let canonical = serialize(&pack);
    // Inject comments, blank lines and horizontal whitespace: cosmetic
    // noise the parser must erase.
    let mut noisy = String::from("# leading comment\n\n");
    for line in canonical.lines() {
        match line.split_once(" = ") {
            Some((k, v)) => {
                noisy.push_str(&format!("  {k}\t=   {v} # trailing\n"));
            }
            None => {
                noisy.push_str(line);
                noisy.push('\n');
            }
        }
    }
    let from_noisy = Pack::parse(&noisy).expect("noisy spelling still parses");
    assert_eq!(from_noisy, pack);
    assert_eq!(serialize(&from_noisy), canonical);
}

#[test]
fn shipped_packs_are_canonical_and_round_trip() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../packs");
    let mut checked = 0;
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("packs/ catalog exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "toml"))
        .collect();
    files.sort();
    for path in files {
        let text = std::fs::read_to_string(&path).expect("readable pack");
        let pack = Pack::parse(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let canonical = serialize(&pack);
        assert_eq!(
            text,
            canonical,
            "{}: shipped pack is not in canonical form (re-run `runner pack --record`)",
            path.display()
        );
        let reparsed = Pack::parse(&canonical).expect("canonical form parses");
        assert_eq!(reparsed, pack);
        assert_eq!(serialize(&reparsed), canonical);
        assert!(!pack.goldens.is_empty(), "{}: shipped pack has no goldens", path.display());
        checked += 1;
    }
    assert_eq!(checked, 9, "the catalog ships nine packs");
}

#[test]
fn seed_scheme_matches_the_campaign_convention() {
    // Goldens key on concrete seeds, so the base + r*7919 scheme is a
    // compatibility contract with the runner's historical campaigns.
    let pack = random_pack(3);
    let seeds = pack.seeds.expand();
    assert_eq!(seeds.len(), pack.seeds.reps as usize);
    for (r, s) in seeds.iter().enumerate() {
        assert_eq!(*s, pack.seeds.base.wrapping_add(r as u64 * 7919));
    }
}
