//! Must-fail fixtures: malformed packs and the spans their errors carry.
//!
//! Each case asserts both the message *and* the 1-based (line, col)
//! span, so error reporting regressions (not just acceptance
//! regressions) fail the suite.

use umtslab_pack::Pack;

/// A valid pack with line-numbering that the cases below perturb.
fn valid() -> String {
    "[pack]\n\
     name = \"fixture\"\n\
     description = \"must-fail fixture base\"\n\
     version = 1\n\
     [topology]\n\
     access_rate_bps = 100000000\n\
     access_delay_s = 0.006\n\
     access_jitter_s = 0.0004\n\
     [umts]\n\
     operator = \"commercial_italy\"\n\
     device = \"option_globetrotter\"\n\
     [[slice]]\n\
     name = \"unina_umts\"\n\
     node = \"napoli\"\n\
     umts_access = true\n\
     [[slice]]\n\
     name = \"unina_probe\"\n\
     node = \"inria\"\n\
     umts_access = false\n\
     [[flow]]\n\
     label = \"voip\"\n\
     kind = \"voip_g711\"\n\
     path = \"ethernet\"\n\
     duration_s = 2.0\n\
     [seeds]\n\
     base = 1\n\
     reps = 1\n"
        .to_string()
}

fn expect_error(text: &str, line: usize, col: usize, needle: &str) {
    let err = Pack::parse(text).expect_err("malformed pack must not parse");
    assert!(
        err.message.contains(needle),
        "expected message containing `{needle}`, got `{}`",
        err.message
    );
    assert_eq!(
        (err.span.line, err.span.col),
        (line, col),
        "wrong span for `{needle}`: got {}, message `{}`",
        err.span,
        err.message
    );
}

#[test]
fn the_base_fixture_is_valid() {
    Pack::parse(&valid()).expect("base fixture parses");
}

#[test]
fn bad_key_is_rejected_with_its_span() {
    // An extra unknown key after `reps = 1` lands on line 28.
    let text = valid().replace("reps = 1\n", "reps = 1\nrepz = 1\n");
    expect_error(&text, 28, 1, "unknown key `repz` in [seeds]");
}

#[test]
fn duplicate_section_is_rejected_with_both_spans() {
    let text = valid() + "[topology]\naccess_rate_bps = 1\n";
    let err = Pack::parse(&text).expect_err("duplicate section");
    assert!(
        err.message.contains("duplicate section `[topology]` (first defined at 5:1)"),
        "{}",
        err.message
    );
    assert_eq!((err.span.line, err.span.col), (28, 1));
}

#[test]
fn duplicate_key_is_rejected_with_both_spans() {
    let text = valid().replace("base = 1\n", "base = 1\nbase = 2\n");
    let err = Pack::parse(&text).expect_err("duplicate key");
    assert!(
        err.message.contains("duplicate key `base` in [seeds] (first set at 26:1)"),
        "{}",
        err.message
    );
    assert_eq!((err.span.line, err.span.col), (27, 1));
}

#[test]
fn type_mismatch_is_rejected_with_its_span() {
    // `version = 1` (line 4) becomes a string.
    let text = valid().replace("version = 1", "version = \"one\"");
    expect_error(&text, 4, 1, "`version` must be a integer, got string");
}

#[test]
fn unquoted_string_is_rejected_at_the_value() {
    let text = valid().replace("node = \"napoli\"", "node = napoli");
    expect_error(&text, 14, 8, "unquoted value `napoli`");
}

#[test]
fn unterminated_string_points_at_the_opening_quote() {
    let text = valid().replace("label = \"voip\"", "label = \"voip");
    expect_error(&text, 21, 9, "unterminated string literal");
}

#[test]
fn unknown_section_is_rejected() {
    let text = valid() + "[extras]\nx = 1\n";
    expect_error(&text, 28, 1, "unknown section [extras]");
}

#[test]
fn array_section_spelled_plain_is_rejected() {
    let text = valid().replace("[[flow]]", "[flow]");
    expect_error(&text, 20, 1, "section [flow] is an array-of-tables: write [[flow]]");
}

#[test]
fn unknown_preset_values_are_rejected() {
    let text = valid().replace("\"commercial_italy\"", "\"vodafone_de\"");
    expect_error(&text, 10, 1, "unknown operator preset `vodafone_de`");
    let text = valid().replace("\"option_globetrotter\"", "\"nokia_n95\"");
    expect_error(&text, 11, 1, "unknown device preset `nokia_n95`");
}

#[test]
fn golden_validation_carries_spans() {
    let base = valid();
    // Unknown metric (the [[golden]] block starts at line 28).
    let text = base.clone()
        + "[[golden]]\nflow = \"voip\"\nseed = 1\nmetric = \"p99_owd\"\nvalue = 1.0\ntolerance = 1.0\n";
    expect_error(&text, 31, 1, "unknown metric `p99_owd`");
    // Seed outside the campaign scheme.
    let text = base
        + "[[golden]]\nflow = \"voip\"\nseed = 99\nmetric = \"sent\"\nvalue = 1.0\ntolerance = 1.0\n";
    expect_error(&text, 30, 1, "golden seed 99 is not produced by [seeds]");
}

#[test]
fn out_of_range_probability_is_rejected() {
    let text = valid().replace(
        "[seeds]",
        "[topology.fault]\npreset = \"custom\"\nloss = \"bernoulli\"\np = 1.5\n[seeds]",
    );
    expect_error(&text, 28, 1, "`p` must be in [0, 1], got 1.5");
}

#[test]
fn credentials_must_come_in_pairs() {
    let text = valid().replace(
        "device = \"option_globetrotter\"",
        "device = \"option_globetrotter\"\nusername = \"web\"",
    );
    let err = Pack::parse(&text).expect_err("username without password");
    assert!(
        err.message.contains("username and password must be given together"),
        "{}",
        err.message
    );
}
