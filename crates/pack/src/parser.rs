//! The structural layer: a TOML-subset document of `[section]` /
//! `[[array]]` tables holding `key = value` entries.
//!
//! The subset is exactly what experiment packs need — bare keys, dotted
//! section paths, basic strings, integers, floats, booleans and
//! single-line arrays of scalars — and nothing more. Duplicate sections
//! and duplicate keys are hard errors with spans, which is what makes the
//! canonical serializer's output the *only* spelling of a given pack.

use crate::lexer::{
    is_bare_key_char, scan_bare_key, scan_number, scan_string, Cursor, Number, ParseError, Span,
};

/// A scalar or array value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A basic string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
    /// A single-line array of scalars.
    Array(Vec<Value>),
}

impl Value {
    /// The type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Bool(_) => "boolean",
            Value::Array(_) => "array",
        }
    }
}

/// One `key = value` line.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// The bare key.
    pub key: String,
    /// The parsed value.
    pub value: Value,
    /// Where the key starts.
    pub span: Span,
}

/// One `[section]` or `[[array-section]]` table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// The dotted path, split on `.` (e.g. `["topology", "fault"]`).
    pub path: Vec<String>,
    /// True for `[[...]]` array-of-tables headers.
    pub is_array: bool,
    /// Where the header starts.
    pub span: Span,
    /// The entries, in file order.
    pub entries: Vec<Entry>,
}

impl Table {
    /// The dotted path as one string (for error messages).
    pub fn name(&self) -> String {
        self.path.join(".")
    }

    /// Finds an entry by key.
    pub fn get(&self, key: &str) -> Option<&Entry> {
        self.entries.iter().find(|e| e.key == key)
    }
}

/// A whole parsed pack document: tables in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// The tables, in file order.
    pub tables: Vec<Table>,
}

impl Document {
    /// The first table with the given dotted name, if any.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name() == name)
    }

    /// Every table with the given dotted name, in file order.
    pub fn tables_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables.iter().filter(move |t| t.name() == name)
    }
}

/// Parses a pack document. Top-level keys (outside any section) are
/// rejected; so are duplicate sections and duplicate keys.
pub fn parse_document(text: &str) -> Result<Document, ParseError> {
    let mut cur = Cursor::new(text);
    let mut tables: Vec<Table> = Vec::new();
    loop {
        cur.skip_inline_ws();
        cur.skip_comment();
        if cur.at_eof() {
            break;
        }
        if cur.eat('\n') {
            continue;
        }
        if cur.peek() == Some('\r') {
            cur.bump();
            if !cur.eat('\n') {
                return Err(cur.error("bare carriage return"));
            }
            continue;
        }
        if cur.peek() == Some('[') {
            let table = parse_header(&mut cur)?;
            if !table.is_array {
                if let Some(prev) = tables.iter().find(|t| t.path == table.path) {
                    return Err(ParseError::new(
                        table.span,
                        format!(
                            "duplicate section `[{}]` (first defined at {})",
                            table.name(),
                            prev.span
                        ),
                    ));
                }
            } else if let Some(prev) = tables.iter().find(|t| t.path == table.path && !t.is_array) {
                return Err(ParseError::new(
                    table.span,
                    format!("`[[{}]]` conflicts with plain section at {}", table.name(), prev.span),
                ));
            }
            tables.push(table);
        } else {
            let entry = parse_entry(&mut cur)?;
            let Some(table) = tables.last_mut() else {
                return Err(ParseError::new(
                    entry.span,
                    format!("key `{}` appears outside any [section]", entry.key),
                ));
            };
            if let Some(prev) = table.entries.iter().find(|e| e.key == entry.key) {
                return Err(ParseError::new(
                    entry.span,
                    format!(
                        "duplicate key `{}` in [{}] (first set at {})",
                        entry.key,
                        table.name(),
                        prev.span
                    ),
                ));
            }
            table.entries.push(entry);
        }
        // Only trailing whitespace and a comment may follow a construct.
        cur.skip_inline_ws();
        cur.skip_comment();
        if !cur.at_eof() && !cur.eat('\n') {
            if cur.peek() == Some('\r') {
                cur.bump();
                if cur.eat('\n') {
                    continue;
                }
            }
            return Err(cur.error("expected end of line"));
        }
    }
    Ok(Document { tables })
}

/// Parses a `[a.b]` or `[[a.b]]` header (cursor sits on the first `[`).
fn parse_header(cur: &mut Cursor<'_>) -> Result<Table, ParseError> {
    let span = cur.span();
    cur.eat('[');
    let is_array = cur.eat('[');
    let mut path = Vec::new();
    loop {
        cur.skip_inline_ws();
        path.push(scan_bare_key(cur)?);
        cur.skip_inline_ws();
        if !cur.eat('.') {
            break;
        }
    }
    if !cur.eat(']') {
        return Err(cur.error("expected `]` to close the section header"));
    }
    if is_array && !cur.eat(']') {
        return Err(cur.error("expected `]]` to close the array-section header"));
    }
    Ok(Table { path, is_array, span, entries: Vec::new() })
}

/// Parses one `key = value` line (cursor sits on the key).
fn parse_entry(cur: &mut Cursor<'_>) -> Result<Entry, ParseError> {
    let span = cur.span();
    let key = scan_bare_key(cur)?;
    cur.skip_inline_ws();
    if !cur.eat('=') {
        return Err(cur.error(format!("expected `=` after key `{key}`")));
    }
    cur.skip_inline_ws();
    let value = parse_value(cur)?;
    Ok(Entry { key, value, span })
}

/// Parses a scalar or a single-line array.
fn parse_value(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    match cur.peek() {
        Some('[') => {
            cur.bump();
            let mut items = Vec::new();
            loop {
                cur.skip_inline_ws();
                if cur.eat(']') {
                    break;
                }
                if !items.is_empty() {
                    if !cur.eat(',') {
                        return Err(cur.error("expected `,` or `]` in array"));
                    }
                    cur.skip_inline_ws();
                }
                items.push(parse_scalar(cur)?);
            }
            Ok(Value::Array(items))
        }
        _ => parse_scalar(cur),
    }
}

/// Parses a string, number or boolean.
fn parse_scalar(cur: &mut Cursor<'_>) -> Result<Value, ParseError> {
    match cur.peek() {
        Some('"') => Ok(Value::Str(scan_string(cur)?)),
        Some(c) if c.is_ascii_digit() || c == '-' || c == '+' || c == '.' => {
            Ok(match scan_number(cur)? {
                Number::Int(v) => Value::Int(v),
                Number::Float(v) => Value::Float(v),
            })
        }
        Some(c) if is_bare_key_char(c) => {
            let span = cur.span();
            let word = scan_bare_key(cur)?;
            match word.as_str() {
                "true" => Ok(Value::Bool(true)),
                "false" => Ok(Value::Bool(false)),
                _ => Err(ParseError::new(
                    span,
                    format!("unquoted value `{word}` (strings need double quotes)"),
                )),
            }
        }
        _ => Err(cur.error("expected a value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_arrays_and_scalars() {
        let doc = parse_document(
            "# header comment\n\
             [pack]\n\
             name = \"demo\"   # trailing comment\n\
             version = 1\n\
             ratio = 0.5\n\
             flag = true\n\
             \n\
             [topology.fault]\n\
             preset = \"none\"\n\
             \n\
             [[flow]]\n\
             label = \"a\"\n\
             [[flow]]\n\
             label = \"b\"\n\
             mix = [\"x\", \"y\"]\n",
        )
        .unwrap();
        assert_eq!(doc.tables.len(), 4);
        let pack = doc.table("pack").unwrap();
        assert_eq!(pack.get("name").unwrap().value, Value::Str("demo".into()));
        assert_eq!(pack.get("version").unwrap().value, Value::Int(1));
        assert_eq!(pack.get("ratio").unwrap().value, Value::Float(0.5));
        assert_eq!(pack.get("flag").unwrap().value, Value::Bool(true));
        assert!(doc.table("topology.fault").is_some());
        let flows: Vec<_> = doc.tables_named("flow").collect();
        assert_eq!(flows.len(), 2);
        assert_eq!(
            flows[1].get("mix").unwrap().value,
            Value::Array(vec![Value::Str("x".into()), Value::Str("y".into())])
        );
    }

    #[test]
    fn duplicate_section_is_an_error_with_span() {
        let err = parse_document("[pack]\nname = \"x\"\n[pack]\n").unwrap_err();
        assert_eq!(err.span.line, 3);
        assert!(err.message.contains("duplicate section `[pack]`"), "{}", err.message);
    }

    #[test]
    fn duplicate_key_is_an_error_with_span() {
        let err = parse_document("[pack]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert_eq!(err.span.line, 3);
        assert!(err.message.contains("duplicate key `name`"), "{}", err.message);
    }

    #[test]
    fn key_outside_section_is_an_error() {
        let err = parse_document("name = \"x\"\n").unwrap_err();
        assert!(err.message.contains("outside any [section]"), "{}", err.message);
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse_document("[pack]\nname = \"x\" oops\n").unwrap_err();
        assert_eq!(err.span.line, 2);
        assert!(err.message.contains("end of line"), "{}", err.message);
    }
}
