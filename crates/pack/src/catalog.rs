//! The pack catalog: loading every pack under a directory and rendering
//! the listing as a table or deterministic JSON.
//!
//! Files are read in sorted filename order, so both renderings are
//! byte-stable for a given catalog regardless of filesystem enumeration
//! order.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::schema::Pack;

/// One catalog row: a pack file plus its decoded headline facts.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// The pack file, relative to the catalog directory.
    pub file: String,
    /// The decoded pack.
    pub pack: Pack,
}

impl CatalogEntry {
    /// The flow labels, comma-joined for display.
    pub fn flow_list(&self) -> String {
        self.pack.flows.iter().map(|f| f.label.as_str()).collect::<Vec<_>>().join(",")
    }
}

/// Loads every `*.toml` pack under `dir`, sorted by filename. A file
/// that fails to parse fails the whole catalog — a broken shipped pack
/// is a bug, not a row to skip.
pub fn load_catalog(dir: &Path) -> Result<Vec<CatalogEntry>, String> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read catalog directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    let mut entries = Vec::with_capacity(files.len());
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let pack = Pack::parse(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let file = path
            .file_name()
            .map_or_else(|| path.display().to_string(), |n| n.to_string_lossy().into_owned());
        entries.push(CatalogEntry { file, pack });
    }
    Ok(entries)
}

/// Renders the catalog as a human-readable table.
pub fn render_table(entries: &[CatalogEntry]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<26} {:<20} {:>5} {:>7} {:>8}  description",
        "file", "name", "flows", "seeds", "goldens"
    );
    for e in entries {
        let _ = writeln!(
            out,
            "{:<26} {:<20} {:>5} {:>7} {:>8}  {}",
            e.file,
            e.pack.meta.name,
            e.pack.flows.len(),
            e.pack.seeds.reps,
            e.pack.goldens.len(),
            e.pack.meta.description
        );
    }
    let _ = writeln!(out, "{} pack(s)", entries.len());
    out
}

/// Escapes the handful of characters JSON strings cannot carry verbatim.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders the catalog as a deterministic JSON document (hand-rolled,
/// like the runner's metrics export — same catalog, same bytes).
pub fn render_json(entries: &[CatalogEntry]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"packs\": [");
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let flows: Vec<String> =
            e.pack.flows.iter().map(|f| format!("\"{}\"", escape_json(&f.label))).collect();
        let _ = write!(
            out,
            "\n    {{\n      \"file\": \"{}\",\n      \"name\": \"{}\",\n      \
             \"description\": \"{}\",\n      \"flows\": [{}],\n      \
             \"seed_base\": {},\n      \"seed_reps\": {},\n      \"goldens\": {}\n    }}",
            escape_json(&e.file),
            escape_json(&e.pack.meta.name),
            escape_json(&e.pack.meta.description),
            flows.join(", "),
            e.pack.seeds.base,
            e.pack.seeds.reps,
            e.pack.goldens.len()
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Pack;

    fn entry(name: &str) -> CatalogEntry {
        let text = crate::schema::tests::minimal().replace("\"mini\"", &format!("\"{name}\""));
        CatalogEntry { file: format!("{name}.toml"), pack: Pack::parse(&text).unwrap() }
    }

    #[test]
    fn table_and_json_render_every_entry() {
        let entries = vec![entry("alpha"), entry("beta")];
        let table = render_table(&entries);
        assert!(table.contains("alpha"));
        assert!(table.contains("2 pack(s)"));
        let json = render_json(&entries);
        assert!(json.contains("\"name\": \"beta\""));
        assert!(json.contains("\"flows\": [\"voip\"]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
