//! Golden-result regression: expected metrics stored in the pack,
//! diffed against a fresh execution with per-metric tolerances.
//!
//! Every golden names one run (`flow` label + `seed`), one [`Metric`]
//! and the expected value. A metric the run did not produce (e.g. RTT on
//! a flow that measured none) fails the diff outright — goldens are
//! assertions, not hints.

use std::fmt::Write;

/// A metric a golden can pin. Keys are the strings packs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Metric {
    /// Packets sent by the generator.
    Sent,
    /// Packets received (after dedup).
    Received,
    /// Packets lost.
    Lost,
    /// Loss fraction in `[0, 1]`.
    LossRate,
    /// Mean received bitrate, bits per second.
    MeanBitrateBps,
    /// Mean one-way delay, seconds.
    MeanOwdS,
    /// Maximum one-way delay, seconds.
    MaxOwdS,
    /// Mean inter-arrival jitter, seconds.
    MeanJitterS,
    /// Mean round-trip time, seconds.
    MeanRttS,
    /// Maximum round-trip time, seconds.
    MaxRttS,
    /// Time from `umts start` to connected, seconds (UMTS path only).
    ConnectTimeS,
    /// Scheduler events processed (a simulation-cost metric).
    Events,
    /// Fraction of the supervised horizon the session was up.
    UptimeFraction,
    /// Session drops under a fault campaign.
    SessionDrops,
    /// Redials the supervisor performed.
    Redials,
}

impl Metric {
    /// Every metric, in canonical (sort) order.
    pub const ALL: [Metric; 15] = [
        Metric::Sent,
        Metric::Received,
        Metric::Lost,
        Metric::LossRate,
        Metric::MeanBitrateBps,
        Metric::MeanOwdS,
        Metric::MaxOwdS,
        Metric::MeanJitterS,
        Metric::MeanRttS,
        Metric::MaxRttS,
        Metric::ConnectTimeS,
        Metric::Events,
        Metric::UptimeFraction,
        Metric::SessionDrops,
        Metric::Redials,
    ];

    /// The stable registry key used in pack documents.
    pub fn key(self) -> &'static str {
        match self {
            Metric::Sent => "sent",
            Metric::Received => "received",
            Metric::Lost => "lost",
            Metric::LossRate => "loss_rate",
            Metric::MeanBitrateBps => "mean_bitrate_bps",
            Metric::MeanOwdS => "mean_owd_s",
            Metric::MaxOwdS => "max_owd_s",
            Metric::MeanJitterS => "mean_jitter_s",
            Metric::MeanRttS => "mean_rtt_s",
            Metric::MaxRttS => "max_rtt_s",
            Metric::ConnectTimeS => "connect_time_s",
            Metric::Events => "events",
            Metric::UptimeFraction => "uptime_fraction",
            Metric::SessionDrops => "session_drops",
            Metric::Redials => "redials",
        }
    }

    /// Inverse of [`Metric::key`].
    pub fn from_key(key: &str) -> Option<Metric> {
        Metric::ALL.into_iter().find(|m| m.key() == key)
    }

    /// The tolerance `--record` assigns a freshly measured value: wide
    /// enough to survive harmless refactors, tight enough that behaviour
    /// changes trip it.
    pub fn default_tolerance(self, value: f64) -> f64 {
        match self {
            // Counters: 2 packets or 2%, whichever is larger.
            Metric::Sent | Metric::Received | Metric::Lost => (value.abs() * 0.02).max(2.0),
            // Rates and fractions: a few points.
            Metric::LossRate | Metric::UptimeFraction => 0.03,
            // Bitrate: 5% or 2 kbps.
            Metric::MeanBitrateBps => (value.abs() * 0.05).max(2_000.0),
            // Delays: 15% or 10 ms.
            Metric::MeanOwdS
            | Metric::MaxOwdS
            | Metric::MeanJitterS
            | Metric::MeanRttS
            | Metric::MaxRttS => (value.abs() * 0.15).max(0.010),
            // Connect time swings with retries: 30% or 2 s.
            Metric::ConnectTimeS => (value.abs() * 0.30).max(2.0),
            // Event counts move with scheduler refactors: 10%.
            Metric::Events => (value.abs() * 0.10).max(100.0),
            // Discrete supervision counters: exact-ish.
            Metric::SessionDrops | Metric::Redials => 0.5,
        }
    }
}

impl core::fmt::Display for Metric {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.key())
    }
}

/// One stored expectation.
#[derive(Debug, Clone, PartialEq)]
pub struct Golden {
    /// The flow label the run belongs to.
    pub flow: String,
    /// The run's seed.
    pub seed: u64,
    /// Which metric is pinned.
    pub metric: Metric,
    /// The expected value.
    pub value: f64,
    /// Absolute tolerance: `|actual - value| <= tolerance` passes.
    pub tolerance: f64,
}

/// One golden compared against a fresh run.
#[derive(Debug, Clone)]
pub struct DiffRow {
    /// The golden under test.
    pub golden: Golden,
    /// What the fresh run measured (`None`: run missing or metric not
    /// produced).
    pub actual: Option<f64>,
    /// Whether the golden held.
    pub pass: bool,
}

/// The outcome of diffing a pack's goldens against an execution.
#[derive(Debug, Clone)]
pub struct GoldenDiff {
    /// One row per golden checked, in golden order.
    pub rows: Vec<DiffRow>,
    /// Goldens skipped because their seed was not executed (quick mode).
    pub skipped: usize,
}

impl GoldenDiff {
    /// True when every checked golden held (and at least the bookkeeping
    /// is coherent — an empty diff passes).
    pub fn pass(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Failed rows.
    pub fn failures(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| !r.pass)
    }
}

/// Diffs goldens against measured values.
///
/// `lookup` maps `(flow, seed, metric)` to a measured value; `executed`
/// says whether a given `(flow, seed)` run was executed at all (quick
/// mode runs a subset). Goldens for unexecuted runs are skipped, not
/// failed.
pub fn diff_goldens(
    goldens: &[Golden],
    executed: impl Fn(&str, u64) -> bool,
    lookup: impl Fn(&str, u64, Metric) -> Option<f64>,
) -> GoldenDiff {
    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for g in goldens {
        if !executed(&g.flow, g.seed) {
            skipped += 1;
            continue;
        }
        let actual = lookup(&g.flow, g.seed, g.metric);
        let pass = actual.is_some_and(|a| (a - g.value).abs() <= g.tolerance);
        rows.push(DiffRow { golden: g.clone(), actual, pass });
    }
    GoldenDiff { rows, skipped }
}

/// Renders a diff as a human-readable table.
pub fn render_diff_table(diff: &GoldenDiff) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<20} {:>6} {:<18} {:>14} {:>14} {:>12}  verdict",
        "flow", "seed", "metric", "expected", "actual", "tolerance"
    );
    for r in &diff.rows {
        let g = &r.golden;
        let actual = r.actual.map_or_else(|| "-".to_string(), |a| format!("{a:.6}"));
        let verdict = if r.pass { "ok" } else { "DRIFT" };
        let _ = writeln!(
            out,
            "{:<20} {:>6} {:<18} {:>14.6} {:>14} {:>12.6}  {verdict}",
            g.flow, g.seed, g.metric, g.value, actual, g.tolerance
        );
    }
    let _ = writeln!(
        out,
        "goldens: {} checked, {} failed, {} skipped -> {}",
        diff.rows.len(),
        diff.failures().count(),
        diff.skipped,
        if diff.pass() { "PASS" } else { "FAIL" }
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(metric: Metric, value: f64, tolerance: f64) -> Golden {
        Golden { flow: "f".into(), seed: 1, metric, value, tolerance }
    }

    #[test]
    fn diff_passes_within_tolerance_and_fails_outside() {
        let goldens =
            vec![g(Metric::LossRate, 0.10, 0.03), g(Metric::MeanBitrateBps, 72_000.0, 1_000.0)];
        let diff = diff_goldens(
            &goldens,
            |_, _| true,
            |_, _, m| match m {
                Metric::LossRate => Some(0.12),
                Metric::MeanBitrateBps => Some(70_000.0),
                _ => None,
            },
        );
        assert!(diff.rows[0].pass);
        assert!(!diff.rows[1].pass);
        assert!(!diff.pass());
        let table = render_diff_table(&diff);
        assert!(table.contains("DRIFT"));
        assert!(table.contains("FAIL"));
    }

    #[test]
    fn missing_metric_fails_and_unexecuted_seed_skips() {
        let goldens = vec![g(Metric::MeanRttS, 0.2, 0.1), {
            let mut other = g(Metric::Sent, 100.0, 2.0);
            other.seed = 9;
            other
        }];
        let diff = diff_goldens(&goldens, |_, seed| seed == 1, |_, _, _| None);
        assert_eq!(diff.rows.len(), 1);
        assert!(!diff.rows[0].pass, "missing metric must fail");
        assert_eq!(diff.skipped, 1);
    }

    #[test]
    fn metric_keys_round_trip() {
        for m in Metric::ALL {
            assert_eq!(Metric::from_key(m.key()), Some(m));
            assert!(m.default_tolerance(1.0) > 0.0);
        }
        assert_eq!(Metric::from_key("nope"), None);
    }
}
