//! Compiling a typed [`Pack`] onto the existing experiment machinery:
//! every `[[flow]]` × every campaign seed becomes one
//! [`ExperimentConfig`], plus an optional [`CampaignConfig`] when the
//! pack declares a `[fault_plan]`.

use umtslab::{ExperimentConfig, ExtraSlice, NodeRole, PathKind, SlicePlan};
use umtslab_ditg::FlowSpec;
use umtslab_net::fault::{FaultConfig, LossModel};
use umtslab_sim::time::Instant;
use umtslab_supervisor::faults::CampaignConfig;
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::schema::{FaultSpec, FlowDef, FlowKind, LossSpec, Pack};

/// One concrete run: a flow at a seed, fully configured.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    /// The pack-level flow label (goldens key on it).
    pub flow: String,
    /// The run's seed.
    pub seed: u64,
    /// The ready-to-run experiment configuration.
    pub cfg: ExperimentConfig,
    /// A session-fault campaign, when the pack declares one and the flow
    /// rides the UMTS path (supervised execution).
    pub campaign: Option<CampaignConfig>,
}

/// Builds the [`FlowSpec`] for one pack flow (label overridden to the
/// pack's flow label so goldens and reports key consistently).
fn flow_spec(flow: &FlowDef) -> FlowSpec {
    let mut spec = match &flow.kind {
        FlowKind::VoipG711 => FlowSpec::voip_g711(),
        FlowKind::Cbr1Mbps => FlowSpec::cbr_1mbps(),
        FlowKind::VoipCodec { codec } => FlowSpec::voip_codec(*codec, flow.duration),
        FlowKind::Cbr { rate_bps, payload_bytes } => {
            FlowSpec::cbr(*rate_bps, *payload_bytes as usize, flow.duration)
        }
        FlowKind::Poisson { mean_pps, payload_bytes } => {
            FlowSpec::poisson(*mean_pps, *payload_bytes as usize, flow.duration)
        }
    };
    spec.duration = flow.duration;
    spec.label = flow.label.clone();
    spec
}

/// Lowers the pack's fault spec onto the link fault injector.
fn fault_config(spec: &FaultSpec) -> FaultConfig {
    match spec {
        FaultSpec::None => FaultConfig::none(),
        FaultSpec::BurstyUmts => FaultConfig::bursty_umts(),
        FaultSpec::Custom(c) => FaultConfig {
            loss: match c.loss {
                LossSpec::None => LossModel::None,
                LossSpec::Bernoulli { p } => LossModel::Bernoulli { p },
                LossSpec::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
                    LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad }
                }
            },
            corrupt_prob: c.corrupt_prob,
            duplicate_prob: c.duplicate_prob,
            reorder_prob: c.reorder_prob,
            reorder_delay: c.reorder_delay,
        },
    }
}

/// Derives the [`SlicePlan`] from the pack's `[[slice]]` list: the first
/// Napoli slice owns the sender, the first INRIA slice the receiver, and
/// everything else rides along for ACL scenarios.
fn slice_plan(pack: &Pack) -> SlicePlan {
    let sender = pack
        .slices
        .iter()
        .find(|s| s.node == NodeRole::Napoli)
        .expect("schema guarantees a napoli slice");
    let probe = pack
        .slices
        .iter()
        .find(|s| s.node == NodeRole::Inria)
        .expect("schema guarantees an inria slice");
    let extra = pack
        .slices
        .iter()
        .filter(|s| s.name != sender.name && s.name != probe.name)
        .map(|s| ExtraSlice { name: s.name.clone(), node: s.node, umts_access: s.umts_access })
        .collect();
    SlicePlan {
        sender: sender.name.clone(),
        sender_umts_access: sender.umts_access,
        probe: probe.name.clone(),
        extra,
    }
}

/// Compiles the full run matrix: flows × seeds, in declaration order
/// (flow-major, seed-minor).
pub fn compile(pack: &Pack) -> Vec<CompiledRun> {
    let seeds = pack.seeds.expand();
    let slices = slice_plan(pack);
    let access_fault = fault_config(&pack.topology.fault);
    let mut runs = Vec::with_capacity(pack.flows.len() * seeds.len());
    for flow in &pack.flows {
        for &seed in &seeds {
            let mut cfg = ExperimentConfig::paper(flow_spec(flow), flow.path, seed);
            let operator_key = flow.operator.as_deref().unwrap_or(&pack.umts.operator);
            cfg.operator =
                OperatorProfile::by_preset(operator_key).expect("schema validated the preset");
            cfg.device =
                DeviceProfile::by_preset(&pack.umts.device).expect("schema validated the preset");
            cfg.credentials = match (&pack.umts.username, &pack.umts.password) {
                (Some(user), Some(pass)) => Some(Credentials::new(user, pass)),
                _ => None,
            };
            cfg.access.rate_bps = pack.topology.access_rate_bps;
            cfg.access.delay = pack.topology.access_delay;
            cfg.access.jitter = pack.topology.access_jitter;
            cfg.access_fault = access_fault.clone();
            cfg.slices = slices.clone();
            let campaign = match (&pack.fault_plan, flow.path) {
                (Some(fp), PathKind::UmtsToEthernet) => Some(CampaignConfig {
                    start: Instant::ZERO + fp.start,
                    horizon: Instant::ZERO + fp.horizon,
                    mean_gap: fp.mean_gap,
                    mix: fp.mix.clone(),
                }),
                _ => None,
            };
            runs.push(CompiledRun { flow: flow.label.clone(), seed, cfg, campaign });
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Pack;
    use umtslab_sim::time::Duration;

    #[test]
    fn minimal_pack_compiles_to_one_run() {
        let pack = Pack::parse(&crate::schema::tests::minimal()).unwrap();
        let runs = compile(&pack);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.flow, "voip");
        assert_eq!(run.seed, 1);
        assert_eq!(run.cfg.spec.label, "voip");
        assert_eq!(run.cfg.spec.duration, Duration::from_secs(2));
        assert_eq!(run.cfg.path, PathKind::EthernetToEthernet);
        assert_eq!(run.cfg.slices.sender, "unina_umts");
        assert_eq!(run.cfg.slices.probe, "unina_probe");
        assert!(run.campaign.is_none());
    }

    #[test]
    fn fault_plan_applies_only_to_umts_flows() {
        let text = crate::schema::tests::minimal()
            + "[[flow]]\nlabel = \"voip_3g\"\nkind = \"voip_g711\"\npath = \"umts\"\n\
               duration_s = 2.0\n\
               [fault_plan]\nstart_s = 5.0\nhorizon_s = 60.0\nmean_gap_s = 10.0\n\
               mix = [\"ppp_terminate\", \"modem_hang\"]\n";
        let pack = Pack::parse(&text).unwrap();
        let runs = compile(&pack);
        assert_eq!(runs.len(), 2);
        assert!(runs[0].campaign.is_none(), "ethernet flow is unsupervised");
        let campaign = runs[1].campaign.as_ref().expect("umts flow is supervised");
        assert_eq!(campaign.mean_gap, Duration::from_secs(10));
        assert_eq!(campaign.mix.len(), 2);
    }

    #[test]
    fn extra_slices_ride_along() {
        let text = crate::schema::tests::minimal()
            + "[[slice]]\nname = \"rival\"\nnode = \"napoli\"\numts_access = false\n";
        let pack = Pack::parse(&text).unwrap();
        let runs = compile(&pack);
        let slices = &runs[0].cfg.slices;
        assert_eq!(slices.extra.len(), 1);
        assert_eq!(slices.extra[0].name, "rival");
        assert!(!slices.extra[0].umts_access);
    }
}
