//! Compiling a typed [`Pack`] onto the existing experiment machinery:
//! every `[[flow]]` × every campaign seed becomes one
//! [`ExperimentConfig`], plus an optional [`CampaignConfig`] when the
//! pack declares a `[fault_plan]`.

use umtslab::umtslab_traffic::{AdaptiveConfig, TcpConfig, Trace};
use umtslab::{ExperimentConfig, ExtraSlice, FlowModel, NodeRole, PathKind, SlicePlan};
use umtslab_ditg::FlowSpec;
use umtslab_net::fault::{FaultConfig, LossModel};
use umtslab_sim::time::Instant;
use umtslab_supervisor::faults::CampaignConfig;
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::schema::{FaultSpec, FlowDef, FlowKind, LossSpec, Pack};

/// One concrete run: a flow at a seed, fully configured.
#[derive(Debug, Clone)]
pub struct CompiledRun {
    /// The pack-level flow label (goldens key on it).
    pub flow: String,
    /// The run's seed.
    pub seed: u64,
    /// The ready-to-run experiment configuration.
    pub cfg: ExperimentConfig,
    /// A session-fault campaign, when the pack declares one and the flow
    /// rides the UMTS path (supervised execution).
    pub campaign: Option<CampaignConfig>,
}

/// Builds the [`FlowSpec`] for one pack flow (label overridden to the
/// pack's flow label so goldens and reports key consistently).
fn flow_spec(flow: &FlowDef) -> FlowSpec {
    let mut spec = match &flow.kind {
        FlowKind::VoipG711 => FlowSpec::voip_g711(),
        FlowKind::Cbr1Mbps => FlowSpec::cbr_1mbps(),
        FlowKind::VoipCodec { codec } => FlowSpec::voip_codec(*codec, flow.duration),
        FlowKind::Cbr { rate_bps, payload_bytes } => {
            FlowSpec::cbr(*rate_bps, *payload_bytes as usize, flow.duration)
        }
        FlowKind::Poisson { mean_pps, payload_bytes } => {
            FlowSpec::poisson(*mean_pps, *payload_bytes as usize, flow.duration)
        }
        // Closed-loop kinds: the spec only carries label/duration/path;
        // the sender itself comes from `flow_model`.
        FlowKind::TcpBulk { .. } | FlowKind::AdaptiveVideo { .. } => FlowSpec::cbr_1mbps(),
        FlowKind::TraceReplay { rate_bps, payload_bytes } => {
            FlowSpec::cbr(*rate_bps, *payload_bytes as usize, flow.duration)
        }
    };
    spec.duration = flow.duration;
    spec.label = flow.label.clone();
    spec
}

/// Builds the closed-loop sender model for one pack flow.
fn flow_model(flow: &FlowDef) -> FlowModel {
    match &flow.kind {
        FlowKind::TcpBulk { mss_bytes } => FlowModel::Tcp(TcpConfig {
            mss: *mss_bytes as usize,
            duration: flow.duration,
            ..TcpConfig::default()
        }),
        FlowKind::AdaptiveVideo { frame_bytes } => FlowModel::Adaptive(AdaptiveConfig {
            frame_bytes: *frame_bytes as usize,
            duration: flow.duration,
            ..AdaptiveConfig::default()
        }),
        _ => FlowModel::OpenLoop,
    }
}

/// Lowers the pack's fault spec onto the link fault injector.
fn fault_config(spec: &FaultSpec) -> FaultConfig {
    match spec {
        FaultSpec::None => FaultConfig::none(),
        FaultSpec::BurstyUmts => FaultConfig::bursty_umts(),
        FaultSpec::Custom(c) => FaultConfig {
            loss: match c.loss {
                LossSpec::None => LossModel::None,
                LossSpec::Bernoulli { p } => LossModel::Bernoulli { p },
                LossSpec::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
                    LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad }
                }
            },
            corrupt_prob: c.corrupt_prob,
            duplicate_prob: c.duplicate_prob,
            reorder_prob: c.reorder_prob,
            reorder_delay: c.reorder_delay,
        },
    }
}

/// Derives the [`SlicePlan`] from the pack's `[[slice]]` list: the first
/// Napoli slice owns the sender, the first INRIA slice the receiver, and
/// everything else rides along for ACL scenarios.
fn slice_plan(pack: &Pack) -> SlicePlan {
    let sender = pack
        .slices
        .iter()
        .find(|s| s.node == NodeRole::Napoli)
        .expect("schema guarantees a napoli slice");
    let probe = pack
        .slices
        .iter()
        .find(|s| s.node == NodeRole::Inria)
        .expect("schema guarantees an inria slice");
    let extra = pack
        .slices
        .iter()
        .filter(|s| s.name != sender.name && s.name != probe.name)
        .map(|s| ExtraSlice { name: s.name.clone(), node: s.node, umts_access: s.umts_access })
        .collect();
    SlicePlan {
        sender: sender.name.clone(),
        sender_umts_access: sender.umts_access,
        probe: probe.name.clone(),
        extra,
    }
}

/// Compiles the full run matrix: flows × seeds, in declaration order
/// (flow-major, seed-minor).
///
/// Packs that declare a `[trace]` section must be compiled through
/// [`compile_with_trace`] with the loaded trace — this entry point is
/// for trace-less packs and panics otherwise, because silently dropping
/// the schedule would change every golden.
pub fn compile(pack: &Pack) -> Vec<CompiledRun> {
    assert!(
        pack.trace.is_none(),
        "pack `{}` declares [trace]; load it and use compile_with_trace",
        pack.meta.name
    );
    compile_with_trace(pack, None)
}

/// [`compile`] with the pack's `[trace]` resolved to a loaded
/// [`Trace`], replayed on both access links of every run.
pub fn compile_with_trace(pack: &Pack, trace: Option<&Trace>) -> Vec<CompiledRun> {
    let seeds = pack.seeds.expand();
    let slices = slice_plan(pack);
    let access_fault = fault_config(&pack.topology.fault);
    let mut runs = Vec::with_capacity(pack.flows.len() * seeds.len());
    for flow in &pack.flows {
        for &seed in &seeds {
            let mut cfg = ExperimentConfig::paper(flow_spec(flow), flow.path, seed);
            let operator_key = flow.operator.as_deref().unwrap_or(&pack.umts.operator);
            cfg.operator =
                OperatorProfile::by_preset(operator_key).expect("schema validated the preset");
            cfg.device =
                DeviceProfile::by_preset(&pack.umts.device).expect("schema validated the preset");
            cfg.credentials = match (&pack.umts.username, &pack.umts.password) {
                (Some(user), Some(pass)) => Some(Credentials::new(user, pass)),
                _ => None,
            };
            cfg.access.rate_bps = pack.topology.access_rate_bps;
            cfg.access.delay = pack.topology.access_delay;
            cfg.access.jitter = pack.topology.access_jitter;
            cfg.access_fault = access_fault.clone();
            cfg.slices = slices.clone();
            cfg.flow_model = flow_model(flow);
            cfg.access_trace = trace.cloned();
            let campaign = match (&pack.fault_plan, flow.path) {
                (Some(fp), PathKind::UmtsToEthernet) => Some(CampaignConfig {
                    start: Instant::ZERO + fp.start,
                    horizon: Instant::ZERO + fp.horizon,
                    mean_gap: fp.mean_gap,
                    mix: fp.mix.clone(),
                }),
                _ => None,
            };
            runs.push(CompiledRun { flow: flow.label.clone(), seed, cfg, campaign });
        }
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Pack;
    use umtslab_sim::time::Duration;

    #[test]
    fn minimal_pack_compiles_to_one_run() {
        let pack = Pack::parse(&crate::schema::tests::minimal()).unwrap();
        let runs = compile(&pack);
        assert_eq!(runs.len(), 1);
        let run = &runs[0];
        assert_eq!(run.flow, "voip");
        assert_eq!(run.seed, 1);
        assert_eq!(run.cfg.spec.label, "voip");
        assert_eq!(run.cfg.spec.duration, Duration::from_secs(2));
        assert_eq!(run.cfg.path, PathKind::EthernetToEthernet);
        assert_eq!(run.cfg.slices.sender, "unina_umts");
        assert_eq!(run.cfg.slices.probe, "unina_probe");
        assert!(run.campaign.is_none());
    }

    #[test]
    fn fault_plan_applies_only_to_umts_flows() {
        let text = crate::schema::tests::minimal()
            + "[[flow]]\nlabel = \"voip_3g\"\nkind = \"voip_g711\"\npath = \"umts\"\n\
               duration_s = 2.0\n\
               [fault_plan]\nstart_s = 5.0\nhorizon_s = 60.0\nmean_gap_s = 10.0\n\
               mix = [\"ppp_terminate\", \"modem_hang\"]\n";
        let pack = Pack::parse(&text).unwrap();
        let runs = compile(&pack);
        assert_eq!(runs.len(), 2);
        assert!(runs[0].campaign.is_none(), "ethernet flow is unsupervised");
        let campaign = runs[1].campaign.as_ref().expect("umts flow is supervised");
        assert_eq!(campaign.mean_gap, Duration::from_secs(10));
        assert_eq!(campaign.mix.len(), 2);
    }

    #[test]
    fn closed_loop_kinds_set_the_flow_model_and_trace() {
        let text = crate::schema::tests::minimal()
            + "[trace]\nfile = \"traces/drive.csv\"\n\
               [[flow]]\nlabel = \"bulk\"\nkind = \"tcp_bulk\"\nmss_bytes = 512\n\
               path = \"umts\"\nduration_s = 3.0\n\
               [[flow]]\nlabel = \"video\"\nkind = \"adaptive_video\"\npath = \"umts\"\n\
               duration_s = 4.0\n\
               [[flow]]\nlabel = \"replay\"\nkind = \"trace_replay\"\nrate_bps = 96000\n\
               payload_bytes = 400\npath = \"ethernet\"\nduration_s = 5.0\n";
        let pack = Pack::parse(&text).unwrap();
        let trace = umtslab::umtslab_traffic::Trace::parse(
            "# umtslab-trace v1 name=drive\n0.0,1000000,0\n2.0,250000,10000\n",
        )
        .unwrap();
        let runs = compile_with_trace(&pack, Some(&trace));
        assert_eq!(runs.len(), 4);
        match &runs[1].cfg.flow_model {
            FlowModel::Tcp(tcp) => {
                assert_eq!(tcp.mss, 512);
                assert_eq!(tcp.duration, Duration::from_secs(3));
            }
            other => panic!("expected Tcp model, got {other:?}"),
        }
        match &runs[2].cfg.flow_model {
            FlowModel::Adaptive(a) => assert_eq!(a.duration, Duration::from_secs(4)),
            other => panic!("expected Adaptive model, got {other:?}"),
        }
        assert!(matches!(runs[3].cfg.flow_model, FlowModel::OpenLoop));
        for run in &runs {
            assert_eq!(run.cfg.access_trace.as_ref(), Some(&trace));
        }
    }

    #[test]
    #[should_panic(expected = "compile_with_trace")]
    fn compile_refuses_a_traced_pack_without_the_trace() {
        let text = crate::schema::tests::minimal() + "[trace]\nfile = \"traces/drive.csv\"\n";
        let pack = Pack::parse(&text).unwrap();
        let _ = compile(&pack);
    }

    #[test]
    fn extra_slices_ride_along() {
        let text = crate::schema::tests::minimal()
            + "[[slice]]\nname = \"rival\"\nnode = \"napoli\"\numts_access = false\n";
        let pack = Pack::parse(&text).unwrap();
        let runs = compile(&pack);
        let slices = &runs[0].cfg.slices;
        assert_eq!(slices.extra.len(), 1);
        assert_eq!(slices.extra[0].name, "rival");
        assert!(!slices.extra[0].umts_access);
    }
}
