//! The typed pack model and its decoder.
//!
//! A [`Pack`] is everything one declarative experiment needs: topology
//! (the two-node testbed's access links plus an optional packet-fault
//! process), slices and their `umts` vsys ACL grants, flows, the UMTS
//! operator/device, an optional session-fault campaign, seeds, and the
//! golden metrics the run is expected to reproduce. Decoding validates
//! every cross-reference (operator presets, fault keys, golden flow
//! labels and seeds) with span-carrying errors.

use umtslab::paper::campaign_seeds;
use umtslab::{NodeRole, PathKind};
use umtslab_ditg::VoipCodec;
use umtslab_sim::time::Duration;
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::attachment::SessionFault;
use umtslab_umts::operator::OperatorProfile;

use crate::golden::{Golden, Metric};
use crate::lexer::{ParseError, Span};
use crate::parser::{parse_document, Document, Entry, Table, Value};

/// The `[pack]` header: identity of the experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct PackMeta {
    /// Short name (catalog key).
    pub name: String,
    /// One-line description.
    pub description: String,
    /// Schema version (currently always 1).
    pub version: u64,
}

/// The loss process of a custom packet-fault configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossSpec {
    /// No loss.
    None,
    /// Independent per-packet loss.
    Bernoulli {
        /// Loss probability.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) bursty loss.
    GilbertElliott {
        /// P(good → bad) per packet.
        p_gb: f64,
        /// P(bad → good) per packet.
        p_bg: f64,
        /// Loss probability in the good state.
        loss_good: f64,
        /// Loss probability in the bad state.
        loss_bad: f64,
    },
}

/// A custom `[topology.fault]` packet-fault process.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomFault {
    /// The loss process.
    pub loss: LossSpec,
    /// Corruption probability for surviving packets.
    pub corrupt_prob: f64,
    /// Duplication probability for surviving packets.
    pub duplicate_prob: f64,
    /// Reordering probability for surviving packets.
    pub reorder_prob: f64,
    /// Extra delay applied to reordered packets.
    pub reorder_delay: Duration,
}

/// The access-link packet-fault process of the pack.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// Clean links (section absent or `preset = "none"`).
    None,
    /// The fitted Gilbert–Elliott 3G fade preset.
    BurstyUmts,
    /// Explicit parameters.
    Custom(CustomFault),
}

/// The `[topology]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Access-link rate, bits per second.
    pub access_rate_bps: u64,
    /// One-way access-link delay.
    pub access_delay: Duration,
    /// Uniform access-link jitter bound.
    pub access_jitter: Duration,
    /// Packet-fault process on both access links.
    pub fault: FaultSpec,
}

/// The `[umts]` section: operator, device, credentials.
#[derive(Debug, Clone, PartialEq)]
pub struct UmtsSpec {
    /// Operator preset key (see `umtslab_umts::operator::OPERATOR_PRESETS`).
    pub operator: String,
    /// Device preset key (see `umtslab_umts::at::DEVICE_PRESETS`).
    pub device: String,
    /// PAP username (with `password`, or both absent).
    pub username: Option<String>,
    /// PAP password.
    pub password: Option<String>,
}

/// One `[[slice]]` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SliceSpec {
    /// Slice name.
    pub name: String,
    /// Hosting node.
    pub node: NodeRole,
    /// Whether the slice is admitted to the `umts` vsys ACL.
    pub umts_access: bool,
}

/// The workload of one `[[flow]]`.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowKind {
    /// The paper's 72 kbps G.711-like VoIP CBR.
    VoipG711,
    /// The paper's saturating 1 Mbps CBR.
    Cbr1Mbps,
    /// A VoIP call emulating a specific codec.
    VoipCodec {
        /// The codec.
        codec: VoipCodec,
    },
    /// A generic CBR flow.
    Cbr {
        /// Application bitrate, bits per second.
        rate_bps: u64,
        /// UDP payload per packet.
        payload_bytes: u32,
    },
    /// A Poisson (exponential-IDT) flow.
    Poisson {
        /// Mean packet rate.
        mean_pps: f64,
        /// UDP payload per packet.
        payload_bytes: u32,
    },
    /// A congestion-controlled TCP-like bulk transfer
    /// (`umtslab_traffic::TcpFlow`).
    TcpBulk {
        /// Maximum segment size.
        mss_bytes: u32,
    },
    /// An adaptive-rate sender stepping a bitrate ladder
    /// (`umtslab_traffic::AdaptiveSender`).
    AdaptiveVideo {
        /// Bytes per media frame.
        frame_bytes: u32,
    },
    /// A CBR probe over access links driven by the pack's `[trace]`
    /// capacity/loss schedule (requires a `[trace]` section).
    TraceReplay {
        /// Application bitrate, bits per second.
        rate_bps: u64,
        /// UDP payload per packet.
        payload_bytes: u32,
    },
}

impl FlowKind {
    /// The registry key of this kind.
    pub fn key(&self) -> &'static str {
        match self {
            FlowKind::VoipG711 => "voip_g711",
            FlowKind::Cbr1Mbps => "cbr_1mbps",
            FlowKind::VoipCodec { .. } => "voip_codec",
            FlowKind::Cbr { .. } => "cbr",
            FlowKind::Poisson { .. } => "poisson",
            FlowKind::TcpBulk { .. } => "tcp_bulk",
            FlowKind::AdaptiveVideo { .. } => "adaptive_video",
            FlowKind::TraceReplay { .. } => "trace_replay",
        }
    }
}

/// Codec registry keys in [`VoipCodec`] order.
pub const CODEC_KEYS: [(&str, VoipCodec); 3] =
    [("g711", VoipCodec::G711), ("g729", VoipCodec::G729), ("g7231", VoipCodec::G7231)];

/// The optional `[trace]` section: a recorded capacity/loss trace
/// replayed on both access links for every run of the pack.
///
/// Only the *reference* lives in the pack; the trace file itself is a
/// separate committed artifact (`umtslab_traffic::Trace` CSV/JSON),
/// loaded at execution time. The path is resolved relative to the
/// process working directory first, then relative to the pack file's
/// directory and its parent — so catalog packs in `packs/` can point at
/// `traces/` siblings at the repository root. Parsing a pack never
/// touches the filesystem: round-tripping works without the file
/// existing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRef {
    /// Relative path to the trace file.
    pub file: String,
}

/// One `[[flow]]`: a workload on a path.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowDef {
    /// Unique label (goldens reference it).
    pub label: String,
    /// The workload.
    pub kind: FlowKind,
    /// Which path carries it.
    pub path: PathKind,
    /// Flow duration.
    pub duration: Duration,
    /// Optional per-flow operator preset override.
    pub operator: Option<String>,
}

/// The optional `[fault_plan]` section: a seeded session-fault campaign
/// applied to every UMTS-path run.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlanSpec {
    /// No faults before this offset.
    pub start: Duration,
    /// No faults at or after this offset.
    pub horizon: Duration,
    /// Mean gap between faults (exponential).
    pub mean_gap: Duration,
    /// The fault mix, drawn uniformly.
    pub mix: Vec<SessionFault>,
}

/// The `[seeds]` section: the repetition scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Seeds {
    /// Base seed of the first repetition.
    pub base: u64,
    /// Number of repetitions (seed `base + r * 7919` for rep `r`).
    pub reps: u32,
}

impl Seeds {
    /// The concrete seed list (the runner's historical scheme).
    pub fn expand(&self) -> Vec<u64> {
        campaign_seeds(self.base, self.reps as usize)
    }
}

/// A fully decoded experiment pack.
#[derive(Debug, Clone, PartialEq)]
pub struct Pack {
    /// Identity.
    pub meta: PackMeta,
    /// Topology and packet faults.
    pub topology: Topology,
    /// The UMTS access configuration.
    pub umts: UmtsSpec,
    /// Optional access-link capacity/loss trace reference.
    pub trace: Option<TraceRef>,
    /// Slices, in declaration order.
    pub slices: Vec<SliceSpec>,
    /// Flows, in declaration order.
    pub flows: Vec<FlowDef>,
    /// Optional session-fault campaign.
    pub fault_plan: Option<FaultPlanSpec>,
    /// Seeds.
    pub seeds: Seeds,
    /// Goldens, sorted by (flow, seed, metric).
    pub goldens: Vec<Golden>,
}

impl Pack {
    /// Parses and decodes a pack document.
    pub fn parse(text: &str) -> Result<Pack, ParseError> {
        decode(&parse_document(text)?)
    }
}

/// Typed access to one table's entries with unknown-key detection.
struct Fields<'a> {
    table: &'a Table,
    taken: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(table: &'a Table) -> Fields<'a> {
        Fields { table, taken: vec![false; table.entries.len()] }
    }

    fn take(&mut self, key: &str) -> Option<&'a Entry> {
        let idx = self.table.entries.iter().position(|e| e.key == key)?;
        self.taken[idx] = true;
        Some(&self.table.entries[idx])
    }

    fn require(&mut self, key: &str) -> Result<&'a Entry, ParseError> {
        self.take(key).ok_or_else(|| {
            ParseError::new(
                self.table.span,
                format!("[{}] is missing required key `{key}`", self.table.name()),
            )
        })
    }

    fn str(&mut self, key: &str) -> Result<String, ParseError> {
        let e = self.require(key)?;
        expect_str(e)
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<String>, ParseError> {
        self.take(key).map(expect_str).transpose()
    }

    fn u64(&mut self, key: &str) -> Result<u64, ParseError> {
        let e = self.require(key)?;
        expect_u64(e)
    }

    fn f64(&mut self, key: &str) -> Result<f64, ParseError> {
        let e = self.require(key)?;
        expect_f64(e)
    }

    fn bool(&mut self, key: &str) -> Result<bool, ParseError> {
        let e = self.require(key)?;
        match e.value {
            Value::Bool(b) => Ok(b),
            ref other => Err(type_mismatch(e, "boolean", other)),
        }
    }

    fn prob(&mut self, key: &str) -> Result<f64, ParseError> {
        let e = self.require(key)?;
        let v = expect_f64(e)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(ParseError::new(e.span, format!("`{key}` must be in [0, 1], got {v}")));
        }
        Ok(v)
    }

    fn opt_prob(&mut self, key: &str) -> Result<Option<f64>, ParseError> {
        match self.take(key) {
            None => Ok(None),
            Some(e) => {
                let v = expect_f64(e)?;
                if !(0.0..=1.0).contains(&v) {
                    return Err(ParseError::new(
                        e.span,
                        format!("`{key}` must be in [0, 1], got {v}"),
                    ));
                }
                Ok(Some(v))
            }
        }
    }

    fn seconds(&mut self, key: &str) -> Result<Duration, ParseError> {
        let e = self.require(key)?;
        let v = expect_f64(e)?;
        if v < 0.0 {
            return Err(ParseError::new(e.span, format!("`{key}` must be non-negative")));
        }
        Ok(Duration::from_secs_f64(v))
    }

    fn str_array(&mut self, key: &str) -> Result<Vec<(String, Span)>, ParseError> {
        let e = self.require(key)?;
        let Value::Array(items) = &e.value else {
            return Err(type_mismatch(e, "array of strings", &e.value));
        };
        items
            .iter()
            .map(|v| match v {
                Value::Str(s) => Ok((s.clone(), e.span)),
                other => Err(ParseError::new(
                    e.span,
                    format!("`{key}` must contain strings, found {}", other.type_name()),
                )),
            })
            .collect()
    }

    /// Errors on the first key the schema did not consume.
    fn finish(self) -> Result<(), ParseError> {
        for (idx, taken) in self.taken.iter().enumerate() {
            if !taken {
                let e = &self.table.entries[idx];
                return Err(ParseError::new(
                    e.span,
                    format!("unknown key `{}` in [{}]", e.key, self.table.name()),
                ));
            }
        }
        Ok(())
    }
}

fn type_mismatch(e: &Entry, wanted: &str, got: &Value) -> ParseError {
    ParseError::new(e.span, format!("`{}` must be a {wanted}, got {}", e.key, got.type_name()))
}

fn expect_str(e: &Entry) -> Result<String, ParseError> {
    match &e.value {
        Value::Str(s) => Ok(s.clone()),
        other => Err(type_mismatch(e, "string", other)),
    }
}

fn expect_u64(e: &Entry) -> Result<u64, ParseError> {
    match e.value {
        Value::Int(v) if v >= 0 => Ok(v as u64),
        Value::Int(v) => {
            Err(ParseError::new(e.span, format!("`{}` must be non-negative, got {v}", e.key)))
        }
        ref other => Err(type_mismatch(e, "integer", other)),
    }
}

/// Reads a `payload_bytes` key bounded to what fits one UDP datagram.
fn payload_bytes(f: &mut Fields<'_>) -> Result<u32, ParseError> {
    let e = f.require("payload_bytes")?;
    let v = expect_u64(e)?;
    if !(1..=65_507).contains(&v) {
        return Err(ParseError::new(e.span, "payload_bytes must be in 1..=65507"));
    }
    Ok(v as u32)
}

fn expect_f64(e: &Entry) -> Result<f64, ParseError> {
    match e.value {
        Value::Float(v) => Ok(v),
        Value::Int(v) => Ok(v as f64),
        ref other => Err(type_mismatch(e, "number", other)),
    }
}

/// Decodes a raw document into a typed pack.
pub fn decode(doc: &Document) -> Result<Pack, ParseError> {
    let origin = Span { line: 1, col: 1 };
    // Reject unknown sections and array/plain mismatches up front.
    for t in &doc.tables {
        let name = t.name();
        let known_plain = matches!(
            name.as_str(),
            "pack" | "topology" | "topology.fault" | "umts" | "trace" | "fault_plan" | "seeds"
        );
        let known_array = matches!(name.as_str(), "slice" | "flow" | "golden");
        if t.is_array && !known_array {
            return Err(ParseError::new(
                t.span,
                if known_plain {
                    format!("section [{name}] cannot repeat: write it as a plain [{name}]")
                } else {
                    format!("unknown section [[{name}]]")
                },
            ));
        }
        if !t.is_array && known_array {
            return Err(ParseError::new(
                t.span,
                format!("section [{name}] is an array-of-tables: write [[{name}]]"),
            ));
        }
        if !known_plain && !known_array {
            return Err(ParseError::new(t.span, format!("unknown section [{name}]")));
        }
    }
    let require = |name: &str| {
        doc.table(name).ok_or_else(|| {
            ParseError::new(origin, format!("pack is missing the required [{name}] section"))
        })
    };

    // [pack]
    let mut f = Fields::new(require("pack")?);
    let meta = PackMeta {
        name: f.str("name")?,
        description: f.str("description")?,
        version: {
            let e = f.require("version")?;
            let v = expect_u64(e)?;
            if v != 1 {
                return Err(ParseError::new(e.span, format!("unsupported pack version {v}")));
            }
            v
        },
    };
    f.finish()?;

    // [topology]
    let mut f = Fields::new(require("topology")?);
    let mut topology = Topology {
        access_rate_bps: f.u64("access_rate_bps")?,
        access_delay: f.seconds("access_delay_s")?,
        access_jitter: f.seconds("access_jitter_s")?,
        fault: FaultSpec::None,
    };
    f.finish()?;
    if topology.access_rate_bps == 0 {
        return Err(ParseError::new(
            doc.table("topology").expect("required above").span,
            "access_rate_bps must be positive",
        ));
    }

    // [topology.fault] (optional)
    if let Some(t) = doc.table("topology.fault") {
        let mut f = Fields::new(t);
        let preset = f.str("preset")?;
        topology.fault = match preset.as_str() {
            "none" => FaultSpec::None,
            "bursty_umts" => FaultSpec::BurstyUmts,
            "custom" => {
                let loss_kind = f.str("loss")?;
                let loss = match loss_kind.as_str() {
                    "none" => LossSpec::None,
                    "bernoulli" => LossSpec::Bernoulli { p: f.prob("p")? },
                    "gilbert_elliott" => LossSpec::GilbertElliott {
                        p_gb: f.prob("p_gb")?,
                        p_bg: f.prob("p_bg")?,
                        loss_good: f.prob("loss_good")?,
                        loss_bad: f.prob("loss_bad")?,
                    },
                    other => {
                        return Err(ParseError::new(
                            t.get("loss").expect("read above").span,
                            format!(
                                "unknown loss model `{other}` \
                                 (none | bernoulli | gilbert_elliott)"
                            ),
                        ));
                    }
                };
                FaultSpec::Custom(CustomFault {
                    loss,
                    corrupt_prob: f.opt_prob("corrupt_prob")?.unwrap_or(0.0),
                    duplicate_prob: f.opt_prob("duplicate_prob")?.unwrap_or(0.0),
                    reorder_prob: f.opt_prob("reorder_prob")?.unwrap_or(0.0),
                    reorder_delay: match f.take("reorder_delay_s") {
                        None => Duration::ZERO,
                        Some(e) => Duration::from_secs_f64(expect_f64(e)?.max(0.0)),
                    },
                })
            }
            other => {
                return Err(ParseError::new(
                    t.get("preset").expect("read above").span,
                    format!("unknown fault preset `{other}` (none | bursty_umts | custom)"),
                ));
            }
        };
        f.finish()?;
    }

    // [umts]
    let umts_table = require("umts")?;
    let mut f = Fields::new(umts_table);
    let umts = UmtsSpec {
        operator: {
            let e = f.require("operator")?;
            let key = expect_str(e)?;
            if OperatorProfile::by_preset(&key).is_none() {
                return Err(ParseError::new(e.span, format!("unknown operator preset `{key}`")));
            }
            key
        },
        device: {
            let e = f.require("device")?;
            let key = expect_str(e)?;
            if DeviceProfile::by_preset(&key).is_none() {
                return Err(ParseError::new(e.span, format!("unknown device preset `{key}`")));
            }
            key
        },
        username: f.opt_str("username")?,
        password: f.opt_str("password")?,
    };
    f.finish()?;
    if umts.username.is_some() != umts.password.is_some() {
        return Err(ParseError::new(
            umts_table.span,
            "username and password must be given together",
        ));
    }

    // [trace] (optional)
    let trace = match doc.table("trace") {
        None => None,
        Some(t) => {
            let mut f = Fields::new(t);
            let file_entry = f.require("file")?;
            let file = expect_str(file_entry)?;
            if file.is_empty() {
                return Err(ParseError::new(file_entry.span, "trace file must not be empty"));
            }
            if file.starts_with('/') || file.split('/').any(|seg| seg == "..") {
                return Err(ParseError::new(
                    file_entry.span,
                    "trace file must be a relative path without `..` segments",
                ));
            }
            f.finish()?;
            Some(TraceRef { file })
        }
    };

    // [[slice]]
    let mut slices = Vec::new();
    for t in doc.tables_named("slice") {
        let mut f = Fields::new(t);
        let name_entry = f.require("name")?;
        let name = expect_str(name_entry)?;
        if slices.iter().any(|s: &SliceSpec| s.name == name) {
            return Err(ParseError::new(name_entry.span, format!("duplicate slice `{name}`")));
        }
        let node_entry = f.require("node")?;
        let node = match expect_str(node_entry)?.as_str() {
            "napoli" => NodeRole::Napoli,
            "inria" => NodeRole::Inria,
            other => {
                return Err(ParseError::new(
                    node_entry.span,
                    format!("unknown node `{other}` (napoli | inria)"),
                ));
            }
        };
        let umts_access = f.bool("umts_access")?;
        f.finish()?;
        slices.push(SliceSpec { name, node, umts_access });
    }
    if !slices.iter().any(|s| s.node == NodeRole::Napoli) {
        return Err(ParseError::new(origin, "pack needs a [[slice]] on node \"napoli\""));
    }
    if !slices.iter().any(|s| s.node == NodeRole::Inria) {
        return Err(ParseError::new(origin, "pack needs a [[slice]] on node \"inria\""));
    }

    // [[flow]]
    let mut flows: Vec<FlowDef> = Vec::new();
    for t in doc.tables_named("flow") {
        let mut f = Fields::new(t);
        let label_entry = f.require("label")?;
        let label = expect_str(label_entry)?;
        if flows.iter().any(|x| x.label == label) {
            return Err(ParseError::new(
                label_entry.span,
                format!("duplicate flow label `{label}`"),
            ));
        }
        let kind_entry = f.require("kind")?;
        let kind = match expect_str(kind_entry)?.as_str() {
            "voip_g711" => FlowKind::VoipG711,
            "cbr_1mbps" => FlowKind::Cbr1Mbps,
            "voip_codec" => {
                let e = f.require("codec")?;
                let key = expect_str(e)?;
                let codec =
                    CODEC_KEYS.iter().find(|(k, _)| *k == key).map(|(_, c)| *c).ok_or_else(
                        || {
                            ParseError::new(
                                e.span,
                                format!("unknown codec `{key}` (g711 | g729 | g7231)"),
                            )
                        },
                    )?;
                FlowKind::VoipCodec { codec }
            }
            "cbr" => {
                let rate_entry = f.require("rate_bps")?;
                let rate_bps = expect_u64(rate_entry)?;
                if rate_bps == 0 {
                    return Err(ParseError::new(rate_entry.span, "rate_bps must be positive"));
                }
                FlowKind::Cbr { rate_bps, payload_bytes: payload_bytes(&mut f)? }
            }
            "poisson" => {
                let pps_entry = f.require("mean_pps")?;
                let mean_pps = expect_f64(pps_entry)?;
                if !mean_pps.is_finite() || mean_pps <= 0.0 {
                    return Err(ParseError::new(pps_entry.span, "mean_pps must be positive"));
                }
                FlowKind::Poisson { mean_pps, payload_bytes: payload_bytes(&mut f)? }
            }
            "tcp_bulk" => FlowKind::TcpBulk {
                mss_bytes: match f.take("mss_bytes") {
                    None => 1_024,
                    Some(e) => {
                        let v = expect_u64(e)?;
                        if !(64..=9_000).contains(&v) {
                            return Err(ParseError::new(e.span, "mss_bytes must be in 64..=9000"));
                        }
                        v as u32
                    }
                },
            },
            "adaptive_video" => FlowKind::AdaptiveVideo {
                frame_bytes: match f.take("frame_bytes") {
                    None => 1_000,
                    Some(e) => {
                        let v = expect_u64(e)?;
                        if !(64..=65_507).contains(&v) {
                            return Err(ParseError::new(
                                e.span,
                                "frame_bytes must be in 64..=65507",
                            ));
                        }
                        v as u32
                    }
                },
            },
            "trace_replay" => {
                if trace.is_none() {
                    return Err(ParseError::new(
                        kind_entry.span,
                        "flow kind `trace_replay` requires a [trace] section",
                    ));
                }
                let rate_entry = f.require("rate_bps")?;
                let rate_bps = expect_u64(rate_entry)?;
                if rate_bps == 0 {
                    return Err(ParseError::new(rate_entry.span, "rate_bps must be positive"));
                }
                FlowKind::TraceReplay { rate_bps, payload_bytes: payload_bytes(&mut f)? }
            }
            other => {
                return Err(ParseError::new(
                    kind_entry.span,
                    format!(
                        "unknown flow kind `{other}` \
                         (voip_g711 | cbr_1mbps | voip_codec | cbr | poisson \
                          | tcp_bulk | adaptive_video | trace_replay)"
                    ),
                ));
            }
        };
        let path_entry = f.require("path")?;
        let path = match expect_str(path_entry)?.as_str() {
            "umts" => PathKind::UmtsToEthernet,
            "ethernet" => PathKind::EthernetToEthernet,
            other => {
                return Err(ParseError::new(
                    path_entry.span,
                    format!("unknown path `{other}` (umts | ethernet)"),
                ));
            }
        };
        let duration = f.seconds("duration_s")?;
        if duration.is_zero() {
            return Err(ParseError::new(t.span, "duration_s must be positive"));
        }
        let operator = match f.take("operator") {
            None => None,
            Some(e) => {
                let key = expect_str(e)?;
                if OperatorProfile::by_preset(&key).is_none() {
                    return Err(ParseError::new(
                        e.span,
                        format!("unknown operator preset `{key}`"),
                    ));
                }
                Some(key)
            }
        };
        f.finish()?;
        flows.push(FlowDef { label, kind, path, duration, operator });
    }
    if flows.is_empty() {
        return Err(ParseError::new(origin, "pack needs at least one [[flow]]"));
    }

    // [fault_plan] (optional)
    let fault_plan = match doc.table("fault_plan") {
        None => None,
        Some(t) => {
            let mut f = Fields::new(t);
            let spec = FaultPlanSpec {
                start: f.seconds("start_s")?,
                horizon: f.seconds("horizon_s")?,
                mean_gap: f.seconds("mean_gap_s")?,
                mix: {
                    let mut mix = Vec::new();
                    for (key, span) in f.str_array("mix")? {
                        let fault = SessionFault::from_key(&key).ok_or_else(|| {
                            ParseError::new(span, format!("unknown session fault `{key}`"))
                        })?;
                        mix.push(fault);
                    }
                    mix
                },
            };
            f.finish()?;
            if spec.mix.is_empty() {
                return Err(ParseError::new(t.span, "fault_plan mix must not be empty"));
            }
            if spec.horizon <= spec.start {
                return Err(ParseError::new(t.span, "fault_plan horizon_s must exceed start_s"));
            }
            if spec.mean_gap.is_zero() {
                return Err(ParseError::new(t.span, "fault_plan mean_gap_s must be positive"));
            }
            Some(spec)
        }
    };

    // [seeds]
    let seeds_table = require("seeds")?;
    let mut f = Fields::new(seeds_table);
    let seeds = Seeds {
        base: f.u64("base")?,
        reps: {
            let e = f.require("reps")?;
            let v = expect_u64(e)?;
            if v == 0 || v > 1_000 {
                return Err(ParseError::new(e.span, "reps must be in 1..=1000"));
            }
            v as u32
        },
    };
    f.finish()?;
    let seed_set = seeds.expand();

    // [[golden]]
    let mut goldens = Vec::new();
    for t in doc.tables_named("golden") {
        let mut f = Fields::new(t);
        let flow_entry = f.require("flow")?;
        let flow = expect_str(flow_entry)?;
        if !flows.iter().any(|x| x.label == flow) {
            return Err(ParseError::new(
                flow_entry.span,
                format!("golden references unknown flow `{flow}`"),
            ));
        }
        let seed_entry = f.require("seed")?;
        let seed = expect_u64(seed_entry)?;
        if !seed_set.contains(&seed) {
            return Err(ParseError::new(
                seed_entry.span,
                format!("golden seed {seed} is not produced by [seeds] (base/reps)"),
            ));
        }
        let metric_entry = f.require("metric")?;
        let metric_key = expect_str(metric_entry)?;
        let metric = Metric::from_key(&metric_key).ok_or_else(|| {
            ParseError::new(metric_entry.span, format!("unknown metric `{metric_key}`"))
        })?;
        let value = f.f64("value")?;
        let tol_entry = f.require("tolerance")?;
        let tolerance = expect_f64(tol_entry)?;
        if tolerance < 0.0 {
            return Err(ParseError::new(tol_entry.span, "tolerance must be non-negative"));
        }
        f.finish()?;
        if goldens.iter().any(|g: &Golden| g.flow == flow && g.seed == seed && g.metric == metric) {
            return Err(ParseError::new(
                t.span,
                format!("duplicate golden for {flow}@{seed}/{}", metric.key()),
            ));
        }
        goldens.push(Golden { flow, seed, metric, value, tolerance });
    }
    goldens.sort_by(|a, b| (&a.flow, a.seed, a.metric).cmp(&(&b.flow, b.seed, b.metric)));

    Ok(Pack { meta, topology, umts, trace, slices, flows, fault_plan, seeds, goldens })
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A minimal valid pack used across the unit tests.
    pub(crate) fn minimal() -> String {
        "[pack]\n\
         name = \"mini\"\n\
         description = \"smallest valid pack\"\n\
         version = 1\n\
         [topology]\n\
         access_rate_bps = 100000000\n\
         access_delay_s = 0.006\n\
         access_jitter_s = 0.0004\n\
         [umts]\n\
         operator = \"commercial_italy\"\n\
         device = \"option_globetrotter\"\n\
         username = \"web\"\n\
         password = \"web\"\n\
         [[slice]]\n\
         name = \"unina_umts\"\n\
         node = \"napoli\"\n\
         umts_access = true\n\
         [[slice]]\n\
         name = \"unina_probe\"\n\
         node = \"inria\"\n\
         umts_access = false\n\
         [[flow]]\n\
         label = \"voip\"\n\
         kind = \"voip_g711\"\n\
         path = \"ethernet\"\n\
         duration_s = 2.0\n\
         [seeds]\n\
         base = 1\n\
         reps = 1\n"
            .to_string()
    }

    #[test]
    fn minimal_pack_decodes() {
        let pack = Pack::parse(&minimal()).unwrap();
        assert_eq!(pack.meta.name, "mini");
        assert_eq!(pack.topology.access_rate_bps, 100_000_000);
        assert_eq!(pack.topology.fault, FaultSpec::None);
        assert_eq!(pack.slices.len(), 2);
        assert_eq!(pack.flows[0].kind, FlowKind::VoipG711);
        assert_eq!(pack.seeds.expand(), vec![1]);
        assert!(pack.goldens.is_empty());
    }

    #[test]
    fn unknown_key_errors_with_span() {
        let text = minimal().replace("[seeds]", "[seeds]\nbogus = 3");
        let err = Pack::parse(&text).unwrap_err();
        assert!(err.message.contains("unknown key `bogus` in [seeds]"), "{err}");
    }

    #[test]
    fn type_mismatch_errors_with_span() {
        let text = minimal().replace("base = 1", "base = \"one\"");
        let err = Pack::parse(&text).unwrap_err();
        assert!(err.message.contains("`base` must be a integer, got string"), "{err}");
    }

    #[test]
    fn golden_referencing_unknown_flow_is_rejected() {
        let text = minimal()
            + "[[golden]]\nflow = \"nope\"\nseed = 1\nmetric = \"sent\"\nvalue = 1.0\ntolerance = 1.0\n";
        let err = Pack::parse(&text).unwrap_err();
        assert!(err.message.contains("unknown flow `nope`"), "{err}");
    }

    #[test]
    fn golden_seed_must_come_from_seed_scheme() {
        let text = minimal()
            + "[[golden]]\nflow = \"voip\"\nseed = 2\nmetric = \"sent\"\nvalue = 1.0\ntolerance = 1.0\n";
        let err = Pack::parse(&text).unwrap_err();
        assert!(err.message.contains("not produced by [seeds]"), "{err}");
    }

    #[test]
    fn goldens_are_canonically_sorted() {
        let text = minimal()
            + "[[golden]]\nflow = \"voip\"\nseed = 1\nmetric = \"sent\"\nvalue = 100.0\ntolerance = 2.0\n\
               [[golden]]\nflow = \"voip\"\nseed = 1\nmetric = \"received\"\nvalue = 100.0\ntolerance = 2.0\n";
        let pack = Pack::parse(&text).unwrap();
        assert_eq!(pack.goldens[0].metric, Metric::Sent);
        assert_eq!(pack.goldens[1].metric, Metric::Received);
    }

    #[test]
    fn traffic_flow_kinds_decode_with_defaults() {
        let text = minimal()
            + "[[flow]]\nlabel = \"bulk\"\nkind = \"tcp_bulk\"\npath = \"umts\"\nduration_s = 5.0\n\
               [[flow]]\nlabel = \"video\"\nkind = \"adaptive_video\"\nframe_bytes = 1200\n\
               path = \"umts\"\nduration_s = 5.0\n";
        let pack = Pack::parse(&text).unwrap();
        assert_eq!(pack.flows[1].kind, FlowKind::TcpBulk { mss_bytes: 1_024 });
        assert_eq!(pack.flows[2].kind, FlowKind::AdaptiveVideo { frame_bytes: 1_200 });
    }

    #[test]
    fn trace_replay_requires_a_trace_section() {
        let flow = "[[flow]]\nlabel = \"replay\"\nkind = \"trace_replay\"\nrate_bps = 200000\n\
                    payload_bytes = 512\npath = \"ethernet\"\nduration_s = 5.0\n";
        let err = Pack::parse(&(minimal() + flow)).unwrap_err();
        assert!(err.message.contains("requires a [trace] section"), "{err}");
        let ok = minimal() + "[trace]\nfile = \"traces/drive.csv\"\n" + flow;
        let pack = Pack::parse(&ok).unwrap();
        assert_eq!(pack.trace.as_ref().unwrap().file, "traces/drive.csv");
        assert_eq!(
            pack.flows[1].kind,
            FlowKind::TraceReplay { rate_bps: 200_000, payload_bytes: 512 }
        );
    }

    #[test]
    fn trace_file_path_is_sanitized() {
        for bad in ["/etc/passwd", "../secrets.csv", "a/../b.csv"] {
            let text = minimal() + &format!("[trace]\nfile = \"{bad}\"\n");
            let err = Pack::parse(&text).unwrap_err();
            assert!(err.message.contains("relative path"), "{bad}: {err}");
        }
    }

    #[test]
    fn bursty_preset_and_custom_fault_decode() {
        let preset = minimal() + "[topology.fault]\npreset = \"bursty_umts\"\n";
        assert_eq!(Pack::parse(&preset).unwrap().topology.fault, FaultSpec::BurstyUmts);
        let custom = minimal()
            + "[topology.fault]\npreset = \"custom\"\nloss = \"gilbert_elliott\"\n\
               p_gb = 0.004\np_bg = 0.25\nloss_good = 0.001\nloss_bad = 0.45\n\
               reorder_prob = 0.01\nreorder_delay_s = 0.02\n";
        match Pack::parse(&custom).unwrap().topology.fault {
            FaultSpec::Custom(c) => {
                assert_eq!(
                    c.loss,
                    LossSpec::GilbertElliott {
                        p_gb: 0.004,
                        p_bg: 0.25,
                        loss_good: 0.001,
                        loss_bad: 0.45
                    }
                );
                assert_eq!(c.reorder_prob, 0.01);
                assert_eq!(c.reorder_delay, Duration::from_millis(20));
            }
            other => panic!("expected custom fault, got {other:?}"),
        }
    }
}
