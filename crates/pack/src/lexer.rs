//! The character-level layer of the pack reader: a position-tracking
//! cursor plus the scalar token scanners (bare keys, quoted strings,
//! numbers).
//!
//! Everything reports failures as a [`ParseError`] carrying a [`Span`]
//! (1-based line and column), so a malformed pack names the exact byte
//! that broke it — the must-fail fixture suite asserts on these spans.

use std::fmt;

/// A 1-based (line, column) source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: usize,
    /// Character column, starting at 1.
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A parse failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the problem was detected.
    pub span: Span,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl ParseError {
    /// Convenience constructor.
    pub fn new(span: Span, message: impl Into<String>) -> ParseError {
        ParseError { span, message: message.into() }
    }
}

/// A scanned numeric literal, before the schema decides what it must be.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// No decimal point or exponent.
    Int(i64),
    /// Carried a `.` or an exponent.
    Float(f64),
}

/// A character cursor over the whole document, tracking line/column.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    text: &'a str,
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `text`.
    pub fn new(text: &'a str) -> Cursor<'a> {
        Cursor { text, pos: 0, line: 1, col: 1 }
    }

    /// The current position.
    pub fn span(&self) -> Span {
        Span { line: self.line, col: self.col }
    }

    /// The next character without consuming it.
    pub fn peek(&self) -> Option<char> {
        self.text[self.pos..].chars().next()
    }

    /// Consumes and returns the next character.
    pub fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// True at end of input.
    pub fn at_eof(&self) -> bool {
        self.pos >= self.text.len()
    }

    /// Consumes `c` if it is next; reports whether it did.
    pub fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// Skips spaces and tabs (not newlines).
    pub fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t')) {
            self.bump();
        }
    }

    /// Skips a `#` comment to (not through) the end of the line.
    pub fn skip_comment(&mut self) {
        if self.peek() == Some('#') {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
        }
    }

    /// Builds an error at the current position.
    pub fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.span(), message)
    }
}

/// True for characters a bare key may contain.
pub fn is_bare_key_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Scans a bare key (`[A-Za-z0-9_-]+`).
pub fn scan_bare_key(cur: &mut Cursor<'_>) -> Result<String, ParseError> {
    let mut key = String::new();
    while let Some(c) = cur.peek() {
        if is_bare_key_char(c) {
            key.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    if key.is_empty() {
        return Err(cur.error("expected a bare key ([A-Za-z0-9_-]+)"));
    }
    Ok(key)
}

/// Scans a basic `"..."` string with the escape set the canonical
/// serializer emits: `\" \\ \n \r \t \uXXXX`.
pub fn scan_string(cur: &mut Cursor<'_>) -> Result<String, ParseError> {
    let start = cur.span();
    if !cur.eat('"') {
        return Err(cur.error("expected `\"`"));
    }
    let mut out = String::new();
    loop {
        let at = cur.span();
        match cur.bump() {
            None | Some('\n') => {
                return Err(ParseError::new(start, "unterminated string literal"));
            }
            Some('"') => return Ok(out),
            Some('\\') => match cur.bump() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let mut v: u32 = 0;
                    for _ in 0..4 {
                        let d = cur
                            .bump()
                            .and_then(|c| c.to_digit(16))
                            .ok_or_else(|| ParseError::new(at, "\\u needs 4 hex digits"))?;
                        v = v * 16 + d;
                    }
                    out.push(
                        char::from_u32(v)
                            .ok_or_else(|| ParseError::new(at, "\\u escapes an invalid char"))?,
                    );
                }
                other => {
                    return Err(ParseError::new(
                        at,
                        format!("unknown escape `\\{}`", other.map_or(String::new(), String::from)),
                    ));
                }
            },
            Some(c) => out.push(c),
        }
    }
}

/// Scans an integer or float literal (no underscores, no leading `+`
/// inside exponents beyond what `f64`/`i64` accept).
pub fn scan_number(cur: &mut Cursor<'_>) -> Result<Number, ParseError> {
    let start = cur.span();
    let mut text = String::new();
    let mut is_float = false;
    if matches!(cur.peek(), Some('-' | '+')) {
        text.push(cur.bump().expect("peeked"));
    }
    let mut any_digit = false;
    loop {
        match cur.peek() {
            Some(c) if c.is_ascii_digit() => {
                any_digit = true;
                text.push(c);
                cur.bump();
            }
            Some('.') => {
                is_float = true;
                text.push('.');
                cur.bump();
            }
            Some('e' | 'E') => {
                is_float = true;
                text.push('e');
                cur.bump();
                if matches!(cur.peek(), Some('-' | '+')) {
                    text.push(cur.bump().expect("peeked"));
                }
            }
            _ => break,
        }
    }
    if !any_digit {
        return Err(ParseError::new(start, "expected a number"));
    }
    if is_float {
        let v: f64 = text
            .parse()
            .map_err(|_| ParseError::new(start, format!("malformed float `{text}`")))?;
        if !v.is_finite() {
            return Err(ParseError::new(start, format!("float `{text}` is not finite")));
        }
        Ok(Number::Float(v))
    } else {
        let v: i64 = text
            .parse()
            .map_err(|_| ParseError::new(start, format!("integer `{text}` out of range")))?;
        Ok(Number::Int(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_tracks_lines_and_columns() {
        let mut cur = Cursor::new("ab\ncd");
        assert_eq!(cur.span(), Span { line: 1, col: 1 });
        cur.bump();
        cur.bump();
        cur.bump(); // newline
        assert_eq!(cur.span(), Span { line: 2, col: 1 });
        cur.bump();
        assert_eq!(cur.span(), Span { line: 2, col: 2 });
    }

    #[test]
    fn strings_round_trip_escapes() {
        let mut cur = Cursor::new("\"a\\\"b\\\\c\\n\\t\\u0041\"");
        assert_eq!(scan_string(&mut cur).unwrap(), "a\"b\\c\n\tA");
    }

    #[test]
    fn unterminated_string_points_at_opening_quote() {
        let mut cur = Cursor::new("\"abc");
        let err = scan_string(&mut cur).unwrap_err();
        assert_eq!(err.span, Span { line: 1, col: 1 });
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn numbers_split_int_and_float() {
        let mut cur = Cursor::new("42");
        assert_eq!(scan_number(&mut cur).unwrap(), Number::Int(42));
        let mut cur = Cursor::new("-1.5e3");
        assert_eq!(scan_number(&mut cur).unwrap(), Number::Float(-1500.0));
        let mut cur = Cursor::new("0.004");
        assert_eq!(scan_number(&mut cur).unwrap(), Number::Float(0.004));
    }
}
