//! Seeded random pack generation for the round-trip property tests.
//!
//! [`random_pack`] builds an arbitrary *valid* [`Pack`] from a
//! [`SimRng`], exercising every schema corner: every flow kind, every
//! fault spec, optional credentials and fault plans, awkward strings and
//! awkward floats. The property under test is that serializing any such
//! pack and re-parsing it reproduces the identical typed pack and the
//! identical bytes — so the generator's job is breadth, not realism.

use umtslab::{NodeRole, PathKind};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Duration;
use umtslab_umts::at::DEVICE_PRESETS;
use umtslab_umts::attachment::SessionFault;
use umtslab_umts::operator::OPERATOR_PRESETS;

use crate::golden::{Golden, Metric};
use crate::schema::{
    CustomFault, FaultPlanSpec, FaultSpec, FlowDef, FlowKind, LossSpec, Pack, PackMeta, Seeds,
    SliceSpec, Topology, TraceRef, UmtsSpec, CODEC_KEYS,
};

fn pick<'a, T>(rng: &mut SimRng, items: &'a [T]) -> &'a T {
    &items[rng.uniform_u64(0, items.len() as u64 - 1) as usize]
}

/// A random identifier-ish string, occasionally spiced with characters
/// that need escaping.
fn random_name(rng: &mut SimRng, prefix: &str, salt: u64) -> String {
    let mut name = format!("{prefix}-{salt}");
    if rng.chance(0.2) {
        name.push_str(" \"quoted\"");
    }
    if rng.chance(0.1) {
        name.push_str("\\tab\there");
    }
    if rng.chance(0.1) {
        name.push('\u{00e9}'); // non-ASCII survives verbatim
    }
    name
}

/// A random duration in `(0, max]` with microsecond structure (not just
/// round seconds).
fn random_duration(rng: &mut SimRng, max: Duration) -> Duration {
    Duration::from_micros(rng.uniform_u64(1, max.total_micros()))
}

/// An awkward float: sometimes tiny, sometimes integer-valued, sometimes
/// many significant digits.
fn random_float(rng: &mut SimRng) -> f64 {
    match rng.uniform_u64(0, 3) {
        0 => rng.uniform01(),
        1 => rng.uniform_u64(0, 1_000_000) as f64,
        2 => rng.uniform01() * 1e-7,
        _ => rng.uniform(-1e6, 1e6),
    }
}

fn random_fault(rng: &mut SimRng) -> FaultSpec {
    match rng.uniform_u64(0, 3) {
        0 | 1 => FaultSpec::None,
        2 => FaultSpec::BurstyUmts,
        _ => FaultSpec::Custom(CustomFault {
            loss: match rng.uniform_u64(0, 2) {
                0 => LossSpec::None,
                1 => LossSpec::Bernoulli { p: rng.uniform01() },
                _ => LossSpec::GilbertElliott {
                    p_gb: rng.uniform01() * 0.1,
                    p_bg: rng.uniform01(),
                    loss_good: rng.uniform01() * 0.01,
                    loss_bad: rng.uniform01(),
                },
            },
            corrupt_prob: if rng.chance(0.5) { rng.uniform01() * 0.05 } else { 0.0 },
            duplicate_prob: if rng.chance(0.3) { rng.uniform01() * 0.05 } else { 0.0 },
            reorder_prob: if rng.chance(0.3) { rng.uniform01() * 0.05 } else { 0.0 },
            reorder_delay: if rng.chance(0.5) {
                random_duration(rng, Duration::from_millis(500))
            } else {
                Duration::ZERO
            },
        }),
    }
}

fn random_flow_kind(rng: &mut SimRng) -> FlowKind {
    match rng.uniform_u64(0, 7) {
        0 => FlowKind::VoipG711,
        1 => FlowKind::Cbr1Mbps,
        2 => FlowKind::VoipCodec { codec: pick(rng, &CODEC_KEYS).1 },
        3 => FlowKind::Cbr {
            rate_bps: rng.uniform_u64(8_000, 2_000_000),
            payload_bytes: rng.uniform_u64(16, 1_472) as u32,
        },
        4 => FlowKind::Poisson {
            mean_pps: rng.uniform(1.0, 500.0),
            payload_bytes: rng.uniform_u64(16, 1_472) as u32,
        },
        5 => FlowKind::TcpBulk { mss_bytes: rng.uniform_u64(64, 9_000) as u32 },
        6 => FlowKind::AdaptiveVideo { frame_bytes: rng.uniform_u64(64, 65_507) as u32 },
        _ => FlowKind::TraceReplay {
            rate_bps: rng.uniform_u64(8_000, 2_000_000),
            payload_bytes: rng.uniform_u64(16, 1_472) as u32,
        },
    }
}

/// Generates a random valid pack. Equal seeds produce equal packs.
pub fn random_pack(seed: u64) -> Pack {
    let rng = &mut SimRng::seed_from_u64(seed ^ 0x7061_636b_2d67_656e); // "pack-gen"

    let meta = PackMeta {
        name: random_name(rng, "gen", seed),
        description: random_name(rng, "random pack", seed),
        version: 1,
    };

    let topology = Topology {
        access_rate_bps: rng.uniform_u64(56_000, 1_000_000_000),
        access_delay: random_duration(rng, Duration::from_millis(100)),
        access_jitter: if rng.chance(0.7) {
            random_duration(rng, Duration::from_millis(5))
        } else {
            Duration::ZERO
        },
        fault: random_fault(rng),
    };

    let with_creds = rng.chance(0.7);
    let umts = UmtsSpec {
        operator: (*pick(rng, &OPERATOR_PRESETS)).to_string(),
        device: (*pick(rng, &DEVICE_PRESETS)).to_string(),
        username: with_creds.then(|| random_name(rng, "user", seed)),
        password: with_creds.then(|| random_name(rng, "pass", seed)),
    };

    let mut slices = vec![
        SliceSpec {
            name: random_name(rng, "sender", 0),
            node: NodeRole::Napoli,
            umts_access: true,
        },
        SliceSpec { name: random_name(rng, "probe", 1), node: NodeRole::Inria, umts_access: false },
    ];
    for i in 0..rng.uniform_u64(0, 2) {
        slices.push(SliceSpec {
            name: random_name(rng, "extra", 100 + i),
            node: *pick(rng, &[NodeRole::Napoli, NodeRole::Inria]),
            umts_access: rng.chance(0.3),
        });
    }

    let mut flows = Vec::new();
    for i in 0..rng.uniform_u64(1, 3) {
        flows.push(FlowDef {
            label: random_name(rng, "flow", i),
            kind: random_flow_kind(rng),
            path: *pick(rng, &[PathKind::UmtsToEthernet, PathKind::EthernetToEthernet]),
            duration: random_duration(rng, Duration::from_secs(120)),
            operator: rng.chance(0.2).then(|| (*pick(rng, &OPERATOR_PRESETS)).to_string()),
        });
    }

    // A trace_replay flow requires a [trace]; otherwise emit one
    // occasionally so the optional section still gets exercised.
    let needs_trace = flows.iter().any(|f| matches!(f.kind, FlowKind::TraceReplay { .. }));
    let trace = (needs_trace || rng.chance(0.2))
        .then(|| TraceRef { file: format!("traces/{}.csv", random_name(rng, "trace", seed)) });

    let fault_plan = rng.chance(0.4).then(|| {
        let start = random_duration(rng, Duration::from_secs(30));
        let mut mix = Vec::new();
        for _ in 0..rng.uniform_u64(1, 3) {
            mix.push(*pick(rng, &SessionFault::ALL));
        }
        FaultPlanSpec {
            start,
            horizon: start + random_duration(rng, Duration::from_secs(300)),
            mean_gap: random_duration(rng, Duration::from_secs(60)),
            mix,
        }
    });

    let seeds = Seeds { base: rng.uniform_u64(1, 1_000_000), reps: rng.uniform_u64(1, 5) as u32 };

    let seed_set = seeds.expand();
    let mut goldens: Vec<Golden> = Vec::new();
    for _ in 0..rng.uniform_u64(0, 6) {
        let flow = pick(rng, &flows).label.clone();
        let run_seed = *pick(rng, &seed_set);
        let metric = *pick(rng, &Metric::ALL);
        if goldens.iter().any(|g| g.flow == flow && g.seed == run_seed && g.metric == metric) {
            continue;
        }
        let value = random_float(rng);
        goldens.push(Golden {
            flow,
            seed: run_seed,
            metric,
            value,
            tolerance: random_float(rng).abs(),
        });
    }
    goldens.sort_by(|a, b| (&a.flow, a.seed, a.metric).cmp(&(&b.flow, b.seed, b.metric)));

    Pack { meta, topology, umts, trace, slices, flows, fault_plan, seeds, goldens }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(random_pack(7), random_pack(7));
        assert_ne!(random_pack(7), random_pack(8));
    }

    #[test]
    fn generated_packs_hit_every_fault_and_flow_variant() {
        let mut saw_bursty = false;
        let mut saw_custom = false;
        let mut saw_plan = false;
        let mut saw_trace = false;
        let mut kinds = std::collections::BTreeSet::new();
        for seed in 0..96 {
            let p = random_pack(seed);
            saw_bursty |= p.topology.fault == FaultSpec::BurstyUmts;
            saw_custom |= matches!(p.topology.fault, FaultSpec::Custom(_));
            saw_plan |= p.fault_plan.is_some();
            saw_trace |= p.trace.is_some();
            for f in &p.flows {
                kinds.insert(f.kind.key());
            }
        }
        assert!(saw_bursty && saw_custom && saw_plan && saw_trace);
        assert_eq!(kinds.len(), 8, "all eight flow kinds generated: {kinds:?}");
    }

    #[test]
    fn trace_replay_flows_always_come_with_a_trace_section() {
        for seed in 0..256 {
            let p = random_pack(seed);
            if p.flows.iter().any(|f| matches!(f.kind, FlowKind::TraceReplay { .. })) {
                assert!(p.trace.is_some(), "seed {seed} generated trace_replay without [trace]");
            }
        }
    }
}
