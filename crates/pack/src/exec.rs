//! Executing a compiled pack and mapping measurements onto golden
//! metrics.
//!
//! Execution is strictly sequential in (flow, seed) order: every run
//! owns its own seeded testbed, so the outcome is a pure function of
//! the pack — the property the golden diff relies on.

use std::path::{Path, PathBuf};

use umtslab::umtslab_traffic::Trace;
use umtslab::{run_experiment, run_supervised_experiment, ExperimentResult};
use umtslab_supervisor::metrics::AvailabilityMetrics;

use crate::compile::{compile, compile_with_trace, CompiledRun};
use crate::golden::{diff_goldens, Golden, GoldenDiff, Metric};
use crate::schema::Pack;

/// What one run measured.
#[derive(Debug, Clone)]
pub struct Measured {
    /// The flow measurement.
    pub result: ExperimentResult,
    /// Supervisor availability accounting (supervised runs only).
    pub availability: Option<AvailabilityMetrics>,
}

/// One run's outcome: measurements, or the failure that prevented them.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The pack flow label.
    pub flow: String,
    /// The run's seed.
    pub seed: u64,
    /// The measurement, or the experiment error rendered as text.
    pub outcome: Result<Measured, String>,
}

/// A pack after execution: every outcome plus which seeds actually ran.
#[derive(Debug, Clone)]
pub struct ExecutedPack {
    /// One outcome per executed run, flow-major then seed order.
    pub runs: Vec<RunOutcome>,
    /// The seeds that were executed (all of them, or just the first in
    /// quick mode).
    pub seeds_run: Vec<u64>,
}

impl ExecutedPack {
    /// Finds a run's measurement.
    pub fn measured(&self, flow: &str, seed: u64) -> Option<&Measured> {
        self.runs
            .iter()
            .find(|r| r.flow == flow && r.seed == seed)
            .and_then(|r| r.outcome.as_ref().ok())
    }

    /// Runs that failed outright.
    pub fn failures(&self) -> impl Iterator<Item = (&str, u64, &str)> {
        self.runs.iter().filter_map(|r| match &r.outcome {
            Ok(_) => None,
            Err(e) => Some((r.flow.as_str(), r.seed, e.as_str())),
        })
    }
}

/// Loads the trace a pack's `[trace]` section references.
///
/// Returns `Ok(None)` when the pack has no `[trace]`. The path is tried
/// relative to the working directory first, then relative to the pack
/// file's directory and its parent (so catalog packs under `packs/`
/// find `traces/` at the repository root). Parsing is strict — a trace
/// that fails [`Trace::parse`] is an error, never silently ignored.
pub fn load_trace(pack: &Pack, pack_path: Option<&Path>) -> Result<Option<Trace>, String> {
    let Some(trace_ref) = &pack.trace else { return Ok(None) };
    let mut candidates: Vec<PathBuf> = vec![PathBuf::from(&trace_ref.file)];
    if let Some(dir) = pack_path.and_then(Path::parent) {
        candidates.push(dir.join(&trace_ref.file));
        if let Some(parent) = dir.parent() {
            candidates.push(parent.join(&trace_ref.file));
        }
    }
    for candidate in &candidates {
        match std::fs::read_to_string(candidate) {
            Ok(text) => {
                let trace =
                    Trace::parse(&text).map_err(|e| format!("{}: {e}", candidate.display()))?;
                return Ok(Some(trace));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(format!("{}: {e}", candidate.display())),
        }
    }
    Err(format!(
        "trace file `{}` not found (tried {})",
        trace_ref.file,
        candidates.iter().map(|c| c.display().to_string()).collect::<Vec<_>>().join(", ")
    ))
}

/// Executes one compiled run.
pub fn run_one(run: &CompiledRun) -> Result<Measured, String> {
    match &run.campaign {
        None => run_experiment(run.cfg.clone())
            .map(|result| Measured { result, availability: None })
            .map_err(|e| e.to_string()),
        Some(campaign) => run_supervised_experiment(run.cfg.clone(), campaign)
            .map(|s| Measured { result: s.result, availability: Some(s.availability) })
            .map_err(|e| e.to_string()),
    }
}

/// Plans a pack execution: the compiled runs in canonical (flow-major,
/// then seed) order plus the seeds that will run (all of them, or only
/// the first in `quick` mode).
///
/// Every planned run is independent — it builds its own testbed from its
/// own seed — so a caller may execute them in any order (e.g. across a
/// worker pool) and [`assemble`] the outcomes back in plan order for a
/// result byte-identical to [`execute`].
pub fn plan(pack: &Pack, quick: bool) -> (Vec<CompiledRun>, Vec<u64>) {
    let mut seeds_run = pack.seeds.expand();
    if quick {
        seeds_run.truncate(1);
    }
    let runs = compile(pack).into_iter().filter(|r| seeds_run.contains(&r.seed)).collect();
    (runs, seeds_run)
}

/// [`plan`] for packs that may declare a `[trace]`: pass the trace
/// obtained from [`load_trace`].
pub fn plan_with_trace(
    pack: &Pack,
    quick: bool,
    trace: Option<&Trace>,
) -> (Vec<CompiledRun>, Vec<u64>) {
    let mut seeds_run = pack.seeds.expand();
    if quick {
        seeds_run.truncate(1);
    }
    let runs = compile_with_trace(pack, trace)
        .into_iter()
        .filter(|r| seeds_run.contains(&r.seed))
        .collect();
    (runs, seeds_run)
}

/// Assembles per-run outcomes — which must be in [`plan`] order — into an
/// [`ExecutedPack`] equivalent to what [`execute`] would have produced.
pub fn assemble(runs: Vec<RunOutcome>, seeds_run: Vec<u64>) -> ExecutedPack {
    ExecutedPack { runs, seeds_run }
}

/// Executes a pack: every flow, every seed (or only the first seed in
/// `quick` mode), strictly sequentially. `progress` is called after each
/// run completes.
pub fn execute(pack: &Pack, quick: bool, progress: impl FnMut(&RunOutcome)) -> ExecutedPack {
    let (planned, seeds_run) = plan(pack, quick);
    run_planned(planned, seeds_run, progress)
}

/// [`execute`] for packs that may declare a `[trace]`.
pub fn execute_with_trace(
    pack: &Pack,
    quick: bool,
    trace: Option<&Trace>,
    progress: impl FnMut(&RunOutcome),
) -> ExecutedPack {
    let (planned, seeds_run) = plan_with_trace(pack, quick, trace);
    run_planned(planned, seeds_run, progress)
}

fn run_planned(
    planned: Vec<CompiledRun>,
    seeds_run: Vec<u64>,
    mut progress: impl FnMut(&RunOutcome),
) -> ExecutedPack {
    let runs = planned
        .into_iter()
        .map(|r| {
            let outcome = RunOutcome { flow: r.flow.clone(), seed: r.seed, outcome: run_one(&r) };
            progress(&outcome);
            outcome
        })
        .collect();
    assemble(runs, seeds_run)
}

/// Extracts one golden metric from a measurement. `None` means the run
/// did not produce it (e.g. RTT when no probe was answered, or
/// availability metrics on an unsupervised run).
pub fn metric_value(m: &Measured, metric: Metric) -> Option<f64> {
    let s = &m.result.summary;
    match metric {
        Metric::Sent => Some(s.sent as f64),
        Metric::Received => Some(s.received as f64),
        Metric::Lost => Some(s.lost as f64),
        Metric::LossRate => Some(s.loss_rate),
        Metric::MeanBitrateBps => Some(s.mean_bitrate_bps),
        Metric::MeanOwdS => s.mean_owd.map(|d| d.as_secs_f64()),
        Metric::MaxOwdS => s.max_owd.map(|d| d.as_secs_f64()),
        Metric::MeanJitterS => s.mean_jitter.map(|d| d.as_secs_f64()),
        Metric::MeanRttS => s.mean_rtt.map(|d| d.as_secs_f64()),
        Metric::MaxRttS => s.max_rtt.map(|d| d.as_secs_f64()),
        Metric::ConnectTimeS => m.result.connect_time.map(|d| d.as_secs_f64()),
        Metric::Events => Some(m.result.events as f64),
        Metric::UptimeFraction => {
            m.availability.as_ref().and_then(AvailabilityMetrics::uptime_fraction)
        }
        Metric::SessionDrops => m.availability.as_ref().map(|a| a.session_drops as f64),
        Metric::Redials => m.availability.as_ref().map(|a| a.redials as f64),
    }
}

/// Diffs the pack's stored goldens against an execution.
pub fn diff(pack: &Pack, executed: &ExecutedPack) -> GoldenDiff {
    diff_goldens(
        &pack.goldens,
        |_, seed| executed.seeds_run.contains(&seed),
        |flow, seed, metric| executed.measured(flow, seed).and_then(|m| metric_value(m, metric)),
    )
}

/// The metrics `--record` pins for each run: the stable whole-flow
/// measurements. Deliberately excluded: `events` (moves with every
/// scheduler refactor) and the `max_*` tails (single-packet noise).
pub const RECORD_METRICS: [Metric; 12] = [
    Metric::Sent,
    Metric::Received,
    Metric::Lost,
    Metric::LossRate,
    Metric::MeanBitrateBps,
    Metric::MeanOwdS,
    Metric::MeanJitterS,
    Metric::MeanRttS,
    Metric::ConnectTimeS,
    Metric::UptimeFraction,
    Metric::SessionDrops,
    Metric::Redials,
];

/// Replaces the pack's goldens with freshly measured ones (every
/// [`RECORD_METRICS`] entry each executed run produced, at default
/// tolerances), returning the updated pack ready for canonical
/// serialization.
pub fn record(pack: &Pack, executed: &ExecutedPack) -> Pack {
    let mut out = pack.clone();
    out.goldens.clear();
    for run in &executed.runs {
        let Ok(m) = &run.outcome else { continue };
        for metric in RECORD_METRICS {
            if let Some(value) = metric_value(m, metric) {
                out.goldens.push(Golden {
                    flow: run.flow.clone(),
                    seed: run.seed,
                    metric,
                    value,
                    tolerance: metric.default_tolerance(value),
                });
            }
        }
    }
    out.goldens.sort_by(|a, b| (&a.flow, a.seed, a.metric).cmp(&(&b.flow, b.seed, b.metric)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::canon::serialize;
    use crate::schema::Pack;

    #[test]
    fn minimal_pack_executes_and_records_goldens() {
        let pack = Pack::parse(&crate::schema::tests::minimal()).unwrap();
        let executed = execute(&pack, false, |_| {});
        assert_eq!(executed.runs.len(), 1);
        assert_eq!(executed.failures().count(), 0);
        let m = executed.measured("voip", 1).expect("run succeeded");
        assert!(metric_value(m, Metric::Sent).unwrap() > 50.0);
        assert!(metric_value(m, Metric::UptimeFraction).is_none(), "unsupervised");

        // Record, then diff the recorded pack against the same execution:
        // everything must pass by construction.
        let recorded = record(&pack, &executed);
        assert!(!recorded.goldens.is_empty());
        let d = diff(&recorded, &executed);
        assert!(d.pass(), "freshly recorded goldens must pass their own run");

        // And the recorded pack still round-trips canonically.
        let text = serialize(&recorded);
        let reparsed = Pack::parse(&text).unwrap();
        assert_eq!(reparsed, recorded);
        assert_eq!(serialize(&reparsed), text);
    }

    #[test]
    fn perturbed_golden_fails_the_diff() {
        let pack = Pack::parse(&crate::schema::tests::minimal()).unwrap();
        let executed = execute(&pack, false, |_| {});
        let mut recorded = record(&pack, &executed);
        // Push one golden far outside its tolerance.
        let g = &mut recorded.goldens[0];
        g.value += g.tolerance * 10.0 + 1.0;
        let d = diff(&recorded, &executed);
        assert!(!d.pass(), "a perturbed golden must fail");
        assert_eq!(d.failures().count(), 1);
    }

    #[test]
    fn plan_and_assemble_match_execute_even_out_of_order() {
        let text = crate::schema::tests::minimal().replace("reps = 1", "reps = 2");
        let pack = Pack::parse(&text).unwrap();
        let serial = execute(&pack, false, |_| {});
        let (planned, seeds_run) = plan(&pack, false);
        assert_eq!(planned.len(), serial.runs.len());
        assert_eq!(seeds_run, serial.seeds_run);
        // Run the planned runs in reverse order, then put the outcomes
        // back into plan order — the worker-pool shape.
        let mut outcomes: Vec<(usize, RunOutcome)> = planned
            .iter()
            .enumerate()
            .rev()
            .map(|(i, r)| {
                (i, RunOutcome { flow: r.flow.clone(), seed: r.seed, outcome: run_one(r) })
            })
            .collect();
        outcomes.sort_by_key(|&(i, _)| i);
        let assembled = assemble(outcomes.into_iter().map(|(_, o)| o).collect(), seeds_run);
        // Byte-identical goldens prove the executions are equivalent.
        assert_eq!(
            serialize(&record(&pack, &assembled)),
            serialize(&record(&pack, &serial)),
            "out-of-order execution must reassemble to the serial result"
        );
    }

    #[test]
    fn traced_closed_loop_pack_executes_deterministically() {
        let text = crate::schema::tests::minimal()
            + "[trace]\nfile = \"traces/drive.csv\"\n\
               [[flow]]\nlabel = \"bulk\"\nkind = \"tcp_bulk\"\npath = \"umts\"\n\
               duration_s = 8.0\n";
        let pack = Pack::parse(&text).unwrap();
        let trace = Trace::parse(
            "# umtslab-trace v1 name=drive\n0.0,2000000,0\n3.0,300000,20000\n6.0,1000000,0\n",
        )
        .unwrap();
        let run = || {
            let executed = execute_with_trace(&pack, false, Some(&trace), |_| {});
            assert_eq!(executed.failures().count(), 0, "{:?}", executed.failures().next());
            serialize(&record(&pack, &executed))
        };
        let once = run();
        assert_eq!(once, run(), "traced pack must be deterministic");
        let m = Pack::parse(&once).unwrap();
        let bulk_sent = m
            .goldens
            .iter()
            .find(|g| g.flow == "bulk" && g.metric == Metric::Sent)
            .expect("bulk flow recorded");
        assert!(bulk_sent.value > 10.0, "TCP flow moved data: {}", bulk_sent.value);
    }

    #[test]
    fn load_trace_reports_missing_files() {
        let text = crate::schema::tests::minimal() + "[trace]\nfile = \"traces/nope.csv\"\n";
        let pack = Pack::parse(&text).unwrap();
        let err = load_trace(&pack, Some(Path::new("packs/x.pack"))).unwrap_err();
        assert!(err.contains("not found"), "{err}");
        assert!(err.contains("packs/traces/nope.csv"), "tries pack-relative: {err}");
        let plain = Pack::parse(&crate::schema::tests::minimal()).unwrap();
        assert_eq!(load_trace(&plain, None).unwrap(), None);
    }

    #[test]
    fn quick_mode_skips_other_seeds() {
        let text = crate::schema::tests::minimal().replace("reps = 1", "reps = 3");
        let pack = Pack::parse(&text).unwrap();
        let executed = execute(&pack, true, |_| {});
        assert_eq!(executed.runs.len(), 1, "quick mode runs the first seed only");
        let recorded = {
            let full = execute(&pack, false, |_| {});
            record(&pack, &full)
        };
        let d = diff(&recorded, &executed);
        assert!(d.pass());
        assert!(d.skipped > 0, "goldens for unexecuted seeds are skipped");
    }
}
