//! umtslab-pack: declarative experiment packs.
//!
//! A *pack* is a single TOML-subset document that fully describes one
//! experiment on the paper's two-node PlanetLab testbed — topology,
//! slices and their `umts` vsys ACL grants, flows, UMTS operator/device,
//! an optional session-fault campaign, the seed scheme, and the golden
//! metrics the run is expected to reproduce. This crate provides:
//!
//! - a hand-rolled, span-reporting TOML-subset reader ([`lexer`],
//!   [`parser`]) and the typed schema decode ([`schema`]);
//! - a byte-deterministic canonical serializer ([`canon`]) with the
//!   hard round-trip guarantee
//!   `serialize(parse(d)) == serialize(parse(serialize(parse(d))))`
//!   for every valid document `d` — property-tested against seeded
//!   random packs ([`gen`]);
//! - compilation onto the existing experiment machinery ([`mod@compile`]),
//!   sequential seeded execution ([`exec`]), and golden-result
//!   regression diffing with per-metric tolerances ([`golden`]);
//! - catalog loading and rendering for `runner packs --list`
//!   ([`catalog`]).
//!
//! No external dependencies: like the linter's report writer, every
//! byte this crate emits is produced by hand so that equal inputs give
//! equal bytes on every platform.

pub mod canon;
pub mod catalog;
pub mod compile;
pub mod exec;
pub mod gen;
pub mod golden;
pub mod lexer;
pub mod parser;
pub mod schema;

pub use canon::serialize;
pub use catalog::{load_catalog, render_json, render_table, CatalogEntry};
pub use compile::{compile, compile_with_trace, CompiledRun};
pub use exec::{
    assemble, diff, execute, execute_with_trace, load_trace, metric_value, plan, plan_with_trace,
    record, run_one, ExecutedPack, Measured, RunOutcome,
};
pub use gen::random_pack;
pub use golden::{diff_goldens, render_diff_table, Golden, GoldenDiff, Metric};
pub use lexer::{ParseError, Span};
pub use schema::Pack;
