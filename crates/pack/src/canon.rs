//! The canonical serializer: the one true spelling of a [`Pack`].
//!
//! `serialize` is a pure function of the typed pack — fixed section
//! order, fixed key order, one float formatter — so for any document
//! `d`, `serialize(parse(d))` is byte-identical no matter how `d` was
//! formatted. That gives the round-trip guarantee
//! `serialize(parse(d)) == serialize(parse(serialize(parse(d))))`
//! structurally rather than by case analysis, and the property tests in
//! `tests/roundtrip.rs` hammer it with random packs.

use std::fmt::Write;

use umtslab_sim::time::Duration;

use crate::schema::{FaultSpec, FlowKind, LossSpec, Pack};

/// Formats a float so that it re-parses as a float (never an int) and
/// recovers the exact same `f64`.
///
/// Integer-valued floats are written with a trailing `.0`; everything
/// else uses Rust's shortest round-trip representation, which the pack
/// number scanner reads back exactly.
pub fn fmt_float(v: f64) -> String {
    if v == v.trunc() {
        // `{}` would print e.g. 1e19 as a bare (overflowing) integer
        // literal; `{:.1}` keeps the decimal point and is still exact,
        // because every integer-valued f64 has an exact decimal form.
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Formats a duration as float seconds.
///
/// Microsecond-granular durations below ~3 × 10⁴ years survive the trip
/// through [`Duration::as_secs_f64`] / [`Duration::from_secs_f64`]
/// exactly, because `from_secs_f64` rounds to the nearest microsecond.
pub fn fmt_secs(d: Duration) -> String {
    fmt_float(d.as_secs_f64())
}

/// Escapes a string for a basic `"..."` literal.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04X}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a pack into its canonical byte-deterministic form.
pub fn serialize(pack: &Pack) -> String {
    let mut out = String::new();
    let o = &mut out;

    let _ = writeln!(o, "[pack]");
    let _ = writeln!(o, "name = {}", escape_str(&pack.meta.name));
    let _ = writeln!(o, "description = {}", escape_str(&pack.meta.description));
    let _ = writeln!(o, "version = {}", pack.meta.version);

    let _ = writeln!(o, "\n[topology]");
    let _ = writeln!(o, "access_rate_bps = {}", pack.topology.access_rate_bps);
    let _ = writeln!(o, "access_delay_s = {}", fmt_secs(pack.topology.access_delay));
    let _ = writeln!(o, "access_jitter_s = {}", fmt_secs(pack.topology.access_jitter));

    match &pack.topology.fault {
        FaultSpec::None => {}
        FaultSpec::BurstyUmts => {
            let _ = writeln!(o, "\n[topology.fault]");
            let _ = writeln!(o, "preset = \"bursty_umts\"");
        }
        FaultSpec::Custom(c) => {
            let _ = writeln!(o, "\n[topology.fault]");
            let _ = writeln!(o, "preset = \"custom\"");
            match c.loss {
                LossSpec::None => {
                    let _ = writeln!(o, "loss = \"none\"");
                }
                LossSpec::Bernoulli { p } => {
                    let _ = writeln!(o, "loss = \"bernoulli\"");
                    let _ = writeln!(o, "p = {}", fmt_float(p));
                }
                LossSpec::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
                    let _ = writeln!(o, "loss = \"gilbert_elliott\"");
                    let _ = writeln!(o, "p_gb = {}", fmt_float(p_gb));
                    let _ = writeln!(o, "p_bg = {}", fmt_float(p_bg));
                    let _ = writeln!(o, "loss_good = {}", fmt_float(loss_good));
                    let _ = writeln!(o, "loss_bad = {}", fmt_float(loss_bad));
                }
            }
            if c.corrupt_prob != 0.0 {
                let _ = writeln!(o, "corrupt_prob = {}", fmt_float(c.corrupt_prob));
            }
            if c.duplicate_prob != 0.0 {
                let _ = writeln!(o, "duplicate_prob = {}", fmt_float(c.duplicate_prob));
            }
            if c.reorder_prob != 0.0 {
                let _ = writeln!(o, "reorder_prob = {}", fmt_float(c.reorder_prob));
            }
            if !c.reorder_delay.is_zero() {
                let _ = writeln!(o, "reorder_delay_s = {}", fmt_secs(c.reorder_delay));
            }
        }
    }

    let _ = writeln!(o, "\n[umts]");
    let _ = writeln!(o, "operator = {}", escape_str(&pack.umts.operator));
    let _ = writeln!(o, "device = {}", escape_str(&pack.umts.device));
    if let (Some(user), Some(pass)) = (&pack.umts.username, &pack.umts.password) {
        let _ = writeln!(o, "username = {}", escape_str(user));
        let _ = writeln!(o, "password = {}", escape_str(pass));
    }

    if let Some(trace) = &pack.trace {
        let _ = writeln!(o, "\n[trace]");
        let _ = writeln!(o, "file = {}", escape_str(&trace.file));
    }

    for s in &pack.slices {
        let _ = writeln!(o, "\n[[slice]]");
        let _ = writeln!(o, "name = {}", escape_str(&s.name));
        let _ = writeln!(o, "node = \"{}\"", s.node);
        let _ = writeln!(o, "umts_access = {}", s.umts_access);
    }

    for f in &pack.flows {
        let _ = writeln!(o, "\n[[flow]]");
        let _ = writeln!(o, "label = {}", escape_str(&f.label));
        let _ = writeln!(o, "kind = \"{}\"", f.kind.key());
        match &f.kind {
            FlowKind::VoipG711 | FlowKind::Cbr1Mbps => {}
            FlowKind::VoipCodec { codec } => {
                let key = crate::schema::CODEC_KEYS
                    .iter()
                    .find(|(_, c)| c == codec)
                    .map(|(k, _)| *k)
                    .expect("every codec has a key");
                let _ = writeln!(o, "codec = \"{key}\"");
            }
            FlowKind::Cbr { rate_bps, payload_bytes } => {
                let _ = writeln!(o, "rate_bps = {rate_bps}");
                let _ = writeln!(o, "payload_bytes = {payload_bytes}");
            }
            FlowKind::Poisson { mean_pps, payload_bytes } => {
                let _ = writeln!(o, "mean_pps = {}", fmt_float(*mean_pps));
                let _ = writeln!(o, "payload_bytes = {payload_bytes}");
            }
            FlowKind::TcpBulk { mss_bytes } => {
                let _ = writeln!(o, "mss_bytes = {mss_bytes}");
            }
            FlowKind::AdaptiveVideo { frame_bytes } => {
                let _ = writeln!(o, "frame_bytes = {frame_bytes}");
            }
            FlowKind::TraceReplay { rate_bps, payload_bytes } => {
                let _ = writeln!(o, "rate_bps = {rate_bps}");
                let _ = writeln!(o, "payload_bytes = {payload_bytes}");
            }
        }
        let _ = writeln!(
            o,
            "path = \"{}\"",
            match f.path {
                umtslab::PathKind::UmtsToEthernet => "umts",
                umtslab::PathKind::EthernetToEthernet => "ethernet",
            }
        );
        let _ = writeln!(o, "duration_s = {}", fmt_secs(f.duration));
        if let Some(op) = &f.operator {
            let _ = writeln!(o, "operator = {}", escape_str(op));
        }
    }

    if let Some(fp) = &pack.fault_plan {
        let _ = writeln!(o, "\n[fault_plan]");
        let _ = writeln!(o, "start_s = {}", fmt_secs(fp.start));
        let _ = writeln!(o, "horizon_s = {}", fmt_secs(fp.horizon));
        let _ = writeln!(o, "mean_gap_s = {}", fmt_secs(fp.mean_gap));
        let mix: Vec<String> = fp.mix.iter().map(|f| format!("\"{}\"", f.key())).collect();
        let _ = writeln!(o, "mix = [{}]", mix.join(", "));
    }

    let _ = writeln!(o, "\n[seeds]");
    let _ = writeln!(o, "base = {}", pack.seeds.base);
    let _ = writeln!(o, "reps = {}", pack.seeds.reps);

    for g in &pack.goldens {
        let _ = writeln!(o, "\n[[golden]]");
        let _ = writeln!(o, "flow = {}", escape_str(&g.flow));
        let _ = writeln!(o, "seed = {}", g.seed);
        let _ = writeln!(o, "metric = \"{}\"", g.metric.key());
        let _ = writeln!(o, "value = {}", fmt_float(g.value));
        let _ = writeln!(o, "tolerance = {}", fmt_float(g.tolerance));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Pack;

    #[test]
    fn float_formatting_reparses_exactly() {
        for v in [0.0, 1.0, -3.0, 0.004, 72.345, 1.0e-9, 123_456.789_012_3, -0.25] {
            let text = fmt_float(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back, v, "{text}");
            assert!(text.contains('.') || text.contains('e'), "{text} must re-parse as float");
        }
    }

    #[test]
    fn escape_round_trips_through_lexer() {
        let ugly = "a\"b\\c\nd\te\u{1}";
        let escaped = escape_str(ugly);
        let mut cur = crate::lexer::Cursor::new(&escaped);
        assert_eq!(crate::lexer::scan_string(&mut cur).unwrap(), ugly);
    }

    #[test]
    fn serialize_is_idempotent_on_the_minimal_pack() {
        let text = crate::schema::tests::minimal();
        let once = serialize(&Pack::parse(&text).unwrap());
        let twice = serialize(&Pack::parse(&once).unwrap());
        assert_eq!(once, twice);
        // And the canonical form decodes to the same typed pack.
        assert_eq!(Pack::parse(&text).unwrap(), Pack::parse(&once).unwrap());
    }
}
