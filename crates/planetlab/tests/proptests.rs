//! Property-style tests for the PlanetLab node: isolation invariants over
//! arbitrary traffic interleavings, vsys ordering, and routing-state
//! install/teardown symmetry. Inputs come from the workspace's
//! deterministic [`SimRng`] (the build environment is offline, so no
//! external property-testing crate is used).

use umtslab_net::packet::{Mark, Packet, PacketId};
use umtslab_net::route::TableId;
use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::{EgressAction, Node, ETH0, PPP0};
use umtslab_planetlab::umtscmd::{destination_rule, isolation_rule, source_rule};
use umtslab_planetlab::vsys::VsysChannel;
use umtslab_planetlab::SliceId;
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Instant;

/// Randomized cases per property.
const CASES: u64 = 64;

fn a(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

/// A node with the UMTS routing recipe installed by hand (as the back-end
/// would on connect), plus N slices. Returns (node, owner, others).
fn node_with_recipe(n_slices: usize) -> (Node, SliceId, Vec<SliceId>) {
    let mut node = Node::new("test");
    node.configure_eth(a("143.225.229.5"), "143.225.229.0/24".parse().unwrap(), a("143.225.229.1"));
    let owner = node.slices.create("owner");
    let others: Vec<SliceId> = (0..n_slices).map(|i| node.slices.create(format!("s{i}"))).collect();
    let mark = node.slices.mark_of(owner).unwrap();
    let ppp_addr = a("10.64.128.2");
    // Pretend ppp0 is up (the test exercises routing/filtering, not the
    // attachment).
    // Install exactly what the back-end installs.
    node.rib.table_mut(TableId(100)).add(umtslab_net::route::Route {
        prefsrc: Some(ppp_addr),
        ..umtslab_net::route::Route::default_dev(PPP0)
    });
    node.rib.add_rule(destination_rule(mark, Ipv4Cidr::host(a("138.96.20.10"))));
    node.rib.add_rule(source_rule(ppp_addr));
    node.firewall.egress.insert(isolation_rule(PPP0, mark));
    (node, owner, others)
}

fn udp(id: u64, src: Ipv4Address, dst: Ipv4Address) -> Packet {
    Packet::udp(
        PacketId(id),
        Endpoint::new(src, 9000),
        Endpoint::new(dst, 9001),
        vec![0; 32],
        Instant::ZERO,
    )
}

/// THE isolation invariant: no packet from a non-owner slice is ever
/// handed to the UMTS interface, whatever source/destination it uses —
/// including the owner's registered destination, the ppp0 address as
/// source, and random addresses.
#[test]
fn no_foreign_packet_ever_reaches_ppp0() {
    let mut rng = SimRng::seed_from_u64(0x0301);
    for _ in 0..CASES {
        let n_slices = rng.uniform_u64(1, 4) as usize;
        let (mut node, owner, others) = node_with_recipe(n_slices);
        let special_dsts = [a("138.96.20.10"), a("10.64.0.1"), a("8.8.8.8")];
        let special_srcs = [Ipv4Address::UNSPECIFIED, a("10.64.128.2"), a("143.225.229.5")];
        let flows = rng.uniform_u64(1, 199);
        for i in 0..flows {
            let slice_pick = rng.uniform_u64(0, 4) as usize;
            let slice =
                if slice_pick == 0 { owner } else { others[(slice_pick - 1) % others.len()] };
            let src = special_srcs[rng.uniform_u64(0, 2) as usize];
            let dst_seed = rng.next_u64() as u32;
            let dst = if dst_seed % 2 == 0 {
                special_dsts[(dst_seed as usize) % special_dsts.len()]
            } else {
                Ipv4Address::from_u32(dst_seed)
            };
            let p = udp(i, src, dst);
            match node.send_from_slice(Instant::ZERO, slice, p) {
                EgressAction::Umts => {
                    assert_eq!(slice, owner, "foreign slice reached the UMTS path");
                }
                EgressAction::Wire { iface, packet } => {
                    assert_eq!(iface, ETH0);
                    // Whatever leaves eth0 carries the emitting slice's
                    // mark, never someone else's.
                    assert_eq!(packet.mark, node.slices.mark_of(slice).unwrap());
                }
                EgressAction::Local | EgressAction::Dropped(_) => {}
            }
        }
    }
}

/// vsys keeps per-slice FIFO ordering of responses under arbitrary
/// interleavings of submissions.
#[test]
fn vsys_responses_are_fifo_per_slice() {
    let mut rng = SimRng::seed_from_u64(0x0302);
    for _ in 0..CASES {
        let mut ch: VsysChannel<u32, u32> = VsysChannel::new("t");
        let slices: Vec<SliceId> = (0..4).map(|i| SliceId(1000 + i)).collect();
        for s in &slices {
            ch.grant(*s);
        }
        let mut expected: std::collections::HashMap<SliceId, Vec<u32>> = Default::default();
        let ops = rng.uniform_u64(1, 99);
        for _ in 0..ops {
            let s = slices[rng.uniform_u64(0, 3) as usize];
            let what = rng.uniform_u64(0, 999) as u32;
            ch.submit(s, what).unwrap();
            expected.entry(s).or_default().push(what);
        }
        // Backend echoes every request to its slice.
        while let Some((s, req)) = ch.backend_next() {
            ch.backend_reply(s, req);
        }
        let empty: Vec<u32> = Vec::new();
        for s in &slices {
            let got = ch.collect(*s);
            assert_eq!(&got, expected.get(s).unwrap_or(&empty));
        }
    }
}

/// Installing the UMTS routing recipe and tearing it down returns the
/// RIB and firewall to their exact prior state, regardless of how many
/// destinations were registered.
#[test]
fn recipe_teardown_is_exact_inverse() {
    let mut rng = SimRng::seed_from_u64(0x0303);
    for _ in 0..CASES {
        let n_dests = rng.uniform_u64(0, 15) as usize;
        let dests: Vec<u32> = (0..n_dests).map(|_| rng.next_u64() as u32).collect();
        let mut node = Node::new("t");
        node.configure_eth(a("1.0.0.2"), "1.0.0.0/24".parse().unwrap(), a("1.0.0.1"));
        let s = node.slices.create("owner");
        let mark = node.slices.mark_of(s).unwrap();
        let rules_before = node.rib.rules().len();
        let egress_before = node.firewall.egress.rules().len();

        // Install.
        node.rib.table_mut(TableId(100)).add(umtslab_net::route::Route::default_dev(PPP0));
        for d in &dests {
            node.rib.add_rule(destination_rule(mark, Ipv4Cidr::host(Ipv4Address::from_u32(*d))));
        }
        node.rib.add_rule(source_rule(a("10.64.128.9")));
        node.firewall.egress.insert(isolation_rule(PPP0, mark));

        // Teardown exactly as the back-end does.
        node.rib.drop_table(TableId(100));
        node.rib.remove_rules_where(|r| r.priority == 1_000 || r.priority == 1_001);
        node.firewall.egress.remove_by_comment("umts-isolation");

        assert_eq!(node.rib.rules().len(), rules_before);
        assert!(node.rib.table(TableId(100)).is_none());
        assert_eq!(node.firewall.egress.rules().len(), egress_before);
    }
}

/// Slice marks are unique and stable across arbitrary create/destroy
/// sequences.
#[test]
fn slice_marks_stay_unique() {
    let mut rng = SimRng::seed_from_u64(0x0304);
    for _ in 0..CASES {
        let mut node = Node::new("t");
        let mut live: Vec<SliceId> = Vec::new();
        let ops = rng.uniform_u64(1, 99);
        for i in 0..ops {
            if rng.chance(0.5) || live.is_empty() {
                live.push(node.slices.create(format!("s{i}")));
            } else {
                let id = live.remove(i as usize % live.len());
                node.slices.destroy(id);
            }
            let marks: Vec<Mark> = live.iter().map(|s| node.slices.mark_of(*s).unwrap()).collect();
            let mut dedup = marks.clone();
            dedup.sort_by_key(|m| m.0);
            dedup.dedup();
            assert_eq!(dedup.len(), marks.len(), "duplicate marks among live slices");
        }
    }
}
