//! Property-based tests for the PlanetLab node: isolation invariants over
//! arbitrary traffic interleavings, vsys ordering, and routing-state
//! install/teardown symmetry.

use proptest::prelude::*;

use umtslab_net::packet::{Mark, Packet, PacketId};
use umtslab_net::route::TableId;
use umtslab_net::wire::{Endpoint, Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::{EgressAction, Node, ETH0, PPP0};
use umtslab_planetlab::umtscmd::{destination_rule, isolation_rule, source_rule};
use umtslab_planetlab::vsys::VsysChannel;
use umtslab_planetlab::SliceId;
use umtslab_sim::time::Instant;

fn a(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

/// A node with the UMTS routing recipe installed by hand (as the back-end
/// would on connect), plus N slices. Returns (node, owner, others).
fn node_with_recipe(n_slices: usize) -> (Node, SliceId, Vec<SliceId>) {
    let mut node = Node::new("test");
    node.configure_eth(a("143.225.229.5"), "143.225.229.0/24".parse().unwrap(), a("143.225.229.1"));
    let owner = node.slices.create("owner");
    let others: Vec<SliceId> = (0..n_slices).map(|i| node.slices.create(format!("s{i}"))).collect();
    let mark = node.slices.mark_of(owner).unwrap();
    let ppp_addr = a("10.64.128.2");
    // Pretend ppp0 is up (the test exercises routing/filtering, not the
    // attachment).
    // Install exactly what the back-end installs.
    node.rib.table_mut(TableId(100)).add(umtslab_net::route::Route {
        prefsrc: Some(ppp_addr),
        ..umtslab_net::route::Route::default_dev(PPP0)
    });
    node.rib.add_rule(destination_rule(mark, Ipv4Cidr::host(a("138.96.20.10"))));
    node.rib.add_rule(source_rule(mark, ppp_addr));
    node.firewall.egress.insert(isolation_rule(PPP0, mark));
    (node, owner, others)
}

fn udp(id: u64, src: Ipv4Address, dst: Ipv4Address) -> Packet {
    Packet::udp(
        PacketId(id),
        Endpoint::new(src, 9000),
        Endpoint::new(dst, 9001),
        vec![0; 32],
        Instant::ZERO,
    )
}

proptest! {
    /// THE isolation invariant: no packet from a non-owner slice is ever
    /// handed to the UMTS interface, whatever source/destination it uses —
    /// including the owner's registered destination, the ppp0 address as
    /// source, and random addresses.
    #[test]
    fn no_foreign_packet_ever_reaches_ppp0(
        n_slices in 1usize..5,
        flows in proptest::collection::vec((0usize..5, any::<u32>(), any::<u32>()), 1..200),
    ) {
        let (mut node, owner, others) = node_with_recipe(n_slices);
        // ppp0 must be "up" for egress to proceed; fake it via the iface
        // config path the backend uses.
        // (send_from_slice checks iface.up; without an attachment the
        // packet would be dropped anyway — both outcomes are safe, but we
        // want to exercise the filter, so bring the iface up.)
        // NOTE: no public setter; we emulate by checking outcomes instead.
        let special_dsts = [a("138.96.20.10"), a("10.64.0.1"), a("8.8.8.8")];
        let special_srcs = [Ipv4Address::UNSPECIFIED, a("10.64.128.2"), a("143.225.229.5")];
        for (i, (slice_pick, src_seed, dst_seed)) in flows.into_iter().enumerate() {
            let slice = if slice_pick == 0 {
                owner
            } else {
                others[(slice_pick - 1) % others.len()]
            };
            let src = special_srcs[(src_seed as usize) % special_srcs.len()];
            let dst = if dst_seed % 2 == 0 {
                special_dsts[(dst_seed as usize) % special_dsts.len()]
            } else {
                Ipv4Address::from_u32(dst_seed)
            };
            let p = udp(i as u64, src, dst);
            match node.send_from_slice(Instant::ZERO, slice, p) {
                EgressAction::Umts => {
                    prop_assert_eq!(slice, owner, "foreign slice reached the UMTS path");
                }
                EgressAction::Wire { iface, packet } => {
                    prop_assert_eq!(iface, ETH0);
                    // Whatever leaves eth0 carries the emitting slice's
                    // mark, never someone else's.
                    prop_assert_eq!(packet.mark, node.slices.mark_of(slice).unwrap());
                }
                EgressAction::Local | EgressAction::Dropped(_) => {}
            }
        }
    }

    /// vsys keeps per-slice FIFO ordering of responses under arbitrary
    /// interleavings of submissions.
    #[test]
    fn vsys_responses_are_fifo_per_slice(
        ops in proptest::collection::vec((0usize..4, 0u32..1000), 1..100),
    ) {
        let mut ch: VsysChannel<u32, u32> = VsysChannel::new("t");
        let slices: Vec<SliceId> = (0..4).map(|i| SliceId(1000 + i)).collect();
        for s in &slices {
            ch.grant(*s);
        }
        let mut expected: std::collections::HashMap<SliceId, Vec<u32>> = Default::default();
        for (who, what) in &ops {
            let s = slices[*who];
            ch.submit(s, *what).unwrap();
            expected.entry(s).or_default().push(*what);
        }
        // Backend echoes every request to its slice.
        while let Some((s, req)) = ch.backend_next() {
            ch.backend_reply(s, req);
        }
        let empty: Vec<u32> = Vec::new();
        for s in &slices {
            let got = ch.collect(*s);
            prop_assert_eq!(&got, expected.get(s).unwrap_or(&empty));
        }
    }

    /// Installing the UMTS routing recipe and tearing it down returns the
    /// RIB and firewall to their exact prior state, regardless of how many
    /// destinations were registered.
    #[test]
    fn recipe_teardown_is_exact_inverse(
        dests in proptest::collection::vec(any::<u32>(), 0..16),
    ) {
        let mut node = Node::new("t");
        node.configure_eth(a("1.0.0.2"), "1.0.0.0/24".parse().unwrap(), a("1.0.0.1"));
        let s = node.slices.create("owner");
        let mark = node.slices.mark_of(s).unwrap();
        let rules_before = node.rib.rules().len();
        let egress_before = node.firewall.egress.rules().len();

        // Install.
        node.rib.table_mut(TableId(100)).add(umtslab_net::route::Route::default_dev(PPP0));
        for d in &dests {
            node.rib.add_rule(destination_rule(mark, Ipv4Cidr::host(Ipv4Address::from_u32(*d))));
        }
        node.rib.add_rule(source_rule(mark, a("10.64.128.9")));
        node.firewall.egress.insert(isolation_rule(PPP0, mark));

        // Teardown exactly as the back-end does.
        node.rib.drop_table(TableId(100));
        node.rib.remove_rules_where(|r| r.priority == 1_000 || r.priority == 1_001);
        node.firewall.egress.remove_by_comment("umts-isolation");

        prop_assert_eq!(node.rib.rules().len(), rules_before);
        prop_assert!(node.rib.table(TableId(100)).is_none());
        prop_assert_eq!(node.firewall.egress.rules().len(), egress_before);
    }

    /// Slice marks are unique and stable across arbitrary create/destroy
    /// sequences.
    #[test]
    fn slice_marks_stay_unique(ops in proptest::collection::vec(any::<bool>(), 1..100)) {
        let mut node = Node::new("t");
        let mut live: Vec<SliceId> = Vec::new();
        for (i, create) in ops.iter().enumerate() {
            if *create || live.is_empty() {
                live.push(node.slices.create(format!("s{i}")));
            } else {
                let id = live.remove(i % live.len());
                node.slices.destroy(id);
            }
            let marks: Vec<Mark> =
                live.iter().map(|s| node.slices.mark_of(*s).unwrap()).collect();
            let mut dedup = marks.clone();
            dedup.sort_by_key(|m| m.0);
            dedup.dedup();
            prop_assert_eq!(dedup.len(), marks.len(), "duplicate marks among live slices");
        }
    }
}
