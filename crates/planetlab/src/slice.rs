//! Slices: the PlanetLab unit of experiment isolation.
//!
//! A slice is a network-wide container of virtual machines, realized on
//! each node as a VServer security context. For the UMTS integration the
//! property that matters is *classification*: every packet a slice emits
//! is attributable to it via a per-slice firewall mark (the VNET+
//! mechanism the paper exploits), which the routing policy and the
//! isolation filter then act upon.

use umtslab_net::label::Label;
use umtslab_net::packet::Mark;

/// Identifier of a slice on a node (the VServer context id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SliceId(pub u32);

impl core::fmt::Display for SliceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "slice{}", self.0)
    }
}

/// A slice instantiated on a node.
#[derive(Debug, Clone)]
pub struct Slice {
    /// Context id.
    pub id: SliceId,
    /// Human name, e.g. `unina_umts` (interned).
    pub name: Label,
    /// The mark VNET+ stamps on this slice's packets.
    pub mark: Mark,
}

/// The slices instantiated on one node.
#[derive(Debug, Default)]
pub struct SliceTable {
    slices: Vec<Slice>,
    next_id: u32,
}

impl SliceTable {
    /// Creates an empty table.
    pub fn new() -> SliceTable {
        // Context ids start at 1000 like VServer's dynamic range; the mark
        // equals the context id, mirroring VNET+'s convention.
        SliceTable { slices: Vec::new(), next_id: 1000 }
    }

    /// Instantiates a slice, assigning its context id and mark.
    pub fn create(&mut self, name: impl Into<Label>) -> SliceId {
        let id = SliceId(self.next_id);
        self.next_id += 1;
        self.slices.push(Slice { id, name: name.into(), mark: Mark(id.0) });
        id
    }

    /// Instantiates a slice with an explicit mark instead of the derived
    /// one.
    ///
    /// Real VNET+ derives the mark from the context id, so collisions
    /// cannot happen through [`SliceTable::create`]; this constructor
    /// exists to model a *misconfigured* node (duplicate or zero marks)
    /// for the `umtslab-verify` analyzer's seeded-violation scenarios and
    /// for tests.
    pub fn create_with_mark(&mut self, name: impl Into<Label>, mark: Mark) -> SliceId {
        let id = SliceId(self.next_id);
        self.next_id += 1;
        self.slices.push(Slice { id, name: name.into(), mark });
        id
    }

    /// Destroys a slice. Returns whether it existed.
    pub fn destroy(&mut self, id: SliceId) -> bool {
        let before = self.slices.len();
        self.slices.retain(|s| s.id != id);
        before != self.slices.len()
    }

    /// Looks up a slice by id.
    pub fn get(&self, id: SliceId) -> Option<&Slice> {
        self.slices.iter().find(|s| s.id == id)
    }

    /// Looks up a slice by name.
    pub fn by_name(&self, name: &str) -> Option<&Slice> {
        self.slices.iter().find(|s| s.name == name)
    }

    /// The mark of a slice (the classification key).
    pub fn mark_of(&self, id: SliceId) -> Option<Mark> {
        self.get(id).map(|s| s.mark)
    }

    /// All slices.
    pub fn iter(&self) -> impl Iterator<Item = &Slice> {
        self.slices.iter()
    }

    /// Number of instantiated slices.
    pub fn len(&self) -> usize {
        self.slices.len()
    }

    /// True if no slices exist.
    pub fn is_empty(&self) -> bool {
        self.slices.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_assigns_distinct_ids_and_marks() {
        let mut t = SliceTable::new();
        let a = t.create("unina_umts");
        let b = t.create("inria_probe");
        assert_ne!(a, b);
        assert_ne!(t.mark_of(a), t.mark_of(b));
        assert_eq!(t.len(), 2);
        // Marks are non-zero (zero means "unmarked").
        assert!(!t.mark_of(a).unwrap().is_none());
    }

    #[test]
    fn lookup_by_name_and_id() {
        let mut t = SliceTable::new();
        let id = t.create("unina_umts");
        assert_eq!(t.by_name("unina_umts").unwrap().id, id);
        assert_eq!(t.get(id).unwrap().name, "unina_umts");
        assert!(t.by_name("missing").is_none());
    }

    #[test]
    fn destroy_removes_slice() {
        let mut t = SliceTable::new();
        let id = t.create("x");
        assert!(t.destroy(id));
        assert!(!t.destroy(id));
        assert!(t.get(id).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn ids_are_not_reused() {
        let mut t = SliceTable::new();
        let a = t.create("a");
        t.destroy(a);
        let b = t.create("b");
        assert_ne!(a, b);
    }
}
