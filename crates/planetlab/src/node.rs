//! The PlanetLab node: interfaces, routing, filtering, slices and the
//! UMTS back-end.
//!
//! A [`Node`] assembles the pieces the paper modifies on a real PlanetLab
//! machine: the network stack (policy routing + netfilter), the slice
//! table with VNET+-style packet marking, the vsys `umts` script, and the
//! optional 3G attachment. Its data-plane entry points are
//! [`Node::send_from_slice`] (a slice emits a packet) and
//! [`Node::ingress`] (a packet arrives on an interface); the control-plane
//! entry point is [`Node::vsys_submit`] processed by [`Node::poll`].

use umtslab_net::filter::{FilterVerdict, Firewall};
use umtslab_net::icmp;
use umtslab_net::iface::{Iface, IfaceId};
use umtslab_net::label::Label;
use umtslab_net::packet::Packet;
use umtslab_net::route::{FlowKey, Rib, Route, TableId};
use umtslab_net::trace::{TraceKind, TraceLog};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_sim::time::Instant;
use umtslab_umts::attachment::{
    DialError, DownlinkOutcome, SessionFault, UmtsAttachment, UmtsData, UmtsEvent, UplinkOutcome,
};

use crate::slice::{SliceId, SliceTable};
use crate::umtscmd::{
    destination_rule, isolation_rule, source_rule, UmtsCmdError, UmtsPhase, UmtsRequest,
    UmtsResponse, UmtsStatus, ISOLATION_COMMENT, RULE_PRIO_DEST, RULE_PRIO_SRC, UMTS_TABLE,
};
use crate::vsys::{VsysChannel, VsysError};

/// The loopback interface id.
pub const LO: IfaceId = IfaceId(0);
/// The wired interface id.
pub const ETH0: IfaceId = IfaceId(1);
/// The PPP (UMTS) interface id.
pub const PPP0: IfaceId = IfaceId(2);

/// Where a slice-emitted packet ended up.
#[derive(Debug)]
pub enum EgressAction {
    /// Transmit on the wired interface (the caller owns the wire).
    Wire {
        /// Egress interface (always [`ETH0`] today).
        iface: IfaceId,
        /// The packet, marked and source-filled.
        packet: Packet,
    },
    /// Consumed by the UMTS attachment (queued on the uplink bearer).
    Umts,
    /// Delivered locally (destination was one of our own addresses).
    Local,
    /// Dropped; the reason was recorded in the trace log.
    Dropped(TraceKind),
}

/// A packet delivered to a bound socket.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// When it was delivered.
    pub at: Instant,
    /// The slice owning the bound socket.
    pub slice: SliceId,
    /// Interface it arrived on.
    pub iface: IfaceId,
    /// The packet.
    pub packet: Packet,
}

/// Output of [`Node::poll`].
#[derive(Debug, Default)]
pub struct NodePoll {
    /// UMTS lifecycle events that fired.
    pub umts_events: Vec<UmtsEvent>,
    /// Packets that left the operator network toward the internet (the
    /// caller routes them onward).
    pub to_internet: Vec<Packet>,
    /// Kernel-originated packets (ICMP echo replies) leaving on the wired
    /// interface; the caller owns the wire.
    pub wire_tx: Vec<Packet>,
}

/// Interned trace places of one node, precomputed at construction so the
/// per-packet paths never call `format!`.
#[derive(Debug, Clone, Copy)]
struct Places {
    /// `<name>` — the bare node.
    node: Label,
    /// `<name>/no-slice`.
    no_slice: Label,
    /// `<name>/iface-down`.
    iface_down: Label,
    /// `<name>/no-umts`.
    no_umts: Label,
    /// `<name>/ppp0` (uplink queue drops).
    ppp0: Label,
    /// `<name>/ppp0-down`.
    ppp0_down: Label,
    /// `<name>/icmp`.
    icmp: Label,
    /// `<name>/operator`.
    operator: Label,
    /// `<name>/<iface>` per interface id.
    ifaces: [Label; 3],
}

impl Places {
    fn new(name: Label) -> Places {
        let p = |suffix: &str| Label::intern(&format!("{name}/{suffix}"));
        Places {
            node: name,
            no_slice: p("no-slice"),
            iface_down: p("iface-down"),
            no_umts: p("no-umts"),
            ppp0: p("ppp0"),
            ppp0_down: p("ppp0-down"),
            icmp: p("icmp"),
            operator: p("operator"),
            ifaces: [p("lo"), p("eth0"), p("ppp0")],
        }
    }
}

/// A PlanetLab node.
pub struct Node {
    /// Node name (e.g. `planetlab1.unina.it`), interned.
    pub name: Label,
    /// Precomputed trace places (no per-packet formatting).
    places: Places,
    /// Lazily interned `<name>/<slice>` places. Ordered map: slice id
    /// order, never hash order, even if diagnostics iterate it.
    slice_places: std::collections::BTreeMap<SliceId, Label>,
    ifaces: Vec<Iface>,
    /// Routing state (tables + policy rules).
    pub rib: Rib,
    /// Netfilter state.
    pub firewall: Firewall,
    /// Slice table.
    pub slices: SliceTable,
    /// Packet trace (enable for tests/diagnostics).
    pub trace: TraceLog,
    umts: Option<UmtsAttachment>,
    umts_vsys: VsysChannel<UmtsRequest, UmtsResponse>,
    umts_owner: Option<SliceId>,
    umts_phase: UmtsPhase,
    umts_destinations: Vec<Ipv4Cidr>,
    last_dial_error: Option<DialError>,
    /// Bound UDP ports → owning slice. Ordered map: [`Node::bound_ports`]
    /// iterates it, so its order must be the ports' numeric order.
    sockets: std::collections::BTreeMap<u16, SliceId>,
    delivered: Vec<Delivery>,
    /// Kernel-originated packets awaiting egress (ICMP echo replies).
    kernel_tx: Vec<Packet>,
    /// Echo replies addressed to this node, for ping-style tools.
    icmp_inbox: Vec<(Instant, Packet)>,
    /// Id space for kernel-originated packets, disjoint from traffic ids.
    next_kernel_id: u64,
}

impl Node {
    /// Creates a node with loopback up and `eth0`/`ppp0` down.
    pub fn new(name: impl Into<Label>) -> Node {
        let mut lo = Iface::ethernet(LO, "lo");
        lo.kind = umtslab_net::iface::IfaceKind::Loopback;
        lo.configure(Ipv4Address::new(127, 0, 0, 1), None);
        let eth0 = Iface::ethernet(ETH0, "eth0");
        let ppp0 = Iface::point_to_point(PPP0, "ppp0");
        let name = name.into();
        Node {
            name,
            places: Places::new(name),
            slice_places: std::collections::BTreeMap::new(),
            ifaces: vec![lo, eth0, ppp0],
            rib: Rib::new(),
            firewall: Firewall::new(),
            slices: SliceTable::new(),
            trace: TraceLog::new(),
            umts: None,
            umts_vsys: VsysChannel::new("umts"),
            umts_owner: None,
            umts_phase: UmtsPhase::Down,
            umts_destinations: Vec::new(),
            last_dial_error: None,
            sockets: std::collections::BTreeMap::new(),
            delivered: Vec::new(),
            kernel_tx: Vec::new(),
            icmp_inbox: Vec::new(),
            next_kernel_id: 1 << 48,
        }
    }

    /// Configures the wired interface and the main-table routes
    /// (on-link subnet + default via `gateway`).
    pub fn configure_eth(&mut self, addr: Ipv4Address, subnet: Ipv4Cidr, gateway: Ipv4Address) {
        self.iface_mut(ETH0).configure(addr, None);
        let main = self.rib.table_mut(TableId::MAIN);
        main.add(Route { prefsrc: Some(addr), ..Route::onlink(subnet, ETH0) });
        main.add(Route { prefsrc: Some(addr), ..Route::default_via(gateway, ETH0) });
    }

    /// Installs the 3G card and its operator attachment.
    pub fn attach_umts(&mut self, attachment: UmtsAttachment) {
        self.umts = Some(attachment);
    }

    /// True if a 3G card is installed.
    pub fn has_umts(&self) -> bool {
        self.umts.is_some()
    }

    /// Read access to an interface.
    pub fn iface(&self, id: IfaceId) -> &Iface {
        &self.ifaces[id.0 as usize]
    }

    /// All interfaces, in id order (read-only; used by static analyzers).
    pub fn ifaces(&self) -> impl Iterator<Item = &Iface> {
        self.ifaces.iter()
    }

    /// The slices allowed to invoke the `umts` vsys script.
    pub fn umts_acl(&self) -> &[SliceId] {
        self.umts_vsys.granted()
    }

    /// The currently bound UDP ports and their owning slices, in port
    /// order (deterministic for analyzers and diagnostics).
    pub fn bound_ports(&self) -> Vec<(u16, SliceId)> {
        // The socket table is ordered, so iteration *is* port order — no
        // hash-order leak to sort away.
        self.sockets.iter().map(|(&p, &s)| (p, s)).collect()
    }

    fn iface_mut(&mut self, id: IfaceId) -> &mut Iface {
        &mut self.ifaces[id.0 as usize]
    }

    /// The interned `<name>/<slice>` trace place, formatted at most once
    /// per slice.
    fn slice_place(&mut self, slice: SliceId) -> Label {
        let name = self.name;
        *self.slice_places.entry(slice).or_insert_with(|| Label::intern(&format!("{name}/{slice}")))
    }

    /// The wired address.
    pub fn eth_addr(&self) -> Ipv4Address {
        self.iface(ETH0).addr
    }

    /// The UMTS address, if connected.
    pub fn ppp_addr(&self) -> Option<Ipv4Address> {
        let i = self.iface(PPP0);
        if i.up {
            Some(i.addr)
        } else {
            None
        }
    }

    /// Grants a slice access to the `umts` vsys script (done by the node
    /// administrator through the PlanetLab Central API in reality).
    pub fn grant_umts_access(&mut self, slice: SliceId) {
        self.umts_vsys.grant(slice);
    }

    /// Binds a UDP port to a slice's socket. The only failure is "port
    /// already bound", so the error carries no payload.
    #[allow(clippy::result_unit_err)]
    pub fn bind(&mut self, slice: SliceId, port: u16) -> Result<(), ()> {
        if self.sockets.contains_key(&port) {
            return Err(());
        }
        self.sockets.insert(port, slice);
        Ok(())
    }

    /// Releases a bound port.
    pub fn unbind(&mut self, port: u16) {
        self.sockets.remove(&port);
    }

    /// Drains packets delivered to local sockets.
    pub fn take_delivered(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.delivered)
    }

    /// Drains ICMP echo replies addressed to this node.
    pub fn take_icmp(&mut self) -> Vec<(Instant, Packet)> {
        std::mem::take(&mut self.icmp_inbox)
    }

    /// A slice emits a packet. Applies VNET+ marking, policy routing,
    /// source-address selection and the egress firewall.
    pub fn send_from_slice(
        &mut self,
        now: Instant,
        slice: SliceId,
        mut packet: Packet,
    ) -> EgressAction {
        // VNET+: stamp the emitting slice's mark.
        let Some(mark) = self.slices.mark_of(slice) else {
            self.trace.record(now, TraceKind::DropFilter, &packet, self.places.no_slice);
            return EgressAction::Dropped(TraceKind::DropFilter);
        };
        packet.mark = mark;
        let sent_place = self.slice_place(slice);
        self.trace.record(now, TraceKind::Sent, &packet, sent_place);

        // Local destination? Deliver without touching the wire.
        if self.is_local_addr(packet.dst.addr) {
            return self.deliver_local(now, LO, packet);
        }

        // Policy routing.
        let key = FlowKey { src: packet.src.addr, dst: packet.dst.addr, mark: packet.mark };
        let Some(decision) = self.rib.resolve(&key) else {
            self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.node);
            return EgressAction::Dropped(TraceKind::DropNoRoute);
        };
        // Source-address selection, as the kernel does for unbound sockets.
        if packet.src.addr.is_unspecified() {
            let chosen = decision.prefsrc.unwrap_or_else(|| self.iface(decision.dev).addr);
            packet.src.addr = chosen;
        }
        // Egress interface must be up.
        if !self.iface(decision.dev).up {
            self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.iface_down);
            return EgressAction::Dropped(TraceKind::DropNoRoute);
        }

        // Netfilter output path (mangle + the isolation drop rule).
        if self.firewall.process_output(&mut packet, decision.dev) == FilterVerdict::Drop {
            self.trace.record(now, TraceKind::DropFilter, &packet, self.places.node);
            return EgressAction::Dropped(TraceKind::DropFilter);
        }

        self.trace.record(
            now,
            TraceKind::Egress,
            &packet,
            self.places.ifaces[decision.dev.0 as usize],
        );
        if decision.dev == PPP0 {
            let Some(att) = self.umts.as_mut() else {
                self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.no_umts);
                return EgressAction::Dropped(TraceKind::DropNoRoute);
            };
            // The clone shares the payload allocation: the uplink keeps a
            // header-struct copy plus a refcount on the same bytes.
            match att.send_uplink(now, packet.clone()) {
                UplinkOutcome::Queued => EgressAction::Umts,
                UplinkOutcome::DroppedOverflow => {
                    self.trace.record(now, TraceKind::DropQueue, &packet, self.places.ppp0);
                    EgressAction::Dropped(TraceKind::DropQueue)
                }
                UplinkOutcome::NotConnected => {
                    self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.ppp0_down);
                    EgressAction::Dropped(TraceKind::DropNoRoute)
                }
            }
        } else {
            EgressAction::Wire { iface: decision.dev, packet }
        }
    }

    /// A packet arrives on an interface.
    pub fn ingress(&mut self, now: Instant, iface: IfaceId, packet: Packet) -> Option<Delivery> {
        self.trace.record(now, TraceKind::Ingress, &packet, self.places.ifaces[iface.0 as usize]);
        if packet.corrupted {
            self.trace.record(now, TraceKind::DropCorrupt, &packet, self.places.node);
            return None;
        }
        if !self.is_local_addr(packet.dst.addr) {
            // PlanetLab nodes do not forward.
            self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.node);
            return None;
        }
        // Kernel ICMP handling: answer echo requests, collect replies.
        if packet.protocol == umtslab_net::wire::Protocol::Icmp {
            if let Some(echo) = icmp::parse_echo(&packet) {
                if echo.ty == icmp::ECHO_REQUEST {
                    let id = umtslab_net::packet::PacketId(self.next_kernel_id);
                    self.next_kernel_id += 1;
                    if let Some(reply) = icmp::echo_reply_for(&packet, id, now) {
                        self.trace.record(now, TraceKind::Delivered, &packet, self.places.icmp);
                        self.kernel_tx.push(reply);
                    }
                } else {
                    self.trace.record(now, TraceKind::Delivered, &packet, self.places.icmp);
                    self.icmp_inbox.push((now, packet));
                }
                return None;
            }
            self.trace.record(now, TraceKind::DropCorrupt, &packet, self.places.node);
            return None;
        }
        match self.deliver_local(now, iface, packet) {
            EgressAction::Local => self.delivered.last().cloned(),
            _ => None,
        }
    }

    fn deliver_local(&mut self, now: Instant, iface: IfaceId, packet: Packet) -> EgressAction {
        let Some(&slice) = self.sockets.get(&packet.dst.port) else {
            self.trace.record(now, TraceKind::DropNoSocket, &packet, self.places.node);
            return EgressAction::Dropped(TraceKind::DropNoSocket);
        };
        let place = self.slice_place(slice);
        self.trace.record(now, TraceKind::Delivered, &packet, place);
        self.delivered.push(Delivery { at: now, slice, iface, packet });
        EgressAction::Local
    }

    fn is_local_addr(&self, addr: Ipv4Address) -> bool {
        self.ifaces.iter().any(|i| i.up && i.addr == addr)
    }

    // --- UMTS control plane ---------------------------------------------

    /// Front-end: a slice submits a `umts` command.
    pub fn vsys_submit(&mut self, slice: SliceId, request: UmtsRequest) -> Result<(), VsysError> {
        self.umts_vsys.submit(slice, request)
    }

    /// Front-end: a slice collects its responses.
    pub fn vsys_collect(&mut self, slice: SliceId) -> Vec<UmtsResponse> {
        self.umts_vsys.collect(slice)
    }

    /// The current UMTS status (as the back-end would report it).
    pub fn umts_status(&self) -> UmtsStatus {
        UmtsStatus {
            phase: self.umts_phase,
            owner: self.umts_owner,
            local_addr: self.ppp_addr(),
            operator: self.umts.as_ref().map(|a| a.profile().name.clone()).unwrap_or_default(),
            rrc: self.umts.as_ref().map(umtslab_umts::UmtsAttachment::rrc_state),
            destinations: self.umts_destinations.clone(),
        }
    }

    /// The attachment (for instrumentation).
    pub fn umts_attachment(&self) -> Option<&UmtsAttachment> {
        self.umts.as_ref()
    }

    /// Injects a session-level fault into the attached UMTS stack (the
    /// supervisor's chaos campaigns drive this). No-op without a card.
    pub fn inject_umts_fault(&mut self, now: Instant, fault: SessionFault) {
        if let Some(att) = self.umts.as_mut() {
            att.inject_fault(now, fault);
        }
    }

    /// Power-cycles the 3G card (watchdog reset; see
    /// [`UmtsAttachment::reset_modem`]). No-op without a card.
    pub fn reset_umts_modem(&mut self, now: Instant) {
        if let Some(att) = self.umts.as_mut() {
            att.reset_modem(now);
        }
    }

    /// Why the last connection attempt failed, if it did.
    pub fn last_dial_error(&self) -> Option<DialError> {
        self.last_dial_error
    }

    /// The earliest instant at which the node has internal work.
    pub fn next_wakeup(&self) -> Option<Instant> {
        let mut t = self.umts.as_ref().and_then(umtslab_umts::UmtsAttachment::next_wakeup);
        if self.umts_vsys.pending() > 0 || !self.kernel_tx.is_empty() {
            t = Some(t.map_or(Instant::ZERO, |x| x.min(Instant::ZERO)));
        }
        t
    }

    /// Advances the vsys back-end and the UMTS attachment.
    pub fn poll(&mut self, now: Instant) -> NodePoll {
        let mut out = NodePoll::default();
        // Kernel-originated egress (ICMP echo replies).
        for mut packet in std::mem::take(&mut self.kernel_tx) {
            let key = FlowKey { src: packet.src.addr, dst: packet.dst.addr, mark: packet.mark };
            let Some(decision) = self.rib.resolve(&key) else {
                self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.node);
                continue;
            };
            if !self.iface(decision.dev).up {
                self.trace.record(now, TraceKind::DropNoRoute, &packet, self.places.node);
                continue;
            }
            if self.firewall.process_output(&mut packet, decision.dev) == FilterVerdict::Drop {
                self.trace.record(now, TraceKind::DropFilter, &packet, self.places.node);
                continue;
            }
            self.trace.record(
                now,
                TraceKind::Egress,
                &packet,
                self.places.ifaces[decision.dev.0 as usize],
            );
            if decision.dev == PPP0 {
                if let Some(att) = self.umts.as_mut() {
                    let _ = att.send_uplink(now, packet);
                }
            } else {
                out.wire_tx.push(packet);
            }
        }
        // Back-end: process queued commands.
        while let Some((slice, req)) = self.umts_vsys.backend_next() {
            let resp = self.umts_backend(now, slice, req);
            self.umts_vsys.backend_reply(slice, resp);
        }
        // Attachment.
        if let Some(att) = self.umts.as_mut() {
            let r = att.poll(now);
            for ev in &r.events {
                self.umts_lifecycle(now, *ev);
            }
            out.umts_events.extend(r.events);
            for d in r.data {
                match d {
                    UmtsData::ToInternet(p) => out.to_internet.push(p),
                    UmtsData::ToHost(p) => {
                        let _ = self.ingress(now, PPP0, p);
                    }
                }
            }
        }
        out
    }

    /// Delivers an internet-side packet to this node's UMTS address.
    pub fn deliver_umts_downlink(&mut self, now: Instant, packet: Packet) -> DownlinkOutcome {
        let Some(att) = self.umts.as_mut() else {
            return DownlinkOutcome::NotConnected;
        };
        // Header-struct copy; the payload allocation is shared.
        let outcome = att.deliver_downlink(now, packet.clone());
        if outcome == DownlinkOutcome::BlockedByFirewall {
            self.trace.record(now, TraceKind::DropOperatorFirewall, &packet, self.places.operator);
        }
        outcome
    }

    fn umts_backend(&mut self, now: Instant, slice: SliceId, req: UmtsRequest) -> UmtsResponse {
        if self.umts.is_none() {
            return UmtsResponse::Error(UmtsCmdError::NoDevice);
        }
        match req {
            UmtsRequest::Status => UmtsResponse::Status(self.umts_status()),
            UmtsRequest::Start => {
                match self.umts_owner {
                    Some(owner) if owner != slice => {
                        return UmtsResponse::Error(UmtsCmdError::LockedByOtherSlice(owner));
                    }
                    Some(_) => return UmtsResponse::Error(UmtsCmdError::AlreadyStarted),
                    None => {}
                }
                self.umts_owner = Some(slice);
                self.umts_phase = UmtsPhase::Starting;
                self.last_dial_error = None;
                self.umts.as_mut().expect("checked above").start(now);
                UmtsResponse::Accepted
            }
            UmtsRequest::Stop => {
                if self.umts_owner != Some(slice) {
                    return UmtsResponse::Error(self.not_owner_error());
                }
                self.umts_phase = UmtsPhase::Stopping;
                self.umts.as_mut().expect("checked above").stop(now);
                UmtsResponse::Accepted
            }
            UmtsRequest::AddDestination(dest) => {
                if self.umts_owner != Some(slice) {
                    return UmtsResponse::Error(self.not_owner_error());
                }
                if self.umts_destinations.contains(&dest) {
                    return UmtsResponse::Error(UmtsCmdError::DuplicateDestination);
                }
                self.umts_destinations.push(dest);
                if self.umts_phase == UmtsPhase::Up {
                    let mark = self.slices.mark_of(slice).expect("owner slice exists");
                    self.rib.add_rule(destination_rule(mark, dest));
                }
                UmtsResponse::Accepted
            }
            UmtsRequest::DelDestination(dest) => {
                if self.umts_owner != Some(slice) {
                    return UmtsResponse::Error(self.not_owner_error());
                }
                let Some(pos) = self.umts_destinations.iter().position(|d| *d == dest) else {
                    return UmtsResponse::Error(UmtsCmdError::UnknownDestination);
                };
                self.umts_destinations.remove(pos);
                self.rib.remove_rules_where(|r| {
                    r.priority == RULE_PRIO_DEST && r.selector.dst == Some(dest)
                });
                UmtsResponse::Accepted
            }
        }
    }

    fn not_owner_error(&self) -> UmtsCmdError {
        match self.umts_owner {
            Some(owner) => UmtsCmdError::LockedByOtherSlice(owner),
            None => UmtsCmdError::NotStarted,
        }
    }

    fn umts_lifecycle(&mut self, _now: Instant, event: UmtsEvent) {
        match event {
            UmtsEvent::Connected { local, peer } => {
                self.iface_mut(PPP0).configure(local, Some(peer));
                let Some(owner) = self.umts_owner else { return };
                let Some(mark) = self.slices.mark_of(owner) else { return };
                self.umts_phase = UmtsPhase::Up;
                // The dedicated table with its single default route.
                self.rib
                    .table_mut(UMTS_TABLE)
                    .add(Route { prefsrc: Some(local), ..Route::default_dev(PPP0) });
                // Rule (i) per registered destination.
                for dest in self.umts_destinations.clone() {
                    self.rib.add_rule(destination_rule(mark, dest));
                }
                // Rule (ii): packets sourced from the ppp0 address.
                self.rib.add_rule(source_rule(local));
                // The isolation drop rule.
                self.firewall.egress.insert(isolation_rule(PPP0, mark));
            }
            UmtsEvent::Failed(err) => {
                self.last_dial_error = Some(err);
                self.teardown_umts_state();
            }
            UmtsEvent::Disconnected => {
                self.teardown_umts_state();
            }
        }
    }

    /// Cheap structural audit of the node's isolation state.
    ///
    /// Returns one human-readable finding per broken basic invariant:
    /// duplicate or zero slice marks (VNET+ classification must be
    /// injective), duplicated isolation rules, and stale UMTS policy
    /// state left behind while the bearer is down. This is the
    /// `debug_assert!` hook the testbed runs; the full packet-space
    /// analysis lives in the `umtslab-verify` crate.
    pub fn audit(&self) -> Vec<String> {
        let mut findings = Vec::new();
        let slices: Vec<_> = self.slices.iter().collect();
        for (i, a) in slices.iter().enumerate() {
            if a.mark.is_none() {
                findings.push(format!("slice {} ({}) has the reserved zero mark", a.id, a.name));
            }
            for b in &slices[i + 1..] {
                if a.mark == b.mark {
                    findings.push(format!(
                        "mark collision: slices {} ({}) and {} ({}) share mark {}",
                        a.id, a.name, b.id, b.name, a.mark.0
                    ));
                }
            }
        }
        let isolation_rules =
            self.firewall.egress.rules().iter().filter(|r| r.comment == ISOLATION_COMMENT).count();
        if isolation_rules > 1 {
            findings.push(format!("{isolation_rules} duplicate isolation rules on egress"));
        }
        // While `Stopping` the connection is still up and its state is
        // legitimately installed; only a fully `Down` node must be clean.
        if self.umts_phase == UmtsPhase::Down {
            if self.rib.table(UMTS_TABLE).is_some_and(|t| !t.is_empty()) {
                findings.push("stale UMTS routing table while the bearer is down".into());
            }
            if self
                .rib
                .rules()
                .iter()
                .any(|r| r.priority == RULE_PRIO_DEST || r.priority == RULE_PRIO_SRC)
            {
                findings.push("stale UMTS policy rules while the bearer is down".into());
            }
            if isolation_rules > 0 {
                findings.push("stale isolation rule while the bearer is down".into());
            }
        }
        findings
    }

    fn teardown_umts_state(&mut self) {
        self.iface_mut(PPP0).deconfigure();
        self.rib.drop_table(UMTS_TABLE);
        self.rib
            .remove_rules_where(|r| r.priority == RULE_PRIO_DEST || r.priority == RULE_PRIO_SRC);
        self.firewall.egress.remove_by_comment(ISOLATION_COMMENT);
        self.umts_owner = None;
        self.umts_phase = UmtsPhase::Down;
        self.umts_destinations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::packet::{PacketId, PacketIdAllocator};
    use umtslab_net::wire::Endpoint;
    use umtslab_sim::time::Duration;
    use umtslab_umts::at::DeviceProfile;
    use umtslab_umts::operator::OperatorProfile;
    use umtslab_umts::ppp::Credentials;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn test_node() -> Node {
        let mut n = Node::new("planetlab1.unina.it");
        n.configure_eth(
            a("143.225.229.5"),
            "143.225.229.0/24".parse().unwrap(),
            a("143.225.229.1"),
        );
        n
    }

    fn node_with_umts() -> (Node, SliceId) {
        let mut n = test_node();
        let att = UmtsAttachment::new(
            OperatorProfile::commercial_italy(),
            DeviceProfile::huawei_e620(),
            Some(Credentials::new("web", "web")),
            7,
            Instant::ZERO,
        );
        n.attach_umts(att);
        let s = n.slices.create("unina_umts");
        n.grant_umts_access(s);
        (n, s)
    }

    /// Polls the node forward until `pred` or the horizon.
    fn run_node(
        n: &mut Node,
        from: Instant,
        horizon: Instant,
        mut pred: impl FnMut(&Node) -> bool,
    ) -> Instant {
        let mut now = from;
        loop {
            let _ = n.poll(now);
            if pred(n) || now >= horizon {
                return now;
            }
            now = match n.next_wakeup() {
                Some(t) if t > now => t.min(horizon),
                _ => now + Duration::from_millis(1),
            };
        }
    }

    fn connect(n: &mut Node, s: SliceId) -> Instant {
        n.vsys_submit(s, UmtsRequest::Start).unwrap();
        let t = run_node(n, Instant::ZERO, Instant::from_secs(60), |n| {
            n.umts_status().phase == UmtsPhase::Up
        });
        assert_eq!(n.umts_status().phase, UmtsPhase::Up, "responses: {:?}", n.umts_status());
        t
    }

    fn udp(alloc: &mut PacketIdAllocator, dst: Ipv4Address, dport: u16, now: Instant) -> Packet {
        Packet::udp(
            alloc.allocate(),
            Endpoint::new(Ipv4Address::UNSPECIFIED, 9000),
            Endpoint::new(dst, dport),
            vec![0; 32],
            now,
        )
    }

    #[test]
    fn wired_egress_uses_main_table_and_fills_source() {
        let mut n = test_node();
        let s = n.slices.create("probe");
        let mut alloc = PacketIdAllocator::new();
        let p = udp(&mut alloc, a("138.96.20.1"), 9001, Instant::ZERO);
        match n.send_from_slice(Instant::ZERO, s, p) {
            EgressAction::Wire { iface, packet } => {
                assert_eq!(iface, ETH0);
                assert_eq!(packet.src.addr, a("143.225.229.5"));
                assert_eq!(packet.mark, n.slices.mark_of(s).unwrap());
            }
            other => panic!("expected wired egress, got {other:?}"),
        }
    }

    #[test]
    fn unknown_slice_is_dropped() {
        let mut n = test_node();
        let mut alloc = PacketIdAllocator::new();
        let p = udp(&mut alloc, a("138.96.20.1"), 9001, Instant::ZERO);
        assert!(matches!(
            n.send_from_slice(Instant::ZERO, SliceId(9999), p),
            EgressAction::Dropped(TraceKind::DropFilter)
        ));
    }

    #[test]
    fn no_route_is_dropped() {
        let mut n = Node::new("bare");
        let s = n.slices.create("x");
        let mut alloc = PacketIdAllocator::new();
        let p = udp(&mut alloc, a("8.8.8.8"), 1, Instant::ZERO);
        assert!(matches!(
            n.send_from_slice(Instant::ZERO, s, p),
            EgressAction::Dropped(TraceKind::DropNoRoute)
        ));
    }

    #[test]
    fn ingress_delivers_to_bound_socket() {
        let mut n = test_node();
        let s = n.slices.create("recv");
        n.bind(s, 9001).unwrap();
        let mut alloc = PacketIdAllocator::new();
        let mut p = udp(&mut alloc, a("143.225.229.5"), 9001, Instant::ZERO);
        p.src = Endpoint::new(a("138.96.20.1"), 9000);
        let d = n.ingress(Instant::from_millis(5), ETH0, p).expect("delivered");
        assert_eq!(d.slice, s);
        assert_eq!(d.iface, ETH0);
        assert_eq!(n.take_delivered().len(), 1);
        assert!(n.take_delivered().is_empty());
    }

    #[test]
    fn ingress_drops_unbound_port_and_corruption_and_foreign() {
        let mut n = test_node();
        n.trace.set_enabled(true);
        let mut alloc = PacketIdAllocator::new();
        // Unbound port.
        let p = udp(&mut alloc, a("143.225.229.5"), 4444, Instant::ZERO);
        assert!(n.ingress(Instant::ZERO, ETH0, p).is_none());
        // Corrupted packet.
        let mut p = udp(&mut alloc, a("143.225.229.5"), 4444, Instant::ZERO);
        p.corrupted = true;
        assert!(n.ingress(Instant::ZERO, ETH0, p).is_none());
        // Not addressed to us: nodes do not forward.
        let p = udp(&mut alloc, a("1.2.3.4"), 4444, Instant::ZERO);
        assert!(n.ingress(Instant::ZERO, ETH0, p).is_none());
        assert_eq!(n.trace.of_kind(TraceKind::DropNoSocket).count(), 1);
        assert_eq!(n.trace.of_kind(TraceKind::DropCorrupt).count(), 1);
        assert_eq!(n.trace.of_kind(TraceKind::DropNoRoute).count(), 1);
    }

    #[test]
    fn double_bind_fails() {
        let mut n = test_node();
        let s1 = n.slices.create("a");
        let s2 = n.slices.create("b");
        n.bind(s1, 9001).unwrap();
        assert!(n.bind(s2, 9001).is_err());
        n.unbind(9001);
        assert!(n.bind(s2, 9001).is_ok());
    }

    #[test]
    fn vsys_acl_gates_umts_commands() {
        let (mut n, _s) = node_with_umts();
        let outsider = n.slices.create("outsider");
        assert_eq!(n.vsys_submit(outsider, UmtsRequest::Start), Err(VsysError::NotAuthorized));
    }

    #[test]
    fn start_locks_and_connects_and_installs_state() {
        let (mut n, s) = node_with_umts();
        connect(&mut n, s);
        let responses = n.vsys_collect(s);
        assert_eq!(responses, vec![UmtsResponse::Accepted]);
        let status = n.umts_status();
        assert_eq!(status.owner, Some(s));
        assert!(status.local_addr.is_some());
        // Routing state: the UMTS table and the source rule exist.
        assert!(!n.rib.table(UMTS_TABLE).unwrap().is_empty());
        assert_eq!(n.rib.rules().iter().filter(|r| r.priority == RULE_PRIO_SRC).count(), 1);
        // The isolation rule is installed.
        assert_eq!(
            n.firewall.egress.rules().iter().filter(|r| r.comment == ISOLATION_COMMENT).count(),
            1
        );
    }

    #[test]
    fn second_slice_cannot_start_while_locked() {
        let (mut n, s) = node_with_umts();
        let other = n.slices.create("other");
        n.grant_umts_access(other);
        connect(&mut n, s);
        n.vsys_submit(other, UmtsRequest::Start).unwrap();
        let _ = n.poll(Instant::from_secs(61));
        assert_eq!(
            n.vsys_collect(other),
            vec![UmtsResponse::Error(UmtsCmdError::LockedByOtherSlice(s))]
        );
    }

    #[test]
    fn registered_destination_routes_over_umts_others_over_eth() {
        let (mut n, s) = node_with_umts();
        let dest: Ipv4Cidr = "138.96.0.0/16".parse().unwrap();
        // Before `start`, adding a destination is refused by the back-end.
        n.vsys_submit(s, UmtsRequest::AddDestination(dest)).unwrap();
        let _ = n.poll(Instant::ZERO);
        assert_eq!(n.vsys_collect(s), vec![UmtsResponse::Error(UmtsCmdError::NotStarted)]);
        let t = connect(&mut n, s);
        n.vsys_submit(s, UmtsRequest::AddDestination(dest)).unwrap();
        let _ = n.poll(t);
        let mut alloc = PacketIdAllocator::new();
        // To the registered destination: consumed by the attachment.
        let p = udp(&mut alloc, a("138.96.20.1"), 9001, t);
        assert!(matches!(n.send_from_slice(t, s, p), EgressAction::Umts));
        // Elsewhere: the wired path.
        let p = udp(&mut alloc, a("8.8.8.8"), 9001, t);
        assert!(matches!(n.send_from_slice(t, s, p), EgressAction::Wire { iface: ETH0, .. }));
        // Another slice to the registered destination: the wired path.
        let other = n.slices.create("other");
        let p = udp(&mut alloc, a("138.96.20.1"), 9001, t);
        assert!(matches!(n.send_from_slice(t, other, p), EgressAction::Wire { iface: ETH0, .. }));
    }

    #[test]
    fn foreign_slice_binding_to_umts_address_is_dropped() {
        let (mut n, s) = node_with_umts();
        let t = connect(&mut n, s);
        let ppp = n.ppp_addr().unwrap();
        let other = n.slices.create("other");
        n.trace.set_enabled(true);
        let mut alloc = PacketIdAllocator::new();
        // The paper's special case: a foreign slice binds to the UMTS
        // address. The source rule steers everything sourced from the ppp0
        // address into the UMTS table, and the egress isolation rule then
        // drops the foreign mark — the packet never leaks out eth0 with
        // the UMTS source address.
        let mut p = udp(&mut alloc, a("8.8.8.8"), 9001, t);
        p.src.addr = ppp;
        assert!(matches!(
            n.send_from_slice(t, other, p),
            EgressAction::Dropped(TraceKind::DropFilter)
        ));
        // Packets from the foreign slice to the PPP peer address: these
        // resolve via main table to eth0 in our topology, so to exercise
        // the drop rule directly, install a bogus route and check the
        // firewall stops it.
        let peer = n.iface(PPP0).peer.unwrap();
        n.rib.table_mut(TableId::MAIN).add(Route::onlink(Ipv4Cidr::host(peer), PPP0));
        let p = udp(&mut alloc, peer, 9001, t);
        assert!(matches!(
            n.send_from_slice(t, other, p),
            EgressAction::Dropped(TraceKind::DropFilter)
        ));
        // While the owner to the same address passes the filter.
        let p = udp(&mut alloc, peer, 9001, t);
        assert!(matches!(n.send_from_slice(t, s, p), EgressAction::Umts));
    }

    #[test]
    fn stop_unlocks_and_removes_state() {
        let (mut n, s) = node_with_umts();
        let t = connect(&mut n, s);
        let _ = n.vsys_collect(s);
        n.vsys_submit(s, UmtsRequest::Stop).unwrap();
        let end = run_node(&mut n, t, t + Duration::from_secs(30), |n| {
            n.umts_status().phase == UmtsPhase::Down
        });
        let status = n.umts_status();
        assert_eq!(status.phase, UmtsPhase::Down);
        assert_eq!(status.owner, None);
        assert!(n.ppp_addr().is_none());
        assert!(n.rib.table(UMTS_TABLE).is_none());
        assert!(n.rib.rules().iter().all(|r| r.priority == 32_766));
        assert!(n.firewall.egress.rules().is_empty());
        let _ = end;
    }

    #[test]
    fn injected_ppp_drop_tears_down_cleanly_and_node_can_redial() {
        let (mut n, s) = node_with_umts();
        let t = connect(&mut n, s);
        let _ = n.vsys_collect(s);

        n.inject_umts_fault(t, SessionFault::PppTerminate);
        let down = run_node(&mut n, t, t + Duration::from_secs(30), |n| {
            n.umts_status().phase == UmtsPhase::Down
        });
        assert_eq!(n.umts_status().phase, UmtsPhase::Down);
        assert!(n.audit().is_empty(), "stale UMTS state after drop: {:?}", n.audit());

        // A watchdog reset followed by a fresh Start must bring it back.
        n.reset_umts_modem(down);
        n.vsys_submit(s, UmtsRequest::Start).unwrap();
        let up = run_node(&mut n, down, down + Duration::from_secs(60), |n| {
            n.umts_status().phase == UmtsPhase::Up
        });
        assert_eq!(n.umts_status().phase, UmtsPhase::Up);
        let _ = up;
    }

    #[test]
    fn fault_passthroughs_without_a_card_are_noops() {
        let mut n = test_node();
        n.inject_umts_fault(Instant::ZERO, SessionFault::ModemHang);
        n.reset_umts_modem(Instant::ZERO);
        assert_eq!(n.umts_status().phase, UmtsPhase::Down);
    }

    #[test]
    fn add_del_destination_bookkeeping() {
        let (mut n, s) = node_with_umts();
        let t = connect(&mut n, s);
        let _ = n.vsys_collect(s);
        let dest: Ipv4Cidr = "138.96.0.0/16".parse().unwrap();
        n.vsys_submit(s, UmtsRequest::AddDestination(dest)).unwrap();
        n.vsys_submit(s, UmtsRequest::AddDestination(dest)).unwrap();
        n.vsys_submit(s, UmtsRequest::DelDestination(dest)).unwrap();
        n.vsys_submit(s, UmtsRequest::DelDestination(dest)).unwrap();
        let _ = n.poll(t);
        let responses = n.vsys_collect(s);
        assert_eq!(
            responses,
            vec![
                UmtsResponse::Accepted,
                UmtsResponse::Error(UmtsCmdError::DuplicateDestination),
                UmtsResponse::Accepted,
                UmtsResponse::Error(UmtsCmdError::UnknownDestination),
            ]
        );
        assert!(n.umts_status().destinations.is_empty());
        assert!(n.rib.rules().iter().all(|r| r.priority != RULE_PRIO_DEST));
    }

    #[test]
    fn status_without_device_errors() {
        let mut n = test_node();
        let s = n.slices.create("x");
        n.grant_umts_access(s);
        n.vsys_submit(s, UmtsRequest::Start).unwrap();
        let _ = n.poll(Instant::ZERO);
        assert_eq!(n.vsys_collect(s), vec![UmtsResponse::Error(UmtsCmdError::NoDevice)]);
    }

    #[test]
    fn icmp_echo_request_is_answered_by_the_kernel() {
        let mut n = test_node();
        let req = umtslab_net::icmp::echo_request(
            PacketId(50),
            a("138.96.20.10"),
            a("143.225.229.5"),
            0x1234,
            1,
            b"timestamp",
            Instant::ZERO,
        );
        assert!(n.ingress(Instant::from_millis(1), ETH0, req).is_none());
        let out = n.poll(Instant::from_millis(1));
        assert_eq!(out.wire_tx.len(), 1);
        let reply = &out.wire_tx[0];
        assert_eq!(reply.dst.addr, a("138.96.20.10"));
        assert_eq!(reply.src.addr, a("143.225.229.5"));
        let echo = umtslab_net::icmp::parse_echo(reply).unwrap();
        assert_eq!(echo.ty, umtslab_net::icmp::ECHO_REPLY);
        assert_eq!(echo.ident, 0x1234);
        assert_eq!(echo.data, b"timestamp");
        // Nothing left queued.
        assert!(n.poll(Instant::from_millis(2)).wire_tx.is_empty());
    }

    #[test]
    fn icmp_echo_reply_lands_in_the_inbox() {
        let mut n = test_node();
        let req = umtslab_net::icmp::echo_request(
            PacketId(51),
            a("143.225.229.5"),
            a("138.96.20.10"),
            9,
            2,
            b"",
            Instant::ZERO,
        );
        let reply =
            umtslab_net::icmp::echo_reply_for(&req, PacketId(52), Instant::from_millis(3)).unwrap();
        assert!(n.ingress(Instant::from_millis(3), ETH0, reply).is_none());
        let inbox = n.take_icmp();
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].0, Instant::from_millis(3));
        assert!(n.take_icmp().is_empty());
    }

    #[test]
    fn malformed_icmp_is_dropped() {
        let mut n = test_node();
        n.trace.set_enabled(true);
        let mut req = umtslab_net::icmp::echo_request(
            PacketId(53),
            a("138.96.20.10"),
            a("143.225.229.5"),
            1,
            1,
            b"x",
            Instant::ZERO,
        );
        let mut damaged = req.payload.to_vec();
        damaged[2] ^= 0xFF; // break the checksum
        req.payload = damaged.into();
        assert!(n.ingress(Instant::ZERO, ETH0, req).is_none());
        assert_eq!(n.poll(Instant::ZERO).wire_tx.len(), 0);
        assert_eq!(n.trace.of_kind(TraceKind::DropCorrupt).count(), 1);
    }

    #[test]
    fn kernel_reply_pends_a_wakeup() {
        let mut n = test_node();
        assert_eq!(n.next_wakeup(), None);
        let req = umtslab_net::icmp::echo_request(
            PacketId(54),
            a("138.96.20.10"),
            a("143.225.229.5"),
            1,
            1,
            b"",
            Instant::ZERO,
        );
        let _ = n.ingress(Instant::ZERO, ETH0, req);
        assert!(n.next_wakeup().is_some(), "kernel egress must request a poll");
    }

    #[test]
    fn local_delivery_between_slices() {
        let mut n = test_node();
        let sender = n.slices.create("tx");
        let receiver = n.slices.create("rx");
        n.bind(receiver, 5000).unwrap();
        let mut alloc = PacketIdAllocator::new();
        let p = udp(&mut alloc, a("143.225.229.5"), 5000, Instant::ZERO);
        assert!(matches!(n.send_from_slice(Instant::ZERO, sender, p), EgressAction::Local));
        let d = n.take_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].slice, receiver);
        assert_eq!(d[0].packet.id, PacketId(0));
    }
}
