//! # umtslab-planetlab — the PlanetLab node substrate
//!
//! Models the pieces of the PlanetLab architecture the paper's
//! integration touches:
//!
//! * [`mod@slice`] — slices (VServer contexts) and the per-slice packet mark
//!   (the VNET+ classification mechanism);
//! * [`vsys`] — the privilege broker between slices and the root context;
//! * [`umtscmd`] — the `umts` vsys command vocabulary plus the exact
//!   routing/firewall recipe its back-end installs;
//! * [`node`] — the node itself: interfaces, policy routing, netfilter,
//!   sockets, and the UMTS attachment lifecycle.
//!
//! ## Example
//!
//! ```
//! use umtslab_planetlab::slice::SliceTable;
//!
//! // Slices get distinct VNET+ packet marks, the isolation primitive.
//! let mut slices = SliceTable::new();
//! let a = slices.create("umts_exp");
//! let b = slices.create("other_exp");
//! assert_ne!(slices.mark_of(a), slices.mark_of(b));
//! assert_eq!(slices.by_name("umts_exp").unwrap().id, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod slice;
pub mod umtscmd;
pub mod vsys;

pub use node::{Delivery, EgressAction, Node, NodePoll, ETH0, LO, PPP0};
pub use slice::{Slice, SliceId, SliceTable};
pub use umtscmd::{UmtsCmdError, UmtsPhase, UmtsRequest, UmtsResponse, UmtsStatus, UMTS_TABLE};
pub use vsys::{VsysChannel, VsysError};
