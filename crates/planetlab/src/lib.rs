//! # umtslab-planetlab — the PlanetLab node substrate
//!
//! Models the pieces of the PlanetLab architecture the paper's
//! integration touches:
//!
//! * [`mod@slice`] — slices (VServer contexts) and the per-slice packet mark
//!   (the VNET+ classification mechanism);
//! * [`vsys`] — the privilege broker between slices and the root context;
//! * [`umtscmd`] — the `umts` vsys command vocabulary plus the exact
//!   routing/firewall recipe its back-end installs;
//! * [`node`] — the node itself: interfaces, policy routing, netfilter,
//!   sockets, and the UMTS attachment lifecycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node;
pub mod slice;
pub mod umtscmd;
pub mod vsys;

pub use node::{Delivery, EgressAction, Node, NodePoll, ETH0, LO, PPP0};
pub use slice::{Slice, SliceId, SliceTable};
pub use umtscmd::{
    UmtsCmdError, UmtsPhase, UmtsRequest, UmtsResponse, UmtsStatus, UMTS_TABLE,
};
pub use vsys::{VsysChannel, VsysError};
