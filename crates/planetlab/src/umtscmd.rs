//! The `umts` vsys command: request/response vocabulary and rule recipes.
//!
//! The paper exposes UMTS control to slice users through a special `umts`
//! command with five verbs — `start`, `stop`, `status`, `add destination`,
//! `del destination` — whose front-end runs in the slice and whose
//! back-end runs with root privileges via vsys. This module defines the
//! typed protocol spoken over that channel plus the exact routing/firewall
//! state the back-end installs, kept as pure functions so the recipe
//! itself is unit-testable.

use umtslab_net::iface::IfaceId;
use umtslab_net::packet::Mark;
use umtslab_net::route::{PolicyRule, RuleSelector, TableId};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_umts::attachment::DialError;
use umtslab_umts::rrc::RrcState;

use crate::slice::SliceId;

/// The dedicated routing table holding only the `ppp0` default route.
pub const UMTS_TABLE: TableId = TableId(100);
/// Priority of the per-destination `fwmark + dst` rules.
pub const RULE_PRIO_DEST: u32 = 1_000;
/// Priority of the `fwmark + src == ppp0 addr` rule.
pub const RULE_PRIO_SRC: u32 = 1_001;
/// Comment tag on the isolation drop rule (used for removal).
pub const ISOLATION_COMMENT: &str = "umts-isolation";

/// Requests a slice can submit through the `umts` vsys script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UmtsRequest {
    /// Lock the interface and bring the connection up.
    Start,
    /// Tear the connection down and unlock.
    Stop,
    /// Report connection state.
    Status,
    /// Route this destination over UMTS (for the owning slice).
    AddDestination(Ipv4Cidr),
    /// Stop routing this destination over UMTS.
    DelDestination(Ipv4Cidr),
}

/// Back-end responses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UmtsResponse {
    /// The request was accepted (asynchronous completion where relevant).
    Accepted,
    /// A status report.
    Status(UmtsStatus),
    /// The request was refused.
    Error(UmtsCmdError),
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UmtsCmdError {
    /// The node has no 3G card.
    NoDevice,
    /// Another slice holds the interface lock.
    LockedByOtherSlice(SliceId),
    /// Only the lock owner may perform this operation.
    NotOwner,
    /// `start` while already started.
    AlreadyStarted,
    /// `stop`/`add`/`del` while not started.
    NotStarted,
    /// The destination is already registered.
    DuplicateDestination,
    /// The destination is not registered.
    UnknownDestination,
    /// The last connection attempt failed.
    DialFailed(DialError),
}

/// Connection phase as reported by `status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UmtsPhase {
    /// No connection, no lock.
    Down,
    /// Dialing / negotiating.
    Starting,
    /// Connected.
    Up,
    /// Tearing down.
    Stopping,
}

/// The `status` report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UmtsStatus {
    /// Connection phase.
    pub phase: UmtsPhase,
    /// Lock owner, if any.
    pub owner: Option<SliceId>,
    /// Address configured on `ppp0`, once up.
    pub local_addr: Option<Ipv4Address>,
    /// Operator name.
    pub operator: String,
    /// RRC state, once up.
    pub rrc: Option<RrcState>,
    /// Registered destinations.
    pub destinations: Vec<Ipv4Cidr>,
}

/// Parses the textual `umts` command syntax the paper exposes to slice
/// users: `start`, `stop`, `status`, `add destination <addr[/len]>`,
/// `del destination <addr[/len]>`.
///
/// ```
/// use umtslab_planetlab::umtscmd::{parse_command, UmtsRequest};
///
/// assert_eq!(parse_command("start"), Ok(UmtsRequest::Start));
/// let req = parse_command("add destination 138.96.20.10").unwrap();
/// assert!(matches!(req, UmtsRequest::AddDestination(_)));
/// assert!(parse_command("frobnicate").is_err());
/// ```
pub fn parse_command(line: &str) -> Result<UmtsRequest, ParseCommandError> {
    let mut words = line.split_whitespace();
    let verb = words.next().ok_or(ParseCommandError::Empty)?;
    let rest: Vec<&str> = words.collect();
    match (verb, rest.as_slice()) {
        ("start", []) => Ok(UmtsRequest::Start),
        ("stop", []) => Ok(UmtsRequest::Stop),
        ("status", []) => Ok(UmtsRequest::Status),
        ("add" | "del", ["destination", dest]) => {
            let cidr = if dest.contains('/') {
                dest.parse::<Ipv4Cidr>().map_err(|_| ParseCommandError::BadDestination)?
            } else {
                Ipv4Cidr::host(
                    dest.parse::<Ipv4Address>().map_err(|_| ParseCommandError::BadDestination)?,
                )
            };
            if verb == "add" {
                Ok(UmtsRequest::AddDestination(cidr))
            } else {
                Ok(UmtsRequest::DelDestination(cidr))
            }
        }
        ("add" | "del", _) => Err(ParseCommandError::BadDestination),
        _ => Err(ParseCommandError::UnknownVerb),
    }
}

/// Errors from [`parse_command`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseCommandError {
    /// The line was empty.
    Empty,
    /// The verb is not one of the five commands.
    UnknownVerb,
    /// `add`/`del` without a parsable destination.
    BadDestination,
}

impl core::fmt::Display for ParseCommandError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseCommandError::Empty => write!(f, "empty command"),
            ParseCommandError::UnknownVerb => {
                write!(f, "usage: umts start|stop|status|add destination <a>|del destination <a>")
            }
            ParseCommandError::BadDestination => write!(f, "invalid destination"),
        }
    }
}

impl std::error::Error for ParseCommandError {}

/// Renders a status report the way the `umts status` front-end prints it.
pub fn render_status(status: &UmtsStatus) -> String {
    use core::fmt::Write;
    let mut out = String::new();
    let phase = match status.phase {
        UmtsPhase::Down => "down",
        UmtsPhase::Starting => "starting",
        UmtsPhase::Up => "up",
        UmtsPhase::Stopping => "stopping",
    };
    let _ = writeln!(out, "umts: {phase}");
    if let Some(owner) = status.owner {
        let _ = writeln!(out, "  locked by: {owner}");
    }
    if let Some(addr) = status.local_addr {
        let _ = writeln!(out, "  ppp0: {addr}");
    }
    if !status.operator.is_empty() {
        let _ = writeln!(out, "  operator: {}", status.operator);
    }
    if let Some(rrc) = status.rrc {
        let _ = writeln!(out, "  rrc: {rrc:?}");
    }
    for d in &status.destinations {
        let _ = writeln!(out, "  destination: {d}");
    }
    out
}

/// Builds the policy rule steering `mark`ed packets for `dest` into the
/// UMTS table (paper rule (i)).
pub fn destination_rule(mark: Mark, dest: Ipv4Cidr) -> PolicyRule {
    PolicyRule {
        priority: RULE_PRIO_DEST,
        selector: RuleSelector { fwmark: Some(mark), dst: Some(dest), src: None },
        table: UMTS_TABLE,
    }
}

/// Builds the policy rule steering packets sourced from the `ppp0`
/// address into the UMTS table (paper rule (ii)).
///
/// The selector deliberately matches on the source address alone —
/// `ip rule add from <ppp0 addr> lookup umts` — with no fwmark
/// conjunction. A foreign slice that binds to the UMTS address is steered
/// onto `ppp0` like everything else sourced from it and is then discarded
/// by the egress [`isolation_rule`], which is how the paper handles that
/// special case. (An earlier revision required the owner's mark here,
/// which quietly detoured such packets out `eth0` carrying the UMTS
/// source address — a leak the `umtslab-verify` static analyzer flags as
/// a martian wired egress.)
pub fn source_rule(ppp_addr: Ipv4Address) -> PolicyRule {
    PolicyRule {
        priority: RULE_PRIO_SRC,
        selector: RuleSelector { fwmark: None, src: Some(Ipv4Cidr::host(ppp_addr)), dst: None },
        table: UMTS_TABLE,
    }
}

/// Builds the isolation drop rule: everything leaving `ppp0` that does not
/// carry the owner's mark is discarded.
pub fn isolation_rule(ppp0: IfaceId, owner_mark: Mark) -> umtslab_net::filter::FilterRule {
    umtslab_net::filter::FilterRule::new(
        umtslab_net::filter::FilterMatch {
            out_dev: Some(ppp0),
            not_mark: Some(owner_mark),
            ..umtslab_net::filter::FilterMatch::any()
        },
        umtslab_net::filter::Target::Drop,
        ISOLATION_COMMENT,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::filter::{Chain, FilterVerdict, HookContext};
    use umtslab_net::packet::{Packet, PacketId};
    use umtslab_net::route::{FlowKey, Rib, Route};
    use umtslab_net::wire::Endpoint;
    use umtslab_sim::time::Instant;

    const ETH0: IfaceId = IfaceId(1);
    const PPP0: IfaceId = IfaceId(2);

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    #[test]
    fn parse_command_accepts_the_paper_syntax() {
        assert_eq!(parse_command("start"), Ok(UmtsRequest::Start));
        assert_eq!(parse_command("  stop  "), Ok(UmtsRequest::Stop));
        assert_eq!(parse_command("status"), Ok(UmtsRequest::Status));
        assert_eq!(
            parse_command("add destination 138.96.20.10"),
            Ok(UmtsRequest::AddDestination(Ipv4Cidr::host(a("138.96.20.10"))))
        );
        assert_eq!(
            parse_command("add destination 138.96.0.0/16"),
            Ok(UmtsRequest::AddDestination("138.96.0.0/16".parse().unwrap()))
        );
        assert_eq!(
            parse_command("del destination 138.96.20.10"),
            Ok(UmtsRequest::DelDestination(Ipv4Cidr::host(a("138.96.20.10"))))
        );
    }

    #[test]
    fn parse_command_rejects_garbage() {
        assert_eq!(parse_command(""), Err(ParseCommandError::Empty));
        assert_eq!(parse_command("restart"), Err(ParseCommandError::UnknownVerb));
        assert_eq!(parse_command("start now"), Err(ParseCommandError::UnknownVerb));
        assert_eq!(parse_command("add destination"), Err(ParseCommandError::BadDestination));
        assert_eq!(
            parse_command("add destination not-an-ip"),
            Err(ParseCommandError::BadDestination)
        );
        assert_eq!(parse_command("add target 1.2.3.4"), Err(ParseCommandError::BadDestination));
    }

    #[test]
    fn render_status_is_human_readable() {
        let st = UmtsStatus {
            phase: UmtsPhase::Up,
            owner: Some(SliceId(1000)),
            local_addr: Some(a("10.64.128.2")),
            operator: "IT Mobile".into(),
            rrc: Some(RrcState::CellDch { upgraded: false }),
            destinations: vec!["138.96.0.0/16".parse().unwrap()],
        };
        let text = render_status(&st);
        assert!(text.contains("umts: up"));
        assert!(text.contains("ppp0: 10.64.128.2"));
        assert!(text.contains("destination: 138.96.0.0/16"));
        let empty = render_status(&UmtsStatus {
            phase: UmtsPhase::Down,
            owner: None,
            local_addr: None,
            operator: String::new(),
            rrc: None,
            destinations: vec![],
        });
        assert_eq!(empty.lines().count(), 1);
    }

    #[test]
    fn destination_rule_matches_only_marked_traffic_to_dest() {
        let mark = Mark(1000);
        let dest: Ipv4Cidr = "138.96.0.0/16".parse().unwrap();
        let rule = destination_rule(mark, dest);
        assert!(rule.selector.matches(&FlowKey {
            src: a("143.225.229.5"),
            dst: a("138.96.20.1"),
            mark,
        }));
        assert!(!rule.selector.matches(&FlowKey {
            src: a("143.225.229.5"),
            dst: a("138.96.20.1"),
            mark: Mark(1001),
        }));
        assert!(!rule.selector.matches(&FlowKey {
            src: a("143.225.229.5"),
            dst: a("8.8.8.8"),
            mark,
        }));
    }

    #[test]
    fn source_rule_matches_ppp_sourced_traffic_regardless_of_mark() {
        let mark = Mark(1000);
        let rule = source_rule(a("10.64.128.2"));
        assert!(rule.selector.matches(&FlowKey { src: a("10.64.128.2"), dst: a("8.8.8.8"), mark }));
        // A foreign slice bound to the ppp0 address is steered to ppp0 too
        // (the egress filter, not the routing rule, is what drops it).
        assert!(rule.selector.matches(&FlowKey {
            src: a("10.64.128.2"),
            dst: a("8.8.8.8"),
            mark: Mark(1001),
        }));
        assert!(!rule.selector.matches(&FlowKey {
            src: a("143.225.229.5"),
            dst: a("8.8.8.8"),
            mark,
        }));
    }

    #[test]
    fn full_recipe_reproduces_paper_routing() {
        // Install the complete state the back-end builds on connect, then
        // check every routing decision the paper describes.
        let mark = Mark(1000);
        let dest: Ipv4Cidr = "138.96.0.0/16".parse().unwrap();
        let ppp_addr = a("10.64.128.2");
        let mut rib = Rib::new();
        rib.table_mut(TableId::MAIN).add(Route::default_via(a("143.225.229.1"), ETH0));
        rib.table_mut(UMTS_TABLE).add(Route::default_dev(PPP0));
        rib.add_rule(destination_rule(mark, dest));
        rib.add_rule(source_rule(ppp_addr));

        // UMTS slice to the registered destination: ppp0.
        let d =
            rib.resolve(&FlowKey { src: a("143.225.229.5"), dst: a("138.96.20.1"), mark }).unwrap();
        assert_eq!(d.dev, PPP0);
        // UMTS slice to an unregistered destination: eth0 (default route).
        let d = rib.resolve(&FlowKey { src: a("143.225.229.5"), dst: a("8.8.8.8"), mark }).unwrap();
        assert_eq!(d.dev, ETH0);
        // UMTS slice bound to the ppp0 address: ppp0 regardless of dest.
        let d = rib.resolve(&FlowKey { src: ppp_addr, dst: a("8.8.8.8"), mark }).unwrap();
        assert_eq!(d.dev, PPP0);
        // A foreign slice bound to the ppp0 address: also steered to ppp0,
        // where the egress isolation rule discards it.
        let d =
            rib.resolve(&FlowKey { src: ppp_addr, dst: a("8.8.8.8"), mark: Mark(1001) }).unwrap();
        assert_eq!(d.dev, PPP0);
        // Another slice to the registered destination: eth0.
        let d = rib
            .resolve(&FlowKey { src: a("143.225.229.5"), dst: a("138.96.20.1"), mark: Mark(1001) })
            .unwrap();
        assert_eq!(d.dev, ETH0);
    }

    #[test]
    fn isolation_rule_drops_foreign_ppp0_egress() {
        let mark = Mark(1000);
        let mut chain = Chain::new("egress");
        chain.append(isolation_rule(PPP0, mark));
        let ctx = HookContext { in_dev: None, out_dev: Some(PPP0) };

        let mut own = Packet::udp(
            PacketId(0),
            Endpoint::new(a("10.64.128.2"), 1),
            Endpoint::new(a("8.8.8.8"), 2),
            vec![],
            Instant::ZERO,
        );
        own.mark = mark;
        assert_eq!(chain.evaluate(&mut own, &ctx), FilterVerdict::Accept);

        let mut foreign = own.clone();
        foreign.mark = Mark(1001);
        assert_eq!(chain.evaluate(&mut foreign, &ctx), FilterVerdict::Drop);

        // The same foreign packet out eth0 is untouched.
        let eth_ctx = HookContext { in_dev: None, out_dev: Some(ETH0) };
        assert_eq!(chain.evaluate(&mut foreign, &eth_ctx), FilterVerdict::Accept);

        // Removal by comment cleans up.
        assert_eq!(chain.remove_by_comment(ISOLATION_COMMENT), 1);
        assert!(chain.rules().is_empty());
    }
}
