//! vsys: the privilege broker between slices and the root context.
//!
//! PlanetLab slices cannot run privileged commands; `vsys` bridges the gap
//! with a pair of FIFO pipes per (slice, script): the slice writes a
//! request into the front-end pipe, a root-context back-end process reads
//! it, acts with full privileges, and writes the result back. Access is
//! controlled by an ACL of slices allowed to invoke each script.
//!
//! [`VsysChannel`] reproduces that structure generically: typed requests
//! and responses, per-slice queues, and an ACL. The UMTS back-end consumes
//! it in [`crate::node`].

use std::collections::{BTreeMap, VecDeque};

use crate::slice::SliceId;

/// Error submitting a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VsysError {
    /// The slice is not in the script's ACL.
    NotAuthorized,
}

/// A typed vsys script endpoint: front-end pipes on the slice side,
/// back-end queue in the root context.
#[derive(Debug)]
pub struct VsysChannel<Req, Resp> {
    /// Script name (e.g. `umts`), for diagnostics.
    pub script: String,
    acl: Vec<SliceId>,
    /// Requests awaiting the back-end, in arrival order.
    inbound: VecDeque<(SliceId, Req)>,
    /// Responses awaiting each slice's front-end. Ordered map so any
    /// cross-slice drain walks slices in id order, not hash order.
    outbound: BTreeMap<SliceId, VecDeque<Resp>>,
}

impl<Req, Resp> VsysChannel<Req, Resp> {
    /// Creates a channel with an empty ACL (nobody may call it yet).
    pub fn new(script: impl Into<String>) -> Self {
        VsysChannel {
            script: script.into(),
            acl: Vec::new(),
            inbound: VecDeque::new(),
            outbound: BTreeMap::new(),
        }
    }

    /// Grants a slice access to the script.
    pub fn grant(&mut self, slice: SliceId) {
        if !self.acl.contains(&slice) {
            self.acl.push(slice);
        }
    }

    /// Revokes a slice's access.
    pub fn revoke(&mut self, slice: SliceId) {
        self.acl.retain(|&s| s != slice);
    }

    /// Whether a slice may call the script.
    pub fn is_authorized(&self, slice: SliceId) -> bool {
        self.acl.contains(&slice)
    }

    /// The ACL: every slice granted access, in grant order (read-only).
    pub fn granted(&self) -> &[SliceId] {
        &self.acl
    }

    /// Front-end: a slice submits a request.
    pub fn submit(&mut self, slice: SliceId, request: Req) -> Result<(), VsysError> {
        if !self.is_authorized(slice) {
            return Err(VsysError::NotAuthorized);
        }
        self.inbound.push_back((slice, request));
        Ok(())
    }

    /// Back-end: takes the next pending request.
    pub fn backend_next(&mut self) -> Option<(SliceId, Req)> {
        self.inbound.pop_front()
    }

    /// Back-end: queues a response for a slice's front-end.
    pub fn backend_reply(&mut self, slice: SliceId, response: Resp) {
        self.outbound.entry(slice).or_default().push_back(response);
    }

    /// Front-end: a slice collects its pending responses.
    pub fn collect(&mut self, slice: SliceId) -> Vec<Resp> {
        self.outbound.get_mut(&slice).map(|q| q.drain(..).collect()).unwrap_or_default()
    }

    /// Pending back-end work.
    pub fn pending(&self) -> usize {
        self.inbound.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel() -> VsysChannel<&'static str, String> {
        VsysChannel::new("umts")
    }

    #[test]
    fn unauthorized_slice_is_rejected() {
        let mut ch = channel();
        let s = SliceId(1000);
        assert_eq!(ch.submit(s, "start"), Err(VsysError::NotAuthorized));
        assert_eq!(ch.pending(), 0);
    }

    #[test]
    fn granted_slice_round_trips() {
        let mut ch = channel();
        let s = SliceId(1000);
        ch.grant(s);
        ch.submit(s, "start").unwrap();
        let (who, what) = ch.backend_next().unwrap();
        assert_eq!((who, what), (s, "start"));
        ch.backend_reply(s, "ok".to_string());
        assert_eq!(ch.collect(s), vec!["ok".to_string()]);
        // Responses are drained.
        assert!(ch.collect(s).is_empty());
    }

    #[test]
    fn revoke_closes_access() {
        let mut ch = channel();
        let s = SliceId(1000);
        ch.grant(s);
        ch.revoke(s);
        assert!(!ch.is_authorized(s));
        assert_eq!(ch.submit(s, "start"), Err(VsysError::NotAuthorized));
    }

    #[test]
    fn requests_are_fifo_across_slices() {
        let mut ch = channel();
        let a = SliceId(1);
        let b = SliceId(2);
        ch.grant(a);
        ch.grant(b);
        ch.submit(a, "one").unwrap();
        ch.submit(b, "two").unwrap();
        ch.submit(a, "three").unwrap();
        assert_eq!(ch.backend_next().unwrap(), (a, "one"));
        assert_eq!(ch.backend_next().unwrap(), (b, "two"));
        assert_eq!(ch.backend_next().unwrap(), (a, "three"));
        assert!(ch.backend_next().is_none());
    }

    #[test]
    fn responses_are_per_slice() {
        let mut ch = channel();
        let a = SliceId(1);
        let b = SliceId(2);
        ch.grant(a);
        ch.grant(b);
        ch.backend_reply(a, "for-a".to_string());
        ch.backend_reply(b, "for-b".to_string());
        assert_eq!(ch.collect(a), vec!["for-a".to_string()]);
        assert_eq!(ch.collect(b), vec!["for-b".to_string()]);
    }

    #[test]
    fn double_grant_is_idempotent() {
        let mut ch = channel();
        let s = SliceId(1);
        ch.grant(s);
        ch.grant(s);
        ch.revoke(s);
        assert!(!ch.is_authorized(s));
    }
}
