//! Fixture-corpus integration tests.
//!
//! The corpus under `tests/fixtures/` mirrors the workspace layout
//! (`crates/<name>/src/**/*.rs`), so [`scan_root`] applies exactly the
//! same crate scoping and boundary rules as on the real tree. Offending
//! lines carry `//~ EXPECT <rule>` markers — trailing markers name their
//! own line, standalone marker comments name the next code line — and the
//! scan must report exactly the marked (file, line, rule) triples.

use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

use umtslab_lint::engine::scan_root;
use umtslab_lint::report::render_json;
use umtslab_lint::Rule;

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// Sorted recursive walk, mirroring the engine's deterministic order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir).unwrap().map(|e| e.unwrap().path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

type Key = (String, usize, String);

/// Collects every `//~ EXPECT <rule>` marker in the corpus.
fn expectations() -> BTreeSet<Key> {
    let root = fixtures_root();
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    let mut out = BTreeSet::new();
    for path in files {
        let rel = path
            .strip_prefix(&root)
            .unwrap()
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let text = fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            // Doc comments may *mention* the marker syntax (as the corpus
            // headers do) without asserting anything — same carve-out the
            // pragma parser makes for `lint:allow`.
            let trimmed = line.trim_start();
            if trimmed.starts_with("//!") || trimmed.starts_with("///") {
                continue;
            }
            let Some(pos) = line.find("//~ EXPECT ") else {
                continue;
            };
            let rule = line[pos + "//~ EXPECT ".len()..]
                .split_whitespace()
                .next()
                .expect("marker names a rule")
                .to_string();
            assert!(Rule::parse(&rule).is_some(), "{rel}:{}: unknown rule {rule}", i + 1);
            let standalone = line.trim_start().starts_with("//~");
            let target = if standalone {
                // The next line carrying code (skipping further markers
                // and comments), as 1-based line number.
                (i + 1..lines.len())
                    .find(|&j| {
                        let t = lines[j].trim();
                        !t.is_empty() && !t.starts_with("//")
                    })
                    .expect("standalone marker precedes a code line")
                    + 1
            } else {
                i + 1
            };
            out.insert((rel.clone(), target, rule));
        }
    }
    out
}

#[test]
fn corpus_findings_match_expectations_exactly() {
    let report = scan_root(&fixtures_root()).unwrap();
    let got: BTreeSet<Key> =
        report.findings.iter().map(|f| (f.file.clone(), f.line, f.rule.id().to_string())).collect();
    let want = expectations();
    assert!(!want.is_empty(), "corpus must carry EXPECT markers");
    let missing: Vec<&Key> = want.difference(&got).collect();
    let unexpected: Vec<&Key> = got.difference(&want).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "expected-but-missing findings: {missing:?}\nunexpected findings: {unexpected:?}"
    );
}

#[test]
fn corpus_is_dirty_so_deny_mode_fails_on_it() {
    // CI runs `umtslab-lint --root crates/lint/tests/fixtures --deny` and
    // requires a nonzero exit; that hinges on the corpus never being
    // clean.
    let report = scan_root(&fixtures_root()).unwrap();
    assert!(!report.is_clean());
    // Every lintable rule is represented among the findings.
    for rule in [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::P1, Rule::P2] {
        assert!(
            report.findings.iter().any(|f| f.rule == rule),
            "corpus exercises no {rule} finding"
        );
    }
}

#[test]
fn pragma_suppressions_are_recorded_with_their_justifications() {
    let report = scan_root(&fixtures_root()).unwrap();
    let sups: Vec<_> =
        report.suppressions.iter().filter(|s| s.file == "crates/core/src/pragmas.rs").collect();
    // The trailing pragma, the standalone pragma, and the unjustified one
    // (suppression still applies; rule P1 flags the missing reason).
    assert_eq!(sups.len(), 3, "suppressions: {sups:?}");
    assert!(sups.iter().all(|s| s.rule == Rule::D1));
    assert!(sups.iter().any(|s| s.justification.contains("lookup-only table")));
    assert!(sups.iter().any(|s| s.justification.contains("membership probes only")));
    assert!(sups.iter().any(|s| s.justification.is_empty()));
}

#[test]
fn scan_and_json_are_byte_deterministic() {
    let a = render_json(&scan_root(&fixtures_root()).unwrap());
    let b = render_json(&scan_root(&fixtures_root()).unwrap());
    assert_eq!(a, b, "two scans of the same tree must render identically");
    assert!(a.contains("\"tool\": \"umtslab-lint\""));
}
