//! D1 fixtures: hash collections in a determinism-scoped crate.
//!
//! Each offending line carries a `//~ EXPECT <rule>` marker; the fixture
//! harness asserts the scan reports exactly the marked (file, line, rule)
//! triples — no more, no less.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Positive: a hash map declared in sim-scoped code.
pub struct RouteCache {
    routes: HashMap<u32, u32>, //~ EXPECT D1
    dirty: HashSet<u32>,       //~ EXPECT D1
}

/// Negative: ordered collections are the sanctioned alternative.
pub struct OrderedRoutes {
    routes: BTreeMap<u32, u32>,
}

/// Negative: the word only appears in a string and a comment.
pub fn describe() -> &'static str {
    // A HashMap mentioned in a comment is not a finding.
    "uses no HashMap at runtime"
}

/// Negative: identifier *containing* the token is not the token.
pub struct HashMapLike {
    inner: u32,
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn negative_test_code_is_exempt() {
        // Hash order doesn't leak into simulation results from tests.
        let mut m: HashMap<u8, u8> = HashMap::new();
        m.insert(1, 2);
        assert_eq!(m[&1], 2);
    }
}
