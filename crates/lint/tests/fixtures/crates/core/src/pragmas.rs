//! Pragma fixtures: suppression, the P1 justification rule, and the P2
//! unused-pragma rule.

use std::collections::HashMap;

/// Suppressed by a trailing pragma with a justification: no finding, one
/// recorded suppression.
pub struct JustifiedTrailing {
    table: HashMap<u32, u32>, // lint:allow(D1) fixture: lookup-only table, never iterated
}

/// Suppressed by a standalone pragma targeting the next code line.
pub struct JustifiedStandalone {
    // lint:allow(D1) fixture: membership probes only
    probes: HashMap<u32, u32>,
}

/// A pragma with no justification still suppresses, but is itself a
/// finding: the report must say *why* every exception exists.
pub struct Unjustified {
    //~ EXPECT P1
    table: HashMap<u32, u32>, // lint:allow(D1)
}

/// A pragma that suppresses nothing is stale and must go.
//~ EXPECT P2
pub struct Stale; // lint:allow(D1) fixture: nothing to suppress here

/// A pragma for the wrong rule leaves the real finding standing and is
/// itself unused.
pub struct WrongRule {
    //~ EXPECT P2
    //~ EXPECT D1
    table: HashMap<u32, u32>, // lint:allow(D2) fixture: wrong rule id
}
