//! D4 fixtures: raw integer time quantities outside the time newtypes.

/// Positive: raw-micros struct fields.
pub struct Accounting {
    pub up_micros: u64, //~ EXPECT D4
    /// Negative: typed time is the sanctioned representation.
    pub settle: Duration,
}

/// Positive: raw-unit locals and parameters.
//~ EXPECT D4
pub fn probe(timeout_ms: Option<u32>) -> u64 {
    let idle_ms = 5; //~ EXPECT D4
    idle_ms + u64::from(timeout_ms.unwrap_or(0))
}

/// Negative: reading a raw field is not declaring one, and `_secs`
/// identifiers are deliberately out of scope (they are usually f64
/// seconds, not integer ticks).
pub fn fold(report: &Accounting) -> u64 {
    let mut total = 0;
    total += report.up_micros;
    let wait_secs = 3;
    total + wait_secs
}
