//! Shard-module fixtures: the sharded core's two temptations — hashed
//! lookup tables for cross-shard routing (D1) and raw-integer window
//! arithmetic (D4) — plus the sanctioned, pragma-justified exceptions.

use std::collections::{BTreeMap, HashMap, HashSet};

/// Positive: a hash-keyed route table in the cross-shard handoff path.
/// Iteration order would decide merge order — exactly the bug the
/// canonical `(at, origin, seq)` key exists to rule out.
pub struct ShardRoutes {
    eth: HashMap<u32, u32>,    //~ EXPECT D1
    pending: HashSet<u32>,     //~ EXPECT D1
}

/// Positive: raw-micros window bookkeeping instead of typed instants.
pub struct WindowClock {
    pub barrier_micros: u64, //~ EXPECT D4
}

/// Positive: raw-unit lookahead parameters and locals.
//~ EXPECT D4
pub fn next_window(horizon_ms: u64) -> u64 {
    let lookahead_micros = 6_000; //~ EXPECT D4
    horizon_ms * 1_000 + lookahead_micros
}

/// Negative: ordered lanes are the sanctioned merge structure — a
/// `BTreeMap` keyed by origin node iterates in global-index order no
/// matter how the shards were laid out.
pub struct MergeLanes {
    lanes: BTreeMap<u32, u64>,
}

/// Negative: a justified pragma for a diagnostics-only table that never
/// feeds the event order.
pub struct ShardDiagnostics {
    // lint:allow(D1) fixture: drop-count scratch map, rendered sorted
    drops: HashMap<u32, u64>,
}

/// Negative: a justified pragma for a wire-schema field — the exported
/// JSON speaks raw integers by design.
pub struct ShardExport {
    pub wall_micros: u64, // lint:allow(D4) fixture: JSON wire field of the shard report
}

/// Negative: mentioning HashMap or `window_micros` in comments and
/// strings is not a finding.
pub fn describe() -> &'static str {
    // The mailbox replaced an early HashMap sketch; window_micros never shipped.
    "shards merge handoffs in (at, origin, seq) order"
}
