//! D3 fixtures: payload materialization outside the honest boundary.

/// Positive: deep-copying a payload in forwarding-path code.
pub fn oops(packet: &Packet) -> Vec<u8> {
    let cloned = packet.payload.to_vec(); //~ EXPECT D3
    let again = Bytes::copy_from_slice(&cloned); //~ EXPECT D3
    again.as_slice().to_vec()
}

/// Negative: borrowing the payload is the zero-copy way.
pub fn fine(packet: &Packet) -> usize {
    packet.payload.as_slice().len()
}

#[cfg(test)]
mod tests {
    /// Negative: test assertions may materialize payloads freely.
    #[test]
    fn tests_may_copy() {
        let p = Packet::probe();
        assert_eq!(p.payload.to_vec().len(), 80);
    }
}
