//! Fixtures for the pack crate: D2/D4 apply, D1 does not.
//!
//! `pack` parses and replays experiment documents; it is outside the
//! simulation core, so hashed containers are fine (D1 is scoped to the
//! sim crates), but its goldens must stay byte-deterministic, so
//! wall-clock reads (D2) and raw integer time quantities (D4) are not.

/// Positive: stamping a recording with the host clock would make
/// `--record` output differ run to run.
pub fn stamp() -> u64 {
    let now = SystemTime::now(); //~ EXPECT D2
    now.elapsed().as_secs()
}

/// Positive: raw-milliseconds tolerance field.
pub struct DiffBudget {
    pub slack_ms: u64, //~ EXPECT D4
    /// Negative: typed time is the sanctioned representation.
    pub slack: Duration,
}

/// Negative: D1 is scoped to the sim crates; the pack catalog may use
/// hashed containers because nothing iterates them into output.
pub fn index(names: &[String]) -> std::collections::HashSet<&str> {
    names.iter().map(String::as_str).collect()
}

/// Negative: a justified pragma silences the rule on its line.
pub fn jitter_label() -> u64 {
    let warmup_ms = 250; // lint:allow(D4) doc example quotes the raw literal form
    warmup_ms
}
