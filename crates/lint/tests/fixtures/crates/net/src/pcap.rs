//! D3 negative fixture: this path is on the honest serialization
//! boundary, where materializing payload bytes is the module's job.

/// Writing a capture record requires the payload's bytes.
pub fn record(packet: &Packet) -> Vec<u8> {
    packet.payload.to_vec()
}
