//! D2 fixtures: wall-clock and OS-randomness tokens outside `bench`.

use std::time::Instant as WallInstant; //~ EXPECT D2

/// Positive: reading the host clock in a deterministic crate.
pub fn wall_now() -> u64 {
    let sys = SystemTime::now(); //~ EXPECT D2
    let started = WallInstant::now(); //~ EXPECT D2
    let mut rng = thread_rng(); //~ EXPECT D2
    sys.elapsed().unwrap().as_micros() as u64 + started.elapsed().as_micros() as u64 + rng.gen()
}

/// Negative: the simulated clock is the sanctioned time source.
pub fn sim_now() -> Instant {
    Instant::from_micros(0)
}

/// Negative: the token only appears inside a string literal.
pub fn describe() -> &'static str {
    "never calls Instant::now() or SystemTime"
}
