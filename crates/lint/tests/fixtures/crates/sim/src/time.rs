//! D4 negative fixture: this path is the sanctioned home of raw
//! microsecond arithmetic — the newtypes have to store *something*.

/// A microsecond-denominated duration newtype.
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// Raw arithmetic is this module's reason to exist.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        let micros = self.micros.saturating_sub(rhs.micros);
        Duration { micros }
    }
}
