//! The trace parser's float boundary, as D4 fixtures.
//!
//! Recorded traces spell segment offsets as decimal seconds
//! (`8.000000`), but the simulator is integer-only: the parser converts
//! each offset to a `Duration` (integer microseconds) and each rate to
//! an integer `rate_bps` *at the parse boundary*, and nothing downstream
//! may reintroduce raw tick counts. These fixtures pin the rule's view
//! of that boundary.

/// Positive: holding a parsed trace offset as raw integer micros is the
/// exact failure mode the boundary exists to prevent.
pub struct BadSegment {
    pub at_micros: u64, //~ EXPECT D4
    pub rate_bps: u64,
}

/// Positive: raw-milli locals while converting parsed floats.
pub fn to_offset(whole_s: u64, frac: u64) -> u64 {
    let at_ms = whole_s * 1_000 + frac; //~ EXPECT D4
    at_ms
}

/// Negative: the sanctioned shape — offsets live in `Duration` the
/// moment parsing ends, and rates are plain integers with no time
/// denomination.
pub struct GoodSegment {
    pub at: Duration,
    pub rate_bps: u64,
    pub loss_ppm: u32,
}
