//! Traffic-crate fixtures: the flow library is determinism-scoped, so
//! D1/D2/D4 all apply here exactly as in the other sim crates.

/// Positive: hashed containers are banned in flow state — iteration
/// order would leak host randomness into retransmit scheduling.
pub struct FlowState {
    sacked: HashSet<u32>, //~ EXPECT D1
    /// Negative: ordered containers are the sanctioned replacement.
    holes: BTreeSet<u32>,
}

/// Positive: flows must take simulated time as an argument, never read
/// the host clock.
pub fn now_for_rto() -> u64 {
    let t = std::time::Instant::now(); //~ EXPECT D2
    t.elapsed().as_micros() as u64
}

/// Suppressed with a justification: a lookup-only table that is never
/// iterated, so hashing cannot perturb results.
pub struct SegmentIndex {
    by_seq: HashMap<u32, usize>, // lint:allow(D1) fixture: lookup-only index, never iterated
}
