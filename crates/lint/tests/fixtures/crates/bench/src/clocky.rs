//! D2 negative fixtures: `bench` is the one crate that measures wall
//! time and may seed from the OS, so none of these lines are findings.

use std::time::Instant;

/// Wall-clock timing is this crate's whole purpose.
pub fn measure<F: FnOnce()>(f: F) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64()
}

/// OS entropy is likewise allowed here.
pub fn entropy_seed() -> u64 {
    let mut rng = thread_rng();
    rng.gen()
}
