//! D3 negative fixture: PPP framing is a boundary *directory* — every
//! file under `crates/umts/src/ppp/` may serialize payloads.

/// HDLC-style framing must see the raw bytes.
pub fn frame(packet: &Packet) -> Vec<u8> {
    let mut wire = packet.payload.to_vec();
    wire.push(0x7e);
    wire
}
