//! Source loading and sanitization.
//!
//! The rule checks in this crate are substring/token matches over source
//! lines. Matching raw text would misfire on patterns that appear inside
//! string literals or comments (including this crate's own rule tables),
//! so every file is first run through a small hand-rolled lexer that
//! blanks out comment bodies and literal contents while preserving the
//! line structure. The lexer understands line and (nested) block
//! comments, string/char/byte literals, raw strings with `#` fences, and
//! the `'lifetime`-versus-`'c'` ambiguity — enough to make the pattern
//! rules sound on this workspace without pulling in a real parser.

/// One line of a scanned source file.
#[derive(Debug, Clone)]
pub struct Line {
    /// The raw text, used for excerpts in reports.
    pub raw: String,
    /// Sanitized text: comments and literal contents replaced by spaces.
    /// Rule patterns match against this.
    pub code: String,
    /// The trailing `//` comment on this line, if any (raw text including
    /// the slashes). Pragmas and fixture expectations live here.
    pub comment: Option<String>,
    /// True if the line sits inside a `#[cfg(test)]` region (or the whole
    /// file is test code, e.g. under a `tests/` directory).
    pub is_test: bool,
}

/// A scanned source file, path-tagged and sanitized.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the scan root, with forward slashes.
    pub path: String,
    /// The crate the file belongs to (the directory name under
    /// `crates/`), or `"tests"` for workspace-level integration tests.
    pub crate_name: String,
    /// The file's lines, 0-indexed (`line number = index + 1`).
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Parses `text` into sanitized lines.
    ///
    /// `whole_file_is_test` marks every line as test code (used for files
    /// under `tests/` directories); otherwise `#[cfg(test)]` regions are
    /// detected by brace tracking over the sanitized text.
    pub fn parse(
        path: impl Into<String>,
        crate_name: impl Into<String>,
        text: &str,
        whole_file_is_test: bool,
    ) -> SourceFile {
        let mut lines = sanitize(text);
        if whole_file_is_test {
            for l in &mut lines {
                l.is_test = true;
            }
        } else {
            mark_test_regions(&mut lines);
        }
        SourceFile { path: path.into(), crate_name: crate_name.into(), lines }
    }
}

/// Lexer state, carried across lines (strings and block comments may span
/// newlines).
enum State {
    Code,
    Block(u32),
    Str { escaped: bool },
    RawStr { fence: usize },
}

/// Splits `text` into [`Line`]s with comments and literal bodies blanked.
fn sanitize(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for raw_line in text.split('\n') {
        let cs: Vec<char> = raw_line.chars().collect();
        let mut code = String::with_capacity(cs.len());
        let mut comment = None;
        let mut i = 0;
        while i < cs.len() {
            match state {
                State::Block(depth) => {
                    if cs[i] == '*' && cs.get(i + 1) == Some(&'/') {
                        state = if depth > 1 { State::Block(depth - 1) } else { State::Code };
                        code.push_str("  ");
                        i += 2;
                    } else if cs[i] == '/' && cs.get(i + 1) == Some(&'*') {
                        state = State::Block(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str { escaped } => {
                    if escaped {
                        state = State::Str { escaped: false };
                        code.push(' ');
                        i += 1;
                    } else if cs[i] == '\\' {
                        state = State::Str { escaped: true };
                        code.push(' ');
                        i += 1;
                    } else if cs[i] == '"' {
                        state = State::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr { fence } => {
                    if cs[i] == '"' && closes_raw(&cs, i, fence) {
                        state = State::Code;
                        code.push('"');
                        for _ in 0..fence {
                            code.push(' ');
                        }
                        i += 1 + fence;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Code => {
                    let c = cs[i];
                    if c == '/' && cs.get(i + 1) == Some(&'/') {
                        comment = Some(cs[i..].iter().collect::<String>());
                        break; // the rest of the line is comment
                    } else if c == '/' && cs.get(i + 1) == Some(&'*') {
                        state = State::Block(1);
                        code.push_str("  ");
                        i += 2;
                    } else if let Some(fence) = raw_str_fence(&cs, i) {
                        // r"..."/r#"..."#/br"..." — skip prefix up to the
                        // opening quote, then blank until the closing fence.
                        let quote_at = cs[i..].iter().position(|&c| c == '"').unwrap() + i;
                        for _ in i..=quote_at {
                            code.push(' ');
                        }
                        state = State::RawStr { fence };
                        i = quote_at + 1;
                    } else if c == '"' {
                        state = State::Str { escaped: false };
                        code.push('"');
                        i += 1;
                    } else if c == '\'' {
                        if let Some(len) = char_literal_len(&cs, i) {
                            for _ in 0..len {
                                code.push(' ');
                            }
                            i += len;
                        } else {
                            code.push('\''); // a lifetime tick
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(Line { raw: raw_line.to_string(), code, comment, is_test: false });
    }
    out
}

/// True if the `"` at `cs[at]` is followed by `fence` `#` characters.
fn closes_raw(cs: &[char], at: usize, fence: usize) -> bool {
    (1..=fence).all(|k| cs.get(at + k) == Some(&'#'))
}

/// If a raw string literal starts at `cs[at]` (`r"`, `r#"`, `br"`, …),
/// returns its `#`-fence length.
fn raw_str_fence(cs: &[char], at: usize) -> Option<usize> {
    // Must not be the tail of an identifier (`var` vs `r"..."`).
    if at > 0 && (cs[at - 1].is_alphanumeric() || cs[at - 1] == '_') {
        return None;
    }
    let mut j = at;
    if cs.get(j) == Some(&'b') {
        j += 1;
    }
    if cs.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut fence = 0;
    while cs.get(j) == Some(&'#') {
        fence += 1;
        j += 1;
    }
    if cs.get(j) == Some(&'"') {
        Some(fence)
    } else {
        None
    }
}

/// If a char literal starts at the `'` at `cs[at]`, returns its total
/// length in chars (including both quotes); `None` for a lifetime.
fn char_literal_len(cs: &[char], at: usize) -> Option<usize> {
    match cs.get(at + 1) {
        Some('\\') => {
            // Escaped char: scan to the closing quote.
            let mut j = at + 2;
            while j < cs.len() && cs[j] != '\'' {
                j += 1;
            }
            (j < cs.len()).then_some(j - at + 1)
        }
        Some(_) if cs.get(at + 2) == Some(&'\'') => Some(3),
        _ => None,
    }
}

/// Marks every line inside a `#[cfg(test)]`-attributed item as test code
/// by tracking brace depth over the sanitized text.
fn mark_test_regions(lines: &mut [Line]) {
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Find the opening brace of the attributed item, then its close.
        let mut depth: i64 = 0;
        let mut opened = false;
        let start = i;
        let mut end = lines.len() - 1;
        'scan: for (j, line) in lines.iter().enumerate().skip(start) {
            for c in line.code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            end = j;
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
        }
        for line in &mut lines[start..=end] {
            line.is_test = true;
        }
        i = end + 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> SourceFile {
        SourceFile::parse("x.rs", "core", text, false)
    }

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = parse("let x = \"HashMap\"; // HashMap here\nuse std::collections::HashMap;\n");
        assert!(!f.lines[0].code.contains("HashMap"), "literal body must be blanked");
        assert!(f.lines[0].comment.as_deref().unwrap().contains("HashMap here"));
        assert!(f.lines[1].code.contains("HashMap"), "real code must survive");
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let f = parse("let a = r#\"Instant::now()\"#;\nlet b = \"\\\"Instant::now()\";\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(!f.lines[1].code.contains("Instant"));
    }

    #[test]
    fn char_literals_do_not_eat_the_line() {
        let f = parse("let c = '\"'; let d: HashMap<u8, u8> = x;\n");
        assert!(f.lines[0].code.contains("HashMap"), "code after a char literal survives");
        let g = parse("fn f<'a>(x: &'a str) -> HashSet<u8> {}\n");
        assert!(g.lines[0].code.contains("HashSet"), "lifetimes are not char literals");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = parse("/* outer /* inner */ SystemTime */\nSystemTime::now();\n");
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[1].code.contains("SystemTime"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "struct A;\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nstruct B;\n";
        let f = parse(text);
        let flags: Vec<bool> = f.lines.iter().map(|l| l.is_test).collect();
        assert_eq!(&flags[..6], &[false, true, true, true, true, false]);
    }
}
