//! `umtslab-lint` — CI entry point for the determinism & zero-copy linter.
//!
//! ```text
//! umtslab-lint [--root DIR] [--json] [--deny]    scan a workspace tree
//! umtslab-lint --list-rules                      print the rule catalog
//! ```
//!
//! The scan walks `crates/*/src/**/*.rs` plus `tests/*.rs` under the root
//! (default: the current directory) and prints a human table, or one JSON
//! document with `--json`. Exit status: `0` when clean or when findings
//! are merely reported; `1` when `--deny` is set and unsuppressed
//! findings remain; `2` on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use umtslab_lint::engine::scan_root;
use umtslab_lint::report::{render_json, render_rules, render_table};

struct Options {
    root: PathBuf,
    json: bool,
    deny: bool,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts =
        Options { root: PathBuf::from("."), json: false, deny: false, list_rules: false };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root requires a directory")?;
                opts.root = PathBuf::from(dir);
            }
            "--json" => opts.json = true,
            "--deny" => opts.deny = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    Ok(opts)
}

fn print_help() {
    println!(
        "umtslab-lint: workspace determinism & zero-copy static analyzer\n\n\
         usage: umtslab-lint [--root DIR] [--json] [--deny]\n       \
         umtslab-lint --list-rules\n\n\
         --root DIR     scan this workspace-shaped tree (default: .)\n\
         --json         print the report as JSON instead of a table\n\
         --deny         exit 1 if any unsuppressed finding remains\n\
         --list-rules   print the rule catalog and exit"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("umtslab-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.list_rules {
        print!("{}", render_rules());
        return ExitCode::SUCCESS;
    }
    let report = match scan_root(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("umtslab-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if opts.json {
        print!("{}", render_json(&report));
    } else {
        print!("{}", render_table(&report));
    }
    if opts.deny && !report.is_clean() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
