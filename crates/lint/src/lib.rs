//! `umtslab-lint` — workspace-wide determinism & zero-copy static analyzer.
//!
//! The simulator's headline guarantees — byte-identical runs for a given
//! seed, and a data plane that never copies payload bytes in steady state
//! — are properties of the *source*, not just of the runs we happen to
//! test. This crate enforces them before any code executes, with
//! project-specific rules that clippy cannot express:
//!
//! * **D1** — no hash collections (`HashMap`/`HashSet`) in
//!   determinism-scoped crates: iteration order leaks into traces and
//!   metrics. Use `BTreeMap`/`BTreeSet`, or justify a provably
//!   lookup-only table with a pragma.
//! * **D2** — no wall-clock time or OS randomness outside `crates/bench`:
//!   `SystemTime`, `Instant::now()` and friends make two same-seed runs
//!   diverge.
//! * **D3** — zero-copy discipline: no materialization of `Bytes`
//!   payloads (`payload.to_vec()`, `Bytes::copy_from_slice(…)`) outside
//!   the honest PPP/pcap serialization boundary. This turns the runtime
//!   copy counter the `dataplane` bench gates on into a static guarantee.
//! * **D4** — raw time-unit hygiene: no `u64` micros/millis fields,
//!   params or bindings outside the sanctioned newtypes in
//!   `crates/sim/src/time.rs`; use `Instant`/`Duration`.
//! * **P1/P2** — pragma hygiene: every suppression must carry a written
//!   justification, and must actually suppress something.
//!
//! Findings carry a `file:line` witness, an excerpt and a fix hint, and
//! are rendered as a human table or deterministic JSON (byte-identical
//! across runs — the linter holds itself to rule D2). Suppression is via
//! an explicit pragma recorded in the report:
//!
//! ```text
//! // lint:allow(D1) lookup-only interner table; never iterated
//! ```
//!
//! The pragma suppresses matching findings on its own line (trailing
//! form) or on the next code line (standalone form). See `docs/LINT.md`
//! for the full rule catalog and the JSON schema.
//!
//! # Example
//!
//! ```
//! use umtslab_lint::{Rule, source::SourceFile, rules};
//!
//! let f = SourceFile::parse(
//!     "crates/core/src/testbed.rs",
//!     "core",
//!     "use std::collections::BTreeMap;\n",
//!     false,
//! );
//! assert!(rules::check_file(&f).is_empty(), "ordered maps are clean");
//! ```

pub mod engine;
pub mod report;
pub mod rules;
pub mod source;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash collections in determinism-scoped crates.
    D1,
    /// Wall-clock time or OS randomness outside `crates/bench`.
    D2,
    /// Payload materialization outside the serialization boundary.
    D3,
    /// Raw integer time units outside the time newtypes.
    D4,
    /// Suppression pragma without a written justification.
    P1,
    /// Suppression pragma that suppresses nothing.
    P2,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 6] = [Rule::D1, Rule::D2, Rule::D3, Rule::D4, Rule::P1, Rule::P2];

    /// The stable rule identifier used in reports and pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
        }
    }

    /// A short human name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::D1 => "hash-collection",
            Rule::D2 => "wall-clock",
            Rule::D3 => "payload-copy",
            Rule::D4 => "raw-time-units",
            Rule::P1 => "pragma-justification",
            Rule::P2 => "unused-pragma",
        }
    }

    /// One-line description for `--list-rules` and the docs.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D1 => {
                "HashMap/HashSet in a determinism-scoped crate: iteration order can leak \
                 into traces and metrics"
            }
            Rule::D2 => "wall-clock time or OS randomness outside crates/bench",
            Rule::D3 => "Bytes payload materialized outside the PPP/pcap boundary modules",
            Rule::D4 => "raw integer micros/millis outside the sim time newtypes",
            Rule::P1 => "lint:allow pragma without a written justification",
            Rule::P2 => "lint:allow pragma that suppresses no finding",
        }
    }

    /// The fix hint shown under each finding.
    pub fn hint(self) -> &'static str {
        match self {
            Rule::D1 => {
                "use BTreeMap/BTreeSet, or justify a provably lookup-only table with \
                 `// lint:allow(D1) <why>`"
            }
            Rule::D2 => {
                "thread simulated time (umtslab_sim::time) or a seeded SimRng through instead; \
                 wall-clock reporting belongs behind `// lint:allow(D2) <why>`"
            }
            Rule::D3 => {
                "share the refcounted Bytes (clone is free) or move serialization into the \
                 boundary modules; justify honest copies with `// lint:allow(D3) <why>`"
            }
            Rule::D4 => {
                "use Instant/Duration from umtslab_sim::time; convert at I/O boundaries only, \
                 with `// lint:allow(D4) <why>` where a wire format demands raw integers"
            }
            Rule::P1 => "write the reason after the closing paren: `// lint:allow(D1) <why>`",
            Rule::P2 => "remove the stale pragma (or fix its rule list / placement)",
        }
    }

    /// Parses a rule id as written in pragmas (`D1`, `d1`).
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim().to_ascii_uppercase().as_str() {
            "D1" => Some(Rule::D1),
            "D2" => Some(Rule::D2),
            "D3" => Some(Rule::D3),
            "D4" => Some(Rule::D4),
            "P1" => Some(Rule::P1),
            "P2" => Some(Rule::P2),
            _ => None,
        }
    }
}

impl core::fmt::Display for Rule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.id())
    }
}

/// One rule violation, with its witness location.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What exactly matched, in context.
    pub message: String,
    /// The raw source line, trimmed, as a witness excerpt.
    pub excerpt: String,
}

/// One applied suppression pragma, surfaced in every report.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Suppression {
    /// Path relative to the scan root.
    pub file: String,
    /// 1-based line number of the suppressed finding.
    pub line: usize,
    /// The suppressed rule.
    pub rule: Rule,
    /// The justification written in the pragma.
    pub justification: String,
}

/// The result of scanning a tree.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Applied suppressions, sorted by (file, line, rule).
    pub suppressions: Vec<Suppression>,
}

impl Report {
    /// True if no unsuppressed finding remains.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }
}
