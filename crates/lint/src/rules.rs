//! The rule checks: which patterns fire, in which crates, on which lines.
//!
//! Every check works on sanitized lines (see [`crate::source`]), so
//! patterns never match inside string literals or comments — which is
//! also what lets the linter scan its own source cleanly. The scopes are
//! deliberately project-specific: the point of this pass is to encode
//! *this* workspace's layering (which crates must be deterministic, which
//! modules are the honest serialization boundary) rather than generic
//! style.

use crate::source::{Line, SourceFile};
use crate::{Finding, Rule};

/// Crates whose code feeds simulation results: everything here must be
/// deterministic and copy-free. `bench`, `runner`, `verify` and `lint`
/// itself orchestrate or report *around* the simulation.
const SIM_CRATES: [&str; 8] =
    ["core", "ditg", "net", "planetlab", "sim", "supervisor", "traffic", "umts"];

/// The only crate allowed to read the host clock or OS entropy: it
/// measures wall-clock throughput by design.
const D2_EXEMPT_CRATES: [&str; 1] = ["bench"];

/// The honest serialization boundary: the modules that legitimately
/// materialize payload bytes (PPP framing, the serial line, pcap and wire
/// encode/decode, and the `Bytes` implementation itself).
const D3_BOUNDARY_FILES: [&str; 5] = [
    "crates/net/src/bytes.rs",
    "crates/net/src/icmp.rs",
    "crates/net/src/packet.rs",
    "crates/net/src/pcap.rs",
    "crates/net/src/wire.rs",
];

/// Boundary directories (every file under them), same meaning as
/// [`D3_BOUNDARY_FILES`].
const D3_BOUNDARY_DIRS: [&str; 2] = ["crates/umts/src/ppp/", "crates/umts/src/serial"];

/// The sanctioned home of raw microsecond arithmetic: the time newtypes.
const D4_SANCTUARY: &str = "crates/sim/src/time.rs";

/// Wall-clock / OS-randomness tokens (substring match on sanitized code).
const D2_PATTERNS: [&str; 8] = [
    "SystemTime",
    "Instant::now(",
    "std::time::Instant",
    "thread_rng",
    "from_entropy",
    "getrandom",
    "RandomState",
    "rand::random",
];

/// Payload-materialization tokens (substring match on sanitized code).
const D3_PATTERNS: [&str; 3] =
    ["payload.to_vec(", "payload.as_slice().to_vec(", "Bytes::copy_from_slice("];

/// Integer type names that make a time-suffixed declaration "raw".
const INT_TYPES: [&str; 12] =
    ["u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize"];

/// Identifier suffixes that mark a quantity as denominated in raw time
/// units. Whole-identifier forms (`micros`, `millis`) count too.
const TIME_SUFFIXES: [&str; 4] = ["_micros", "_millis", "_us", "_ms"];

/// Runs every rule over one file and returns the raw (pre-suppression)
/// findings in line order.
pub fn check_file(file: &SourceFile) -> Vec<Finding> {
    let mut out = Vec::new();
    let in_sim = SIM_CRATES.contains(&file.crate_name.as_str());
    let d2_applies = !D2_EXEMPT_CRATES.contains(&file.crate_name.as_str());
    let d3_applies = in_sim && !is_d3_boundary(&file.path);
    let d4_applies = d2_applies && file.path != D4_SANCTUARY;

    for (idx, line) in file.lines.iter().enumerate() {
        let lineno = idx + 1;
        let mut push = |rule: Rule, message: String| {
            out.push(Finding {
                file: file.path.clone(),
                line: lineno,
                rule,
                message,
                excerpt: line.raw.trim().to_string(),
            });
        };

        if in_sim && !line.is_test && !is_use_line(line) {
            for word in ["HashMap", "HashSet"] {
                if contains_word(&line.code, word) {
                    push(
                        Rule::D1,
                        format!("{word} in determinism-scoped crate `{}`", file.crate_name),
                    );
                }
            }
        }

        if d2_applies {
            for pat in D2_PATTERNS {
                if line.code.contains(pat) {
                    push(Rule::D2, format!("wall-clock/OS-randomness token `{pat}`"));
                    break;
                }
            }
        }

        if d3_applies && !line.is_test {
            for pat in D3_PATTERNS {
                if line.code.contains(pat) {
                    push(Rule::D3, format!("payload materialization `{pat})` outside boundary"));
                    break;
                }
            }
        }

        if d4_applies && !line.is_test {
            if let Some(ident) = raw_time_decl(&line.code) {
                push(Rule::D4, format!("raw integer time quantity `{ident}`"));
            }
        }
    }
    out
}

/// True if `path` belongs to the honest D3 serialization boundary.
fn is_d3_boundary(path: &str) -> bool {
    D3_BOUNDARY_FILES.contains(&path) || D3_BOUNDARY_DIRS.iter().any(|d| path.starts_with(d))
}

/// True if the line's code is an import (`use …`); D1 fires on the
/// declaration or construction site instead, so lookup-only pragmas are
/// written once, next to the semantics they justify.
fn is_use_line(line: &Line) -> bool {
    let t = line.code.trim_start();
    t.starts_with("use ") || t.starts_with("pub use ")
}

/// True if `text` contains `word` delimited by non-identifier characters.
fn contains_word(text: &str, word: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident_char(text[..at].chars().next_back().unwrap());
        let after = text[at + word.len()..].chars().next();
        let after_ok = !after.is_some_and(is_ident_char);
        if before_ok && after_ok {
            return true;
        }
        from = at + word.len();
    }
    false
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Detects a declaration of a raw integer time quantity on this line:
/// a time-suffixed identifier that is either `let`/`const`-bound or typed
/// as a bare (optionally `Option`-wrapped) integer. Returns the offending
/// identifier.
fn raw_time_decl(code: &str) -> Option<String> {
    let tokens = tokenize(code);
    for (i, tok) in tokens.iter().enumerate() {
        if !has_time_suffix(&tok.text) {
            continue;
        }
        // `let x_micros = …` / `let mut x_micros` / `const X_MS: …`
        if i > 0 {
            let prev = tokens[i - 1].text.as_str();
            if prev == "let"
                || prev == "const"
                || (prev == "mut" && i > 1 && tokens[i - 2].text == "let")
            {
                return Some(tok.text.clone());
            }
        }
        // `x_micros: u64` / `x_ms: Option<u32>` (fields and params).
        let rest = code[tok.end..].trim_start();
        if let Some(after_colon) = rest.strip_prefix(':') {
            let mut ty = after_colon.trim_start();
            if let Some(inner) = ty.strip_prefix("Option") {
                ty = inner.trim_start().strip_prefix('<').unwrap_or(ty).trim_start();
            }
            let ty_word: String = ty.chars().take_while(|&c| is_ident_char(c)).collect();
            if INT_TYPES.contains(&ty_word.as_str()) {
                return Some(tok.text.clone());
            }
        }
    }
    None
}

/// True if `ident` is denominated in raw time units by naming convention.
fn has_time_suffix(ident: &str) -> bool {
    let lower = ident.to_ascii_lowercase();
    lower == "micros" || lower == "millis" || TIME_SUFFIXES.iter().any(|s| lower.ends_with(s))
}

struct Token {
    text: String,
    end: usize,
}

/// Splits a sanitized line into identifier tokens with byte offsets.
fn tokenize(code: &str) -> Vec<Token> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut end = 0;
    for (pos, c) in code.char_indices() {
        if is_ident_char(c) {
            cur.push(c);
            end = pos + c.len_utf8();
        } else if !cur.is_empty() {
            out.push(Token { text: core::mem::take(&mut cur), end });
        }
    }
    if !cur.is_empty() {
        out.push(Token { text: cur, end });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;

    fn findings(path: &str, crate_name: &str, text: &str) -> Vec<(Rule, usize)> {
        let f = SourceFile::parse(path, crate_name, text, false);
        check_file(&f).into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn d1_fires_in_sim_crates_only() {
        let text = "struct S { m: HashMap<u8, u8> }\n";
        assert_eq!(findings("crates/core/src/x.rs", "core", text), vec![(Rule::D1, 1)]);
        assert_eq!(findings("crates/runner/src/x.rs", "runner", text), vec![]);
    }

    #[test]
    fn d1_skips_imports_and_tests_and_substrings() {
        let text = "use std::collections::HashMap;\nstruct HashMapLike;\n";
        assert_eq!(findings("crates/net/src/x.rs", "net", text), vec![]);
        let test_text = "#[cfg(test)]\nmod tests {\n  fn f() { let s = HashSet::new(); }\n}\n";
        assert_eq!(findings("crates/net/src/x.rs", "net", test_text), vec![]);
    }

    #[test]
    fn d2_exempts_bench_and_catches_aliases() {
        let text = "let t = WallInstant::now();\n";
        assert_eq!(findings("crates/runner/src/x.rs", "runner", text), vec![(Rule::D2, 1)]);
        assert_eq!(findings("crates/bench/src/x.rs", "bench", text), vec![]);
    }

    #[test]
    fn d3_respects_the_boundary() {
        let text = "let v = packet.payload.to_vec();\n";
        assert_eq!(findings("crates/core/src/x.rs", "core", text), vec![(Rule::D3, 1)]);
        assert_eq!(findings("crates/net/src/pcap.rs", "net", text), vec![]);
        assert_eq!(findings("crates/umts/src/ppp/frame.rs", "umts", text), vec![]);
    }

    #[test]
    fn d4_catches_raw_declarations_but_not_typed_time() {
        assert_eq!(
            findings("crates/core/src/x.rs", "core", "pub up_micros: u64,\n"),
            vec![(Rule::D4, 1)]
        );
        assert_eq!(
            findings("crates/core/src/x.rs", "core", "let idle_ms = 5;\n"),
            vec![(Rule::D4, 1)]
        );
        assert_eq!(
            findings("crates/core/src/x.rs", "core", "fn f(timeout_ms: Option<u32>) {}\n"),
            vec![(Rule::D4, 1)]
        );
        assert_eq!(findings("crates/core/src/x.rs", "core", "pub up: Duration,\n"), vec![]);
        assert_eq!(findings("crates/sim/src/time.rs", "sim", "micros: u64,\n"), vec![]);
        // Reading a field is not declaring one.
        assert_eq!(findings("crates/core/src/x.rs", "core", "x += m.up_micros;\n"), vec![]);
    }
}
