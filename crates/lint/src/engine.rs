//! The scan driver: file discovery, pragma parsing and suppression.
//!
//! A scan root is laid out like the workspace: rule scoping expects
//! `crates/<name>/src/**/*.rs` plus workspace-level `tests/*.rs`. The
//! fixture corpus under `crates/lint/tests/fixtures/` mirrors exactly
//! this layout, so the same walker drives both the real tree and the
//! annotated test corpus. Discovery is fully sorted and the suppression
//! pass is order-preserving, which makes the whole report — including
//! its JSON rendering — byte-identical across runs.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::check_file;
use crate::source::SourceFile;
use crate::{Finding, Report, Rule, Suppression};

/// A parsed `// lint:allow(<rules>) <justification>` pragma.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub at: usize,
    /// 1-based line the pragma suppresses (its own for trailing pragmas,
    /// the next code line for standalone ones).
    pub target: usize,
    /// The rules it names.
    pub rules: Vec<Rule>,
    /// The justification text after the closing paren (may be empty —
    /// which rule P1 then flags).
    pub justification: String,
}

/// Scans a workspace-shaped tree rooted at `root` and returns the report.
///
/// # Errors
///
/// Returns any I/O error raised while enumerating or reading sources.
pub fn scan_root(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for krate in sorted_dir(&crates_dir)? {
            let src = krate.join("src");
            if src.is_dir() {
                let crate_name = file_name(&krate);
                let mut sources = Vec::new();
                collect_rs(&src, &mut sources)?;
                for path in sources {
                    files.push((path, crate_name.clone(), false));
                }
            }
        }
    }
    let tests_dir = root.join("tests");
    if tests_dir.is_dir() {
        for path in sorted_dir(&tests_dir)? {
            if path.extension().is_some_and(|e| e == "rs") {
                files.push((path, "tests".to_string(), true));
            }
        }
    }

    let mut report = Report::default();
    for (path, crate_name, is_test_file) in files {
        let text = fs::read_to_string(&path)?;
        let rel = rel_path(root, &path);
        let file = SourceFile::parse(rel, crate_name, &text, is_test_file);
        scan_file(&file, &mut report);
    }
    report.findings.sort();
    report.suppressions.sort();
    Ok(report)
}

/// Lints one parsed file into `report`: raw findings, then pragma
/// application (suppressions plus P1/P2 hygiene findings).
pub fn scan_file(file: &SourceFile, report: &mut Report) {
    report.files_scanned += 1;
    let mut findings = check_file(file);
    let pragmas = collect_pragmas(file);

    for pragma in &pragmas {
        // P1: a suppression without a reason is itself a finding — the
        // report must surface *why* every exception exists.
        if pragma.justification.is_empty() {
            findings.push(Finding {
                file: file.path.clone(),
                line: pragma.at,
                rule: Rule::P1,
                message: "lint:allow pragma without a justification".to_string(),
                excerpt: file.lines[pragma.at - 1].raw.trim().to_string(),
            });
        }
    }

    for pragma in &pragmas {
        let mut matched_any = false;
        findings.retain(|f| {
            let hit = f.line == pragma.target
                && pragma.rules.contains(&f.rule)
                && matches!(f.rule, Rule::D1 | Rule::D2 | Rule::D3 | Rule::D4);
            if hit {
                matched_any = true;
                report.suppressions.push(Suppression {
                    file: f.file.clone(),
                    line: f.line,
                    rule: f.rule,
                    justification: pragma.justification.clone(),
                });
            }
            !hit
        });
        if !matched_any && !pragma.justification.is_empty() {
            // P2: pragmas must pay rent. A pragma that suppresses nothing
            // is stale (the code was fixed, or the pragma is misplaced).
            findings.push(Finding {
                file: file.path.clone(),
                line: pragma.at,
                rule: Rule::P2,
                message: format!(
                    "lint:allow({}) suppresses no finding",
                    pragma.rules.iter().map(|r| r.id()).collect::<Vec<_>>().join(",")
                ),
                excerpt: file.lines[pragma.at - 1].raw.trim().to_string(),
            });
        }
    }
    report.findings.append(&mut findings);
}

/// Extracts every pragma in the file. Unknown rule ids inside the parens
/// simply don't parse; a pragma left with no (valid) rules suppresses
/// nothing and therefore fires P2 — the tree stays honest either way.
fn collect_pragmas(file: &SourceFile) -> Vec<Pragma> {
    let mut out = Vec::new();
    for (idx, line) in file.lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        // Doc comments (`///`, `//!`) never carry live pragmas — they
        // *describe* the pragma syntax (this crate, docs/LINT.md).
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(pos) = comment.find("lint:allow(") else {
            continue;
        };
        let after = &comment[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else {
            continue;
        };
        let rules: Vec<Rule> = after[..close].split(',').filter_map(Rule::parse).collect();
        let justification = after[close + 1..].trim().to_string();
        let standalone = line.code.trim().is_empty();
        let target = if standalone {
            // Applies to the next line carrying code.
            file.lines
                .iter()
                .enumerate()
                .skip(idx + 1)
                .find(|(_, l)| !l.code.trim().is_empty())
                .map_or(idx + 1, |(j, _)| j + 1)
        } else {
            idx + 1
        };
        out.push(Pragma { at: idx + 1, target, rules, justification });
    }
    out
}

/// Sorted entries of a directory (deterministic walk order).
fn sorted_dir(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> =
        fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

/// Recursively collects `.rs` files under `dir`, sorted.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn file_name(path: &Path) -> String {
    path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
}

/// `path` relative to `root`, with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(text: &str) -> Report {
        let file = SourceFile::parse("crates/core/src/x.rs", "core", text, false);
        let mut report = Report::default();
        scan_file(&file, &mut report);
        report
    }

    #[test]
    fn trailing_pragma_suppresses_and_is_recorded() {
        let r = scan("struct S { m: HashMap<u8, u8> } // lint:allow(D1) lookup-only\n");
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions.len(), 1);
        assert_eq!(r.suppressions[0].justification, "lookup-only");
    }

    #[test]
    fn standalone_pragma_targets_the_next_code_line() {
        let r = scan("// lint:allow(D1) seeded probe table, never iterated\n\nstruct S { m: HashMap<u8, u8> }\n");
        assert!(r.is_clean(), "findings: {:?}", r.findings);
        assert_eq!(r.suppressions[0].line, 3);
    }

    #[test]
    fn pragma_without_justification_fires_p1() {
        let r = scan("struct S { m: HashMap<u8, u8> } // lint:allow(D1)\n");
        assert_eq!(r.findings.len(), 1, "findings: {:?}", r.findings);
        assert_eq!(r.findings[0].rule, Rule::P1);
        assert_eq!(r.suppressions.len(), 1, "the D1 is still suppressed");
    }

    #[test]
    fn unused_pragma_fires_p2() {
        let r = scan("struct S; // lint:allow(D1) nothing here\n");
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::P2);
    }

    #[test]
    fn pragma_does_not_cover_other_rules_or_lines() {
        let r = scan("let t = SystemTime::now(); // lint:allow(D1) wrong rule\nlet m: HashMap<u8, u8> = x;\n");
        let rules: Vec<Rule> = r.findings.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&Rule::D2), "D2 not suppressed by a D1 pragma");
        assert!(rules.contains(&Rule::D1), "line 2 not covered by line 1's pragma");
        assert!(rules.contains(&Rule::P2), "the pragma matched nothing");
    }
}
