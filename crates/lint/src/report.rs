//! Rendering a lint [`Report`] as a human table or deterministic JSON.
//!
//! JSON is hand-rolled like `umtslab-verify`'s and the runner's (the
//! workspace deliberately carries no serialization dependency), with all
//! arrays pre-sorted, so two scans of the same tree render byte-identical
//! documents — a property the fixture suite asserts.

use std::fmt::Write;

use crate::{Report, Rule};

/// Renders the report as a human-readable table with excerpts and hints.
pub fn render_table(report: &Report) -> String {
    let mut out = String::new();
    let verdict = if report.is_clean() { "CLEAN" } else { "DIRTY" };
    let _ = writeln!(
        out,
        "umtslab-lint: {} file(s) scanned — {} finding(s), {} suppression(s): {}",
        report.files_scanned,
        report.findings.len(),
        report.suppressions.len(),
        verdict
    );
    for f in &report.findings {
        let _ = writeln!(out, "  [{}] {}:{} — {}", f.rule, f.file, f.line, f.message);
        let _ = writeln!(out, "        | {}", f.excerpt);
        let _ = writeln!(out, "        hint: {}", f.rule.hint());
    }
    if !report.suppressions.is_empty() {
        out.push_str("  suppressed (pragma-justified):\n");
        for s in &report.suppressions {
            let _ = writeln!(out, "    [{}] {}:{} — {}", s.rule, s.file, s.line, s.justification);
        }
    }
    out
}

/// Renders the report as one JSON document (schema in `docs/LINT.md`).
pub fn render_json(report: &Report) -> String {
    let mut out = String::from("{\n  \"tool\": \"umtslab-lint\",\n");
    let _ = writeln!(out, "  \"files_scanned\": {},", report.files_scanned);
    let _ = writeln!(out, "  \"clean\": {},", report.is_clean());
    out.push_str("  \"findings\": [");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"name\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"excerpt\": \"{}\", \"hint\": \"{}\"}}",
            f.rule,
            f.rule.name(),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message),
            escape_json(&f.excerpt),
            escape_json(f.rule.hint())
        );
    }
    out.push_str("\n  ],\n  \"suppressions\": [");
    for (i, s) in report.suppressions.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"justification\": \"{}\"}}",
            s.rule,
            escape_json(&s.file),
            s.line,
            escape_json(&s.justification)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Escapes the handful of characters JSON strings cannot carry verbatim.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Lists the rule catalog (`--list-rules`).
pub fn render_rules() -> String {
    let mut out = String::new();
    for rule in Rule::ALL {
        let _ = writeln!(out, "{}  {:<22} {}", rule.id(), rule.name(), rule.summary());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Suppression};

    fn sample() -> Report {
        Report {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: Rule::D1,
                message: "HashMap in determinism-scoped crate `core`".into(),
                excerpt: "m: HashMap<u8, \"q\">".into(),
            }],
            suppressions: vec![Suppression {
                file: "crates/net/src/label.rs".into(),
                line: 22,
                rule: Rule::D1,
                justification: "lookup-only".into(),
            }],
        }
    }

    #[test]
    fn table_carries_witness_and_hint() {
        let t = render_table(&sample());
        assert!(t.contains("crates/core/src/x.rs:3"));
        assert!(t.contains("hint:"));
        assert!(t.contains("DIRTY"));
        assert!(t.contains("lookup-only"));
    }

    #[test]
    fn json_escapes_and_round_trips_shape() {
        let j = render_json(&sample());
        assert!(j.contains("\\\"q\\\""), "quotes in excerpts are escaped");
        assert!(j.contains("\"clean\": false"));
        assert!(j.contains("\"suppressions\": ["));
    }
}
