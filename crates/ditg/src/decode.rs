//! The ITGDec equivalent: offline decoding of flow logs into QoS series.
//!
//! The paper's methodology: "samples of four QoS parameters — bitrate,
//! jitter, loss, and round-trip time — … average values calculated over
//! non-overlapping windows of 200 milliseconds". [`Decoder`] reproduces
//! exactly that, plus a whole-flow [`FlowSummary`].
//!
//! Metric definitions (matching ITGDec):
//! * **bitrate** — received payload bits per window, divided by the window;
//! * **jitter** — mean absolute difference of one-way delays of
//!   consecutive received packets (`|owd_i − owd_{i−1}|`), assigned to the
//!   window of the later arrival;
//! * **loss** — packets sent (by transmit time) in the window that were
//!   never received;
//! * **RTT** — mean round-trip time of probes transmitted in the window.

use umtslab_sim::time::{Duration, Instant};

use crate::agent::{RecvRecord, RttRecord, SentRecord};

/// Per-window statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStat {
    /// Window start (absolute simulated time).
    pub start: Instant,
    /// Packets received in the window.
    pub received: u64,
    /// Received payload bitrate over the window, bits/s.
    pub bitrate_bps: f64,
    /// Mean |Δ one-way-delay| of consecutive arrivals, if ≥ 2 arrivals.
    pub jitter: Option<Duration>,
    /// Packets sent in this window that never arrived.
    pub lost: u64,
    /// Mean RTT of probes sent in this window, if any were answered.
    pub rtt: Option<Duration>,
}

/// The full time series for one flow.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Window length.
    pub window: Duration,
    /// Flow start (window 0 begins here).
    pub origin: Instant,
    /// One entry per window.
    pub points: Vec<WindowStat>,
}

impl TimeSeries {
    /// Mean of the per-window bitrates.
    pub fn mean_bitrate_bps(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.bitrate_bps).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum per-window jitter.
    pub fn max_jitter(&self) -> Option<Duration> {
        self.points.iter().filter_map(|p| p.jitter).max()
    }

    /// Maximum per-window RTT.
    pub fn max_rtt(&self) -> Option<Duration> {
        self.points.iter().filter_map(|p| p.rtt).max()
    }

    /// Sample standard deviation of per-window bitrate (a fluctuation
    /// measure used to compare the UMTS and Ethernet paths).
    pub fn bitrate_std(&self) -> f64 {
        let n = self.points.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_bitrate_bps();
        let var = self.points.iter().map(|p| (p.bitrate_bps - mean).powi(2)).sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }
}

/// Whole-flow statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSummary {
    /// Packets sent.
    pub sent: u64,
    /// Packets received (after dedup).
    pub received: u64,
    /// Packets lost.
    pub lost: u64,
    /// Loss fraction in `[0, 1]`.
    pub loss_rate: f64,
    /// Mean received bitrate over the active period, bits/s.
    pub mean_bitrate_bps: f64,
    /// Mean one-way delay.
    pub mean_owd: Option<Duration>,
    /// Maximum one-way delay.
    pub max_owd: Option<Duration>,
    /// Mean jitter over consecutive arrivals.
    pub mean_jitter: Option<Duration>,
    /// Mean RTT over answered probes.
    pub mean_rtt: Option<Duration>,
    /// Maximum RTT.
    pub max_rtt: Option<Duration>,
}

/// The offline decoder.
#[derive(Debug, Clone)]
pub struct Decoder {
    window: Duration,
}

impl Decoder {
    /// The paper's window: 200 ms.
    pub fn paper() -> Decoder {
        Decoder { window: Duration::from_millis(200) }
    }

    /// A decoder with a custom window.
    pub fn with_window(window: Duration) -> Decoder {
        assert!(!window.is_zero(), "window must be positive");
        Decoder { window }
    }

    /// Decodes the three logs into the windowed series.
    ///
    /// `origin` is the flow start; `duration` bounds the series length
    /// (windows covering `[origin, origin + duration)` are emitted, plus a
    /// tail window for late arrivals if needed).
    pub fn series(
        &self,
        origin: Instant,
        duration: Duration,
        sent: &[SentRecord],
        recv: &[RecvRecord],
        rtts: &[RttRecord],
    ) -> TimeSeries {
        let w = self.window;
        let base_windows = duration.total_micros().div_ceil(w.total_micros()).max(1) as usize;
        // Extend for straggler arrivals.
        let last_rx = recv.iter().map(|r| r.rx).max();
        let windows = match last_rx {
            Some(rx) if rx > origin => {
                let need =
                    (rx.duration_since(origin).total_micros() / w.total_micros()) as usize + 1;
                base_windows.max(need)
            }
            _ => base_windows,
        };

        let idx = |t: Instant| -> Option<usize> {
            if t < origin {
                return None;
            }
            let i = (t.duration_since(origin).total_micros() / w.total_micros()) as usize;
            (i < windows).then_some(i)
        };

        let mut received = vec![0u64; windows];
        let mut bytes = vec![0u64; windows];
        let mut jitter_sum = vec![Duration::ZERO; windows];
        let mut jitter_n = vec![0u64; windows];
        let mut lost = vec![0u64; windows];
        let mut rtt_sum = vec![Duration::ZERO; windows];
        let mut rtt_n = vec![0u64; windows];

        // Receive-side metrics. Records are ordered by arrival because the
        // receiver logs in arrival order.
        let mut prev: Option<&RecvRecord> = None;
        for r in recv {
            if let Some(i) = idx(r.rx) {
                received[i] += 1;
                bytes[i] += r.payload as u64;
                if let Some(p) = prev {
                    let d1 = p.owd();
                    let d2 = r.owd();
                    let dj = if d2 >= d1 { d2 - d1 } else { d1 - d2 };
                    jitter_sum[i] += dj;
                    jitter_n[i] += 1;
                }
            }
            prev = Some(r);
        }

        // Loss by transmit window.
        // lint:allow(D1) membership probe against received seqs; results come from iterating `sent`
        let got: std::collections::HashSet<u32> = recv.iter().map(|r| r.seq).collect();
        for s in sent {
            if !got.contains(&s.seq) {
                if let Some(i) = idx(s.tx) {
                    lost[i] += 1;
                }
            }
        }

        // RTT by probe transmit window.
        for r in rtts {
            if let Some(i) = idx(r.tx) {
                rtt_sum[i] += r.rtt;
                rtt_n[i] += 1;
            }
        }

        let points = (0..windows)
            .map(|i| WindowStat {
                start: origin + w * i as u64,
                received: received[i],
                bitrate_bps: bytes[i] as f64 * 8.0 / w.as_secs_f64(),
                jitter: (jitter_n[i] > 0).then(|| jitter_sum[i] / jitter_n[i]),
                lost: lost[i],
                rtt: (rtt_n[i] > 0).then(|| rtt_sum[i] / rtt_n[i]),
            })
            .collect();
        TimeSeries { window: w, origin, points }
    }

    /// Whole-flow summary.
    pub fn summary(
        &self,
        sent: &[SentRecord],
        recv: &[RecvRecord],
        rtts: &[RttRecord],
    ) -> FlowSummary {
        let sent_n = sent.len() as u64;
        let recv_n = recv.len() as u64;
        let lost = sent_n.saturating_sub(recv_n);
        let loss_rate = if sent_n == 0 { 0.0 } else { lost as f64 / sent_n as f64 };

        let mean_bitrate_bps = match (recv.first(), recv.last()) {
            (Some(first), Some(last)) if last.rx > first.tx => {
                let bytes: u64 = recv.iter().map(|r| r.payload as u64).sum();
                bytes as f64 * 8.0 / last.rx.duration_since(first.tx).as_secs_f64()
            }
            _ => 0.0,
        };

        let owds: Vec<Duration> = recv.iter().map(super::agent::RecvRecord::owd).collect();
        let mean_owd = mean_duration(&owds);
        let max_owd = owds.iter().copied().max();

        let mut jitters = Vec::with_capacity(recv.len().saturating_sub(1));
        for pair in recv.windows(2) {
            let (a, b) = (pair[0].owd(), pair[1].owd());
            jitters.push(if b >= a { b - a } else { a - b });
        }
        let mean_jitter = mean_duration(&jitters);

        let rtt_vals: Vec<Duration> = rtts.iter().map(|r| r.rtt).collect();
        let mean_rtt = mean_duration(&rtt_vals);
        let max_rtt = rtt_vals.iter().copied().max();

        FlowSummary {
            sent: sent_n,
            received: recv_n,
            lost,
            loss_rate,
            mean_bitrate_bps,
            mean_owd,
            max_owd,
            mean_jitter,
            mean_rtt,
            max_rtt,
        }
    }
}

fn mean_duration(xs: &[Duration]) -> Option<Duration> {
    if xs.is_empty() {
        return None;
    }
    let total: u64 = xs.iter().map(umtslab_sim::Duration::total_micros).sum();
    Some(Duration::from_micros(total / xs.len() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sent(seq: u32, tx_ms: u64, payload: usize) -> SentRecord {
        SentRecord { seq, tx: Instant::from_millis(tx_ms), payload }
    }

    fn recv(seq: u32, tx_ms: u64, rx_ms: u64, payload: usize) -> RecvRecord {
        RecvRecord {
            seq,
            tx: Instant::from_millis(tx_ms),
            rx: Instant::from_millis(rx_ms),
            payload,
        }
    }

    fn rtt(seq: u32, tx_ms: u64, rtt_ms: u64) -> RttRecord {
        RttRecord { seq, tx: Instant::from_millis(tx_ms), rtt: Duration::from_millis(rtt_ms) }
    }

    #[test]
    fn window_count_covers_duration() {
        let d = Decoder::paper();
        let ts = d.series(Instant::ZERO, Duration::from_secs(1), &[], &[], &[]);
        assert_eq!(ts.points.len(), 5); // 1 s / 200 ms
        assert_eq!(ts.points[0].start, Instant::ZERO);
        assert_eq!(ts.points[4].start, Instant::from_millis(800));
    }

    #[test]
    fn bitrate_per_window() {
        let d = Decoder::paper();
        // Two 500-byte packets land in window 0, one in window 1.
        let r = vec![recv(0, 0, 50, 500), recv(1, 20, 150, 500), recv(2, 40, 250, 500)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &[], &r, &[]);
        assert_eq!(ts.points[0].received, 2);
        // 1000 bytes in 0.2 s = 40 kbps.
        assert!((ts.points[0].bitrate_bps - 40_000.0).abs() < 1.0);
        assert!((ts.points[1].bitrate_bps - 20_000.0).abs() < 1.0);
    }

    #[test]
    fn jitter_is_mean_abs_owd_delta() {
        let d = Decoder::paper();
        // OWDs: 50 ms, 130 ms, 210 ms → deltas 80 ms, 80 ms.
        let r = vec![recv(0, 0, 50, 100), recv(1, 20, 150, 100), recv(2, 40, 250, 100)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &[], &r, &[]);
        // Packet 1 arrives in window 0 → jitter of (0,1) in window 0.
        assert_eq!(ts.points[0].jitter, Some(Duration::from_millis(80)));
        // Packet 2 arrives in window 1 → jitter of (1,2) in window 1.
        assert_eq!(ts.points[1].jitter, Some(Duration::from_millis(80)));
        // No jitter with a single arrival.
        let ts =
            d.series(Instant::ZERO, Duration::from_millis(200), &[], &[recv(0, 0, 50, 100)], &[]);
        assert_eq!(ts.points[0].jitter, None);
    }

    #[test]
    fn loss_assigned_to_transmit_window() {
        let d = Decoder::paper();
        let s = vec![sent(0, 10, 100), sent(1, 30, 100), sent(2, 250, 100)];
        // Only seq 1 arrives.
        let r = vec![recv(1, 30, 90, 100)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &s, &r, &[]);
        assert_eq!(ts.points[0].lost, 1); // seq 0, sent at 10 ms
        assert_eq!(ts.points[1].lost, 1); // seq 2, sent at 250 ms
    }

    #[test]
    fn rtt_by_probe_window() {
        let d = Decoder::paper();
        let probes = vec![rtt(0, 10, 100), rtt(1, 50, 300), rtt(2, 250, 40)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &[], &[], &probes);
        assert_eq!(ts.points[0].rtt, Some(Duration::from_millis(200)));
        assert_eq!(ts.points[1].rtt, Some(Duration::from_millis(40)));
    }

    #[test]
    fn late_arrivals_extend_the_series() {
        let d = Decoder::paper();
        let r = vec![recv(0, 100, 950, 100)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &[], &r, &[]);
        assert!(ts.points.len() >= 5, "series must cover the straggler");
        assert_eq!(ts.points[4].received, 1);
    }

    #[test]
    fn origin_offsets_windows() {
        let d = Decoder::paper();
        let origin = Instant::from_secs(10);
        let r = vec![recv(0, 10_050, 10_100, 100)];
        let ts = d.series(origin, Duration::from_millis(400), &[], &r, &[]);
        assert_eq!(ts.points[0].start, origin);
        assert_eq!(ts.points[0].received, 1);
    }

    #[test]
    fn summary_counts_and_rates() {
        let d = Decoder::paper();
        let s = vec![sent(0, 0, 500), sent(1, 100, 500), sent(2, 200, 500)];
        let r = vec![recv(0, 0, 50, 500), recv(2, 200, 260, 500)];
        let probes = vec![rtt(0, 0, 100), rtt(2, 200, 120)];
        let sum = d.summary(&s, &r, &probes);
        assert_eq!(sum.sent, 3);
        assert_eq!(sum.received, 2);
        assert_eq!(sum.lost, 1);
        assert!((sum.loss_rate - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(sum.mean_owd, Some(Duration::from_millis(55)));
        assert_eq!(sum.max_owd, Some(Duration::from_millis(60)));
        assert_eq!(sum.mean_rtt, Some(Duration::from_millis(110)));
        assert_eq!(sum.max_rtt, Some(Duration::from_millis(120)));
        // Jitter: |60 - 50| = 10 ms (one pair).
        assert_eq!(sum.mean_jitter, Some(Duration::from_millis(10)));
        // Bitrate: 1000 bytes from first tx (0) to last rx (260 ms).
        assert!((sum.mean_bitrate_bps - 8_000.0 / 0.26).abs() < 1.0);
    }

    #[test]
    fn empty_logs_yield_empty_summary() {
        let d = Decoder::paper();
        let sum = d.summary(&[], &[], &[]);
        assert_eq!(sum.sent, 0);
        assert_eq!(sum.loss_rate, 0.0);
        assert_eq!(sum.mean_owd, None);
        assert_eq!(sum.mean_rtt, None);
    }

    #[test]
    fn series_stats_helpers() {
        let d = Decoder::paper();
        let r = vec![recv(0, 0, 50, 500), recv(1, 200, 260, 250)];
        let ts = d.series(Instant::ZERO, Duration::from_millis(400), &[], &r, &[]);
        assert!(ts.mean_bitrate_bps() > 0.0);
        assert!(ts.bitrate_std() > 0.0);
        assert_eq!(ts.max_jitter(), Some(Duration::from_millis(10)));
        assert_eq!(ts.max_rtt(), None);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = Decoder::with_window(Duration::ZERO);
    }
}
