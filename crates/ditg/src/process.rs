//! Stochastic processes for inter-departure times and packet sizes.
//!
//! D-ITG characterizes a flow by two random processes — IDT (inter
//! departure time) and PS (packet size) — each drawn from a configurable
//! distribution. The paper lists the supported family: "exponential,
//! uniform, cauchy, normal, pareto, ...", all of which are implemented
//! here over the deterministic [`SimRng`].

use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Duration;

/// A scalar distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distribution {
    /// Always `value`.
    Constant {
        /// The constant value.
        value: f64,
    },
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// The mean.
        mean: f64,
    },
    /// Normal (Gaussian).
    Normal {
        /// The mean.
        mean: f64,
        /// The standard deviation.
        std: f64,
    },
    /// Pareto type I with scale `x_min` and shape `alpha`.
    Pareto {
        /// Scale (minimum value).
        scale: f64,
        /// Shape.
        shape: f64,
    },
    /// Cauchy with location and scale. Heavy-tailed in both directions;
    /// users must clamp.
    Cauchy {
        /// Location (median).
        location: f64,
        /// Scale.
        scale: f64,
    },
}

impl Distribution {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Distribution::Constant { value } => value,
            Distribution::Uniform { lo, hi } => rng.uniform(lo, hi),
            Distribution::Exponential { mean } => rng.exponential(mean),
            Distribution::Normal { mean, std } => rng.normal(mean, std),
            Distribution::Pareto { scale, shape } => rng.pareto(scale, shape),
            Distribution::Cauchy { location, scale } => rng.cauchy(location, scale),
        }
    }

    /// The theoretical mean, where it exists (`None` for Cauchy and for
    /// Pareto with shape ≤ 1).
    pub fn mean(&self) -> Option<f64> {
        match *self {
            Distribution::Constant { value } => Some(value),
            Distribution::Uniform { lo, hi } => Some((lo + hi) / 2.0),
            Distribution::Exponential { mean } => Some(mean),
            Distribution::Normal { mean, .. } => Some(mean),
            Distribution::Pareto { scale, shape } => {
                if shape > 1.0 {
                    Some(scale * shape / (shape - 1.0))
                } else {
                    None
                }
            }
            Distribution::Cauchy { .. } => None,
        }
    }
}

/// The inter-departure-time process: draws strictly positive durations.
#[derive(Debug, Clone)]
pub struct IdtProcess {
    dist: Distribution,
}

impl IdtProcess {
    /// Minimum spacing between departures.
    pub const MIN_IDT: Duration = Duration::from_micros(1);

    /// Creates an IDT process; samples are interpreted as seconds.
    pub fn new(dist: Distribution) -> IdtProcess {
        IdtProcess { dist }
    }

    /// A constant-rate process of `pps` packets per second.
    pub fn constant_pps(pps: f64) -> IdtProcess {
        IdtProcess::new(Distribution::Constant { value: 1.0 / pps })
    }

    /// The distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Draws the next inter-departure gap (clamped positive).
    pub fn sample(&self, rng: &mut SimRng) -> Duration {
        let secs = self.dist.sample(rng);
        if !secs.is_finite() || secs <= 0.0 {
            return Self::MIN_IDT;
        }
        Duration::from_secs_f64(secs).max(Self::MIN_IDT)
    }
}

/// The packet-size process: draws payload sizes within `[min, max]`.
#[derive(Debug, Clone)]
pub struct PsProcess {
    dist: Distribution,
    min: usize,
    max: usize,
}

impl PsProcess {
    /// The smallest payload this stack generates: it must hold the D-ITG
    /// header (sequence number + transmit timestamp).
    pub const MIN_PAYLOAD: usize = 16;

    /// Creates a PS process clamped to `[min, max]` bytes.
    pub fn new(dist: Distribution, min: usize, max: usize) -> PsProcess {
        let min = min.max(Self::MIN_PAYLOAD);
        PsProcess { dist, min, max: max.max(min) }
    }

    /// A constant payload size.
    pub fn constant(bytes: usize) -> PsProcess {
        PsProcess::new(Distribution::Constant { value: bytes as f64 }, bytes, bytes)
    }

    /// The distribution.
    pub fn distribution(&self) -> Distribution {
        self.dist
    }

    /// Draws the next payload size.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let v = self.dist.sample(rng);
        if !v.is_finite() {
            return self.min;
        }
        (v.round().max(0.0) as usize).clamp(self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from_u64(21)
    }

    #[test]
    fn constant_idt_is_exact() {
        let idt = IdtProcess::constant_pps(50.0);
        let mut r = rng();
        assert_eq!(idt.sample(&mut r), Duration::from_millis(20));
        assert_eq!(idt.sample(&mut r), Duration::from_millis(20));
    }

    #[test]
    fn exponential_idt_mean_is_plausible() {
        let idt = IdtProcess::new(Distribution::Exponential { mean: 0.01 });
        let mut r = rng();
        let n = 50_000;
        let total: f64 = (0..n).map(|_| idt.sample(&mut r).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.0005, "observed {mean}");
    }

    #[test]
    fn idt_never_returns_zero() {
        // A normal with a hugely negative mean keeps getting clamped.
        let idt = IdtProcess::new(Distribution::Normal { mean: -1.0, std: 0.1 });
        let mut r = rng();
        for _ in 0..1000 {
            assert!(idt.sample(&mut r) >= IdtProcess::MIN_IDT);
        }
    }

    #[test]
    fn cauchy_idt_is_clamped_positive() {
        let idt = IdtProcess::new(Distribution::Cauchy { location: 0.01, scale: 0.05 });
        let mut r = rng();
        for _ in 0..10_000 {
            let d = idt.sample(&mut r);
            assert!(d >= IdtProcess::MIN_IDT);
        }
    }

    #[test]
    fn ps_respects_bounds() {
        let ps = PsProcess::new(Distribution::Normal { mean: 500.0, std: 400.0 }, 64, 1024);
        let mut r = rng();
        for _ in 0..10_000 {
            let s = ps.sample(&mut r);
            assert!((64..=1024).contains(&s));
        }
    }

    #[test]
    fn ps_constant() {
        let ps = PsProcess::constant(1024);
        let mut r = rng();
        assert_eq!(ps.sample(&mut r), 1024);
    }

    #[test]
    fn ps_enforces_header_minimum() {
        let ps = PsProcess::new(Distribution::Constant { value: 1.0 }, 1, 8);
        let mut r = rng();
        assert_eq!(ps.sample(&mut r), PsProcess::MIN_PAYLOAD);
    }

    #[test]
    fn pareto_ps_is_heavy_tailed() {
        let ps = PsProcess::new(Distribution::Pareto { scale: 100.0, shape: 1.2 }, 64, 65_000);
        let mut r = rng();
        let samples: Vec<usize> = (0..20_000).map(|_| ps.sample(&mut r)).collect();
        let big = samples.iter().filter(|&&s| s > 1000).count();
        assert!(big > 100, "Pareto tail too light: {big} samples > 1000");
        assert!(samples.iter().all(|&s| s >= 100));
    }

    #[test]
    fn theoretical_means() {
        assert_eq!(Distribution::Constant { value: 5.0 }.mean(), Some(5.0));
        assert_eq!(Distribution::Uniform { lo: 0.0, hi: 10.0 }.mean(), Some(5.0));
        assert_eq!(Distribution::Exponential { mean: 3.0 }.mean(), Some(3.0));
        assert_eq!(Distribution::Normal { mean: 7.0, std: 2.0 }.mean(), Some(7.0));
        assert_eq!(Distribution::Pareto { scale: 4.0, shape: 2.0 }.mean(), Some(8.0));
        assert_eq!(Distribution::Pareto { scale: 4.0, shape: 0.9 }.mean(), None);
        assert_eq!(Distribution::Cauchy { location: 0.0, scale: 1.0 }.mean(), None);
    }
}
