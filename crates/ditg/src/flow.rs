//! Flow specifications and the paper's workload presets.

use umtslab_sim::time::Duration;

use crate::process::{Distribution, IdtProcess, PsProcess};

/// VoIP codecs D-ITG can emulate (`-x` option in the real tool).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VoipCodec {
    /// G.711 (64 kbps codec): 160 B frames every 20 ms.
    G711,
    /// G.729 (8 kbps codec): 20 B frames every 20 ms.
    G729,
    /// G.723.1 (6.3 kbps codec): 24 B frames every 30 ms.
    G7231,
}

impl VoipCodec {
    /// Packets per second.
    pub fn pps(self) -> f64 {
        match self {
            VoipCodec::G711 | VoipCodec::G729 => 50.0,
            VoipCodec::G7231 => 1000.0 / 30.0,
        }
    }

    /// UDP payload per packet: codec frame plus the 12-byte RTP header.
    pub fn payload(self) -> usize {
        match self {
            VoipCodec::G711 => 160 + 12,
            VoipCodec::G729 => 20 + 12,
            VoipCodec::G7231 => 24 + 12,
        }
    }

    /// Application-layer bitrate in bits per second.
    pub fn app_bps(self) -> f64 {
        self.payload() as f64 * 8.0 * self.pps()
    }
}

/// A complete description of one generated flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// Human label for reports.
    pub label: String,
    /// Inter-departure-time process.
    pub idt: IdtProcess,
    /// Packet-size process (UDP payload bytes).
    pub ps: PsProcess,
    /// How long the sender generates.
    pub duration: Duration,
    /// Whether the receiver echoes probes so the sender can measure RTT.
    pub measure_rtt: bool,
    /// UDP source port.
    pub sport: u16,
    /// UDP destination port.
    pub dport: u16,
}

impl FlowSpec {
    /// The paper's VoIP-like workload: 72 kbps of UDP CBR "resembling the
    /// characteristics of a real VoIP call using codec G.711" — 50 pps of
    /// 180-byte payloads (G.711 frame + RTP header), 120 s.
    pub fn voip_g711() -> FlowSpec {
        FlowSpec {
            label: "voip-g711-72kbps".to_string(),
            idt: IdtProcess::constant_pps(50.0),
            ps: PsProcess::constant(180),
            duration: Duration::from_secs(120),
            measure_rtt: true,
            sport: 9_000,
            dport: 9_001,
        }
    }

    /// The paper's saturating workload: "a 1-Mbps UDP CBR flow with packet
    /// size equal to 1024 Bytes and packet rate equal to 122 pps", 120 s.
    pub fn cbr_1mbps() -> FlowSpec {
        FlowSpec {
            label: "cbr-1mbps".to_string(),
            idt: IdtProcess::constant_pps(122.0),
            ps: PsProcess::constant(1024),
            duration: Duration::from_secs(120),
            measure_rtt: true,
            sport: 9_000,
            dport: 9_001,
        }
    }

    /// A VoIP call emulating `codec` (RTP-over-UDP framing), one-way.
    pub fn voip_codec(codec: VoipCodec, duration: Duration) -> FlowSpec {
        FlowSpec {
            label: format!("voip-{codec:?}").to_lowercase(),
            idt: IdtProcess::constant_pps(codec.pps()),
            ps: PsProcess::constant(codec.payload()),
            duration,
            measure_rtt: true,
            sport: 9_000,
            dport: 9_001,
        }
    }

    /// A generic CBR flow at `bps` with `payload`-byte packets.
    pub fn cbr(bps: u64, payload: usize, duration: Duration) -> FlowSpec {
        let pps = bps as f64 / (payload as f64 * 8.0);
        FlowSpec {
            label: format!("cbr-{bps}bps-{payload}B"),
            idt: IdtProcess::constant_pps(pps),
            ps: PsProcess::constant(payload),
            duration,
            measure_rtt: true,
            sport: 9_000,
            dport: 9_001,
        }
    }

    /// A Poisson flow (exponential IDT) with the given mean rate.
    pub fn poisson(mean_pps: f64, payload: usize, duration: Duration) -> FlowSpec {
        FlowSpec {
            label: format!("poisson-{mean_pps}pps-{payload}B"),
            idt: IdtProcess::new(Distribution::Exponential { mean: 1.0 / mean_pps }),
            ps: PsProcess::constant(payload),
            duration,
            measure_rtt: true,
            sport: 9_000,
            dport: 9_001,
        }
    }

    /// The nominal application-layer bitrate, where the processes have
    /// finite means.
    pub fn nominal_bps(&self) -> Option<f64> {
        let idt = self.idt.distribution().mean()?;
        let ps = self.ps.distribution().mean()?;
        Some(ps * 8.0 / idt)
    }

    /// Expected packet count over the whole flow (for finite-mean IDT).
    pub fn expected_packets(&self) -> Option<u64> {
        let idt = self.idt.distribution().mean()?;
        Some((self.duration.as_secs_f64() / idt).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn voip_preset_is_72_kbps() {
        let f = FlowSpec::voip_g711();
        let bps = f.nominal_bps().unwrap();
        assert!((bps - 72_000.0).abs() < 1.0, "got {bps}");
        assert_eq!(f.expected_packets(), Some(6_000)); // 50 pps * 120 s
    }

    #[test]
    fn codec_presets_have_textbook_rates() {
        // G.711: 172 B * 8 * 50 = 68.8 kbps at the RTP layer.
        assert!((VoipCodec::G711.app_bps() - 68_800.0).abs() < 1.0);
        // G.729: 32 B * 8 * 50 = 12.8 kbps.
        assert!((VoipCodec::G729.app_bps() - 12_800.0).abs() < 1.0);
        // G.723.1: 36 B * 8 * 33.3 = ~9.6 kbps.
        assert!((VoipCodec::G7231.app_bps() - 9_600.0).abs() < 10.0);
        let f = FlowSpec::voip_codec(VoipCodec::G729, Duration::from_secs(10));
        assert_eq!(f.expected_packets(), Some(500));
        assert!(f.label.contains("g729"));
    }

    #[test]
    fn cbr_preset_matches_paper_numbers() {
        let f = FlowSpec::cbr_1mbps();
        let bps = f.nominal_bps().unwrap();
        // 1024 B * 8 * 122 pps = 999.4 kbps, the paper's "1 Mbps".
        assert!((bps - 999_424.0).abs() < 1.0, "got {bps}");
        assert_eq!(f.expected_packets(), Some(14_640)); // 122 pps * 120 s
    }

    #[test]
    fn generic_cbr_hits_requested_rate() {
        let f = FlowSpec::cbr(500_000, 500, Duration::from_secs(10));
        let bps = f.nominal_bps().unwrap();
        assert!((bps - 500_000.0).abs() < 1.0);
    }

    #[test]
    fn poisson_mean_rate() {
        let f = FlowSpec::poisson(100.0, 200, Duration::from_secs(10));
        let bps = f.nominal_bps().unwrap();
        assert!((bps - 160_000.0).abs() < 1.0);
        assert_eq!(f.expected_packets(), Some(1_000));
    }
}
