//! # umtslab-ditg — the D-ITG-style traffic generator and decoder
//!
//! A faithful stand-in for the Distributed Internet Traffic Generator the
//! paper uses for its measurements:
//!
//! * [`process`] — IDT and PS stochastic processes over the distribution
//!   family D-ITG supports (constant, uniform, exponential, normal,
//!   Pareto, Cauchy);
//! * [`flow`] — flow specifications, including the paper's two presets
//!   ([`flow::FlowSpec::voip_g711`] and [`flow::FlowSpec::cbr_1mbps`]);
//! * [`agent`] — the sender/receiver pair with per-packet logs and echo
//!   probes for RTT;
//! * [`decode`] — the ITGDec equivalent: bitrate / jitter / loss / RTT
//!   over non-overlapping 200 ms windows, plus whole-flow summaries.
//!
//! ## Example
//!
//! ```
//! use umtslab_ditg::flow::FlowSpec;
//! use umtslab_sim::SimRng;
//!
//! // The paper's VoIP preset: G.711-like, 50 pps — a constant IDT process.
//! let spec = FlowSpec::voip_g711();
//! assert_eq!(spec.label, "voip-g711-72kbps");
//! let mut rng = SimRng::seed_from_u64(1);
//! let idt = spec.idt.sample(&mut rng);
//! assert_eq!(idt.total_micros(), 20_000); // 50 packets per second
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod decode;
pub mod flow;
pub mod process;

pub use agent::{RecvRecord, RttRecord, SentRecord, TrafficReceiver, TrafficSender};
pub use decode::{Decoder, FlowSummary, TimeSeries, WindowStat};
pub use flow::{FlowSpec, VoipCodec};
pub use process::{Distribution, IdtProcess, PsProcess};
