//! # umtslab-ditg — the D-ITG-style traffic generator and decoder
//!
//! A faithful stand-in for the Distributed Internet Traffic Generator the
//! paper uses for its measurements:
//!
//! * [`process`] — IDT and PS stochastic processes over the distribution
//!   family D-ITG supports (constant, uniform, exponential, normal,
//!   Pareto, Cauchy);
//! * [`flow`] — flow specifications, including the paper's two presets
//!   ([`flow::FlowSpec::voip_g711`] and [`flow::FlowSpec::cbr_1mbps`]);
//! * [`agent`] — the sender/receiver pair with per-packet logs and echo
//!   probes for RTT;
//! * [`decode`] — the ITGDec equivalent: bitrate / jitter / loss / RTT
//!   over non-overlapping 200 ms windows, plus whole-flow summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod decode;
pub mod flow;
pub mod process;

pub use agent::{RecvRecord, RttRecord, SentRecord, TrafficReceiver, TrafficSender};
pub use decode::{Decoder, FlowSummary, TimeSeries, WindowStat};
pub use flow::{FlowSpec, VoipCodec};
pub use process::{Distribution, IdtProcess, PsProcess};
