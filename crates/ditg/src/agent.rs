//! The traffic sender and receiver agents.
//!
//! Like D-ITG, the sender stamps a small header — sequence number, flow id
//! and transmit timestamp — into every UDP payload, and both sides log
//! per-packet records ([`SentRecord`] / [`RecvRecord`]). When RTT
//! measurement is enabled the receiver answers every probe with a minimal
//! echo carrying the original header, from which the sender computes
//! [`RttRecord`]s. The logs are decoded offline by [`crate::decode`],
//! mirroring the ITGSend / ITGRecv / ITGDec workflow.

use umtslab_net::bytes::BufferPool;
use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::wire::{Endpoint, Ipv4Address};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

use crate::flow::FlowSpec;

/// Size of the in-payload header.
pub const HEADER_LEN: usize = 16;

/// Writes the D-ITG header into the first bytes of `payload`.
pub fn encode_header(payload: &mut [u8], seq: u32, flow_id: u32, tx: Instant) {
    payload[0..4].copy_from_slice(&seq.to_be_bytes());
    payload[4..8].copy_from_slice(&flow_id.to_be_bytes());
    payload[8..16].copy_from_slice(&tx.total_micros().to_be_bytes());
}

/// Parses the D-ITG header: `(seq, flow_id, tx_time)`.
pub fn parse_header(payload: &[u8]) -> Option<(u32, u32, Instant)> {
    if payload.len() < HEADER_LEN {
        return None;
    }
    let seq = u32::from_be_bytes(payload[0..4].try_into().ok()?);
    let flow = u32::from_be_bytes(payload[4..8].try_into().ok()?);
    let tx = u64::from_be_bytes(payload[8..16].try_into().ok()?);
    Some((seq, flow, Instant::from_micros(tx)))
}

/// Sender-side log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentRecord {
    /// Sequence number.
    pub seq: u32,
    /// Transmit time.
    pub tx: Instant,
    /// UDP payload size.
    pub payload: usize,
}

/// Receiver-side log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRecord {
    /// Sequence number.
    pub seq: u32,
    /// Transmit time (from the header).
    pub tx: Instant,
    /// Receive time.
    pub rx: Instant,
    /// UDP payload size.
    pub payload: usize,
}

impl RecvRecord {
    /// One-way delay of this packet.
    pub fn owd(&self) -> Duration {
        self.rx.saturating_duration_since(self.tx)
    }
}

/// Sender-side RTT sample from an answered probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RttRecord {
    /// Sequence number of the probe.
    pub seq: u32,
    /// Probe transmit time.
    pub tx: Instant,
    /// Measured round-trip time.
    pub rtt: Duration,
}

/// The ITGSend equivalent.
#[derive(Debug)]
pub struct TrafficSender {
    spec: FlowSpec,
    flow_id: u32,
    src: Endpoint,
    dst: Endpoint,
    next_seq: u32,
    start: Instant,
    ends: Instant,
    next_departure: Option<Instant>,
    rng: SimRng,
    sent: Vec<SentRecord>,
    rtts: Vec<RttRecord>,
}

impl TrafficSender {
    /// Creates a sender for `spec` from `src_addr` (may be unspecified —
    /// the node's routing fills it) to `dst_addr`, starting at `start`.
    pub fn new(
        spec: FlowSpec,
        flow_id: u32,
        src_addr: Ipv4Address,
        dst_addr: Ipv4Address,
        start: Instant,
        seed: u64,
    ) -> TrafficSender {
        let src = Endpoint::new(src_addr, spec.sport);
        let dst = Endpoint::new(dst_addr, spec.dport);
        let ends = start + spec.duration;
        TrafficSender {
            spec,
            flow_id,
            src,
            dst,
            next_seq: 0,
            start,
            ends,
            next_departure: Some(start),
            rng: SimRng::seed_from_u64(seed),
            sent: Vec::new(),
            rtts: Vec::new(),
        }
    }

    /// The flow spec.
    pub fn spec(&self) -> &FlowSpec {
        &self.spec
    }

    /// Flow start time.
    pub fn start_time(&self) -> Instant {
        self.start
    }

    /// When the next packet departs; `None` once the flow has ended.
    pub fn next_departure(&self) -> Option<Instant> {
        self.next_departure
    }

    /// True once all packets have been emitted.
    pub fn finished(&self) -> bool {
        self.next_departure.is_none()
    }

    /// Emits the packet due at `now` (a no-op if none is due).
    ///
    /// The payload is written once into a buffer taken from `pool` and
    /// frozen into the packet without copying; recycle retired payloads
    /// into the same pool to make steady-state emission allocation-free.
    pub fn emit(
        &mut self,
        now: Instant,
        ids: &mut PacketIdAllocator,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        let due = self.next_departure?;
        if now < due {
            return None;
        }
        let size = self.spec.ps.sample(&mut self.rng);
        let mut payload = pool.take(size);
        let seq = self.next_seq;
        self.next_seq += 1;
        encode_header(&mut payload, seq, self.flow_id, due);
        let packet = Packet::udp(ids.allocate(), self.src, self.dst, payload, due);
        self.sent.push(SentRecord { seq, tx: due, payload: size });

        let next = due + self.spec.idt.sample(&mut self.rng);
        self.next_departure = if next < self.ends { Some(next) } else { None };
        Some(packet)
    }

    /// Handles a packet arriving at the sender's port (an echo reply).
    pub fn on_receive(&mut self, now: Instant, packet: &Packet) {
        let Some((seq, flow, tx)) = parse_header(&packet.payload) else {
            return;
        };
        if flow != self.flow_id {
            return;
        }
        self.rtts.push(RttRecord { seq, tx, rtt: now.saturating_duration_since(tx) });
    }

    /// The send log.
    pub fn sent(&self) -> &[SentRecord] {
        &self.sent
    }

    /// The RTT log.
    pub fn rtts(&self) -> &[RttRecord] {
        &self.rtts
    }
}

/// The ITGRecv equivalent.
#[derive(Debug)]
pub struct TrafficReceiver {
    flow_id: u32,
    echo: bool,
    records: Vec<RecvRecord>,
    // lint:allow(D1) per-packet duplicate filter; membership probes only, never iterated
    seen: std::collections::HashSet<u32>,
    duplicates: u64,
    /// Payload size of echo replies.
    echo_payload: usize,
}

impl TrafficReceiver {
    /// Creates a receiver for flow `flow_id`; `echo` enables RTT probes.
    pub fn new(flow_id: u32, echo: bool) -> TrafficReceiver {
        TrafficReceiver {
            flow_id,
            echo,
            records: Vec::new(),
            // lint:allow(D1) constructing the membership-only dup filter justified above
            seen: std::collections::HashSet::new(),
            duplicates: 0,
            echo_payload: HEADER_LEN,
        }
    }

    /// Handles an arriving packet; returns the echo reply to send, if
    /// RTT measurement is on.
    pub fn on_receive(
        &mut self,
        now: Instant,
        packet: &Packet,
        ids: &mut PacketIdAllocator,
        pool: &mut BufferPool,
    ) -> Option<Packet> {
        let (seq, flow, tx) = parse_header(&packet.payload)?;
        if flow != self.flow_id {
            return None;
        }
        if !self.seen.insert(seq) {
            self.duplicates += 1;
            return None;
        }
        self.records.push(RecvRecord { seq, tx, rx: now, payload: packet.payload.len() });
        if !self.echo {
            return None;
        }
        let mut payload = pool.take(self.echo_payload);
        encode_header(&mut payload, seq, self.flow_id, tx);
        // Reply from our endpoint back to the prober.
        Some(Packet::udp(
            ids.allocate(),
            Endpoint::new(packet.dst.addr, packet.dst.port),
            packet.src,
            payload,
            now,
        ))
    }

    /// The receive log.
    pub fn records(&self) -> &[RecvRecord] {
        &self.records
    }

    /// Duplicate packets observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::packet::PacketId;

    fn a(s: &str) -> Ipv4Address {
        s.parse().unwrap()
    }

    fn voip_sender() -> TrafficSender {
        TrafficSender::new(
            FlowSpec::voip_g711(),
            1,
            a("10.0.0.1"),
            a("10.0.0.2"),
            Instant::from_secs(1),
            99,
        )
    }

    #[test]
    fn header_roundtrip() {
        let mut buf = vec![0u8; 32];
        encode_header(&mut buf, 42, 7, Instant::from_micros(123_456));
        assert_eq!(parse_header(&buf), Some((42, 7, Instant::from_micros(123_456))));
        assert_eq!(parse_header(&buf[..8]), None);
    }

    #[test]
    fn sender_emits_on_schedule() {
        let mut s = voip_sender();
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        assert_eq!(s.next_departure(), Some(Instant::from_secs(1)));
        // Too early: nothing.
        assert!(s.emit(Instant::from_millis(500), &mut ids, &mut pool).is_none());
        let p = s.emit(Instant::from_secs(1), &mut ids, &mut pool).unwrap();
        assert_eq!(p.payload.len(), 180);
        assert_eq!(p.src.port, 9_000);
        assert_eq!(p.dst.port, 9_001);
        // 50 pps → next at +20 ms.
        assert_eq!(s.next_departure(), Some(Instant::from_secs(1) + Duration::from_millis(20)));
    }

    #[test]
    fn sender_stops_at_duration() {
        let spec = FlowSpec::cbr(80_000, 100, Duration::from_secs(1));
        let mut s = TrafficSender::new(spec, 1, a("1.1.1.1"), a("2.2.2.2"), Instant::ZERO, 5);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let mut count = 0;
        while let Some(t) = s.next_departure() {
            let _ = s.emit(t, &mut ids, &mut pool).unwrap();
            count += 1;
        }
        // 80 kbps / 800 bits = 100 pps for 1 s.
        assert_eq!(count, 100);
        assert!(s.finished());
        assert_eq!(s.sent().len(), 100);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut s = voip_sender();
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        for expect in 0..10u32 {
            let t = s.next_departure().unwrap();
            let p = s.emit(t, &mut ids, &mut pool).unwrap();
            let (seq, flow, tx) = parse_header(&p.payload).unwrap();
            assert_eq!(seq, expect);
            assert_eq!(flow, 1);
            assert_eq!(tx, t);
        }
    }

    #[test]
    fn receiver_logs_and_echoes() {
        let mut s = voip_sender();
        let mut r = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let t = s.next_departure().unwrap();
        let p = s.emit(t, &mut ids, &mut pool).unwrap();
        let rx_at = t + Duration::from_millis(30);
        let echo = r.on_receive(rx_at, &p, &mut ids, &mut pool).expect("echo expected");
        assert_eq!(echo.dst, p.src);
        assert_eq!(echo.src, p.dst);
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.records()[0].owd(), Duration::from_millis(30));

        // The echo closes the RTT loop at the sender.
        s.on_receive(t + Duration::from_millis(55), &echo);
        assert_eq!(s.rtts().len(), 1);
        assert_eq!(s.rtts()[0].rtt, Duration::from_millis(55));
    }

    #[test]
    fn receiver_detects_duplicates() {
        let mut s = voip_sender();
        let mut r = TrafficReceiver::new(1, false);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let t = s.next_departure().unwrap();
        let p = s.emit(t, &mut ids, &mut pool).unwrap();
        assert!(r.on_receive(t, &p, &mut ids, &mut pool).is_none()); // echo off
        assert!(r.on_receive(t, &p, &mut ids, &mut pool).is_none()); // duplicate
        assert_eq!(r.records().len(), 1);
        assert_eq!(r.duplicates(), 1);
    }

    #[test]
    fn receiver_ignores_foreign_flows() {
        let mut s = voip_sender(); // flow 1
        let mut r = TrafficReceiver::new(2, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let t = s.next_departure().unwrap();
        let p = s.emit(t, &mut ids, &mut pool).unwrap();
        assert!(r.on_receive(t, &p, &mut ids, &mut pool).is_none());
        assert!(r.records().is_empty());
    }

    #[test]
    fn sender_ignores_foreign_echoes() {
        let mut s = voip_sender();
        let mut other = TrafficSender::new(
            FlowSpec::voip_g711(),
            9,
            a("3.3.3.3"),
            a("4.4.4.4"),
            Instant::ZERO,
            1,
        );
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let t = other.next_departure().unwrap();
        let foreign = other.emit(t, &mut ids, &mut pool).unwrap();
        s.on_receive(t, &foreign);
        assert!(s.rtts().is_empty());
    }

    #[test]
    fn malformed_payload_is_ignored() {
        let mut r = TrafficReceiver::new(1, true);
        let mut ids = PacketIdAllocator::new();
        let mut pool = BufferPool::new();
        let junk = Packet::udp(
            PacketId(0),
            Endpoint::new(a("1.1.1.1"), 1),
            Endpoint::new(a("2.2.2.2"), 2),
            vec![1, 2, 3],
            Instant::ZERO,
        );
        assert!(r.on_receive(Instant::ZERO, &junk, &mut ids, &mut pool).is_none());
    }
}
