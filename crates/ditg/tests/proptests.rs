//! Property-style tests for the traffic generator and decoder, driven by
//! the workspace's deterministic [`SimRng`] generator (the build
//! environment is offline, so no external property-testing crate is used).

use umtslab_ditg::agent::{RecvRecord, RttRecord, SentRecord};
use umtslab_ditg::{
    Decoder, Distribution, FlowSpec, IdtProcess, PsProcess, TrafficReceiver, TrafficSender,
};
use umtslab_net::packet::PacketIdAllocator;
use umtslab_net::wire::Ipv4Address;
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};

/// Randomized cases per property.
const CASES: u64 = 64;

fn a(s: &str) -> Ipv4Address {
    s.parse().unwrap()
}

/// IDT samples are strictly positive for every distribution family.
#[test]
fn idt_always_positive() {
    let mut meta = SimRng::seed_from_u64(0x0401);
    for _ in 0..CASES {
        let mean = meta.uniform(0.000_001, 1.0);
        let which = meta.uniform_u64(0, 5);
        let dist = match which {
            0 => Distribution::Constant { value: mean },
            1 => Distribution::Uniform { lo: 0.0, hi: mean * 2.0 },
            2 => Distribution::Exponential { mean },
            3 => Distribution::Normal { mean, std: mean },
            4 => Distribution::Pareto { scale: mean, shape: 1.5 },
            _ => Distribution::Cauchy { location: mean, scale: mean },
        };
        let idt = IdtProcess::new(dist);
        let mut rng = SimRng::seed_from_u64(meta.next_u64());
        for _ in 0..200 {
            assert!(idt.sample(&mut rng) >= IdtProcess::MIN_IDT);
        }
    }
}

/// PS samples always respect the clamp bounds and the header minimum.
#[test]
fn ps_always_in_bounds() {
    let mut meta = SimRng::seed_from_u64(0x0402);
    for _ in 0..CASES {
        let lo = meta.uniform_u64(0, 1999) as usize;
        let hi = lo + meta.uniform_u64(0, 1999) as usize;
        let mean = meta.uniform(0.0, 4000.0);
        let ps = PsProcess::new(Distribution::Normal { mean, std: mean / 2.0 + 1.0 }, lo, hi);
        let mut rng = SimRng::seed_from_u64(meta.next_u64());
        for _ in 0..200 {
            let v = ps.sample(&mut rng);
            assert!(v >= lo.max(PsProcess::MIN_PAYLOAD));
            assert!(v <= hi.max(PsProcess::MIN_PAYLOAD));
        }
    }
}

/// A sender emits exactly the packets its schedule dictates: strictly
/// increasing departures, consecutive sequence numbers, all within the
/// flow duration.
#[test]
fn sender_schedule_is_consistent() {
    let mut meta = SimRng::seed_from_u64(0x0403);
    for _ in 0..CASES {
        let pps = meta.uniform(1.0, 2000.0);
        let payload = meta.uniform_u64(16, 1399) as usize;
        let dur_ms = meta.uniform_u64(10, 1999);
        let seed = meta.next_u64();
        let mut spec = FlowSpec::cbr(
            (pps * payload as f64 * 8.0) as u64,
            payload,
            Duration::from_millis(dur_ms),
        );
        spec.idt = IdtProcess::new(Distribution::Exponential { mean: 1.0 / pps });
        let start = Instant::from_secs(1);
        let mut s = TrafficSender::new(spec, 1, a("1.1.1.1"), a("2.2.2.2"), start, seed);
        let mut ids = PacketIdAllocator::new();
        let mut pool = umtslab_net::bytes::BufferPool::new();
        let mut last = None;
        let mut expected_seq = 0u32;
        while let Some(t) = s.next_departure() {
            assert!(t >= start);
            assert!(t < start + Duration::from_millis(dur_ms));
            if let Some(prev) = last {
                assert!(t > prev, "departures must strictly increase");
            }
            last = Some(t);
            let p = s.emit(t, &mut ids, &mut pool).unwrap();
            let (seq, _, tx) = umtslab_ditg::agent::parse_header(&p.payload).unwrap();
            assert_eq!(seq, expected_seq);
            assert_eq!(tx, t);
            expected_seq += 1;
        }
        assert_eq!(s.sent().len(), expected_seq as usize);
    }
}

/// Receiver + decoder bookkeeping: received + lost == sent, duplicates
/// never inflate the records, and the decoder's per-window loss totals
/// match the summary.
#[test]
fn decode_conservation() {
    let mut meta = SimRng::seed_from_u64(0x0404);
    for _ in 0..CASES {
        let n = meta.uniform_u64(1, 299) as usize;
        let delay_ms = meta.uniform_u64(1, 499);
        let spec = FlowSpec::cbr(80_000, 100, Duration::from_secs(30));
        let mut s = TrafficSender::new(spec, 1, a("1.1.1.1"), a("2.2.2.2"), Instant::ZERO, 1);
        let mut r = TrafficReceiver::new(1, false);
        let mut ids = PacketIdAllocator::new();
        let mut pool = umtslab_net::bytes::BufferPool::new();
        let mut emitted = Vec::new();
        for _ in 0..n {
            let Some(t) = s.next_departure() else { break };
            emitted.push((t, s.emit(t, &mut ids, &mut pool).unwrap()));
        }
        let mut delivered = 0u64;
        for (t, p) in &emitted {
            if meta.chance(0.4) {
                continue; // dropped in transit
            }
            let rx_at = *t + Duration::from_millis(delay_ms);
            let _ = r.on_receive(rx_at, p, &mut ids, &mut pool);
            delivered += 1;
            if meta.chance(0.3) {
                // A duplicate delivery must not inflate the records.
                let _ = r.on_receive(rx_at + Duration::from_millis(1), p, &mut ids, &mut pool);
            }
        }
        assert_eq!(r.records().len() as u64, delivered);
        let decoder = Decoder::paper();
        let summary = decoder.summary(s.sent(), r.records(), &[]);
        assert_eq!(summary.sent, emitted.len() as u64);
        assert_eq!(summary.received, delivered);
        assert_eq!(summary.lost, emitted.len() as u64 - delivered);

        let series =
            decoder.series(Instant::ZERO, Duration::from_secs(30), s.sent(), r.records(), &[]);
        let windowed_lost: u64 = series.points.iter().map(|p| p.lost).sum();
        let windowed_recv: u64 = series.points.iter().map(|p| p.received).sum();
        assert_eq!(windowed_lost, summary.lost);
        assert_eq!(windowed_recv, summary.received);
    }
}

/// Window partition covers every record exactly once: total bytes in
/// windows equals total received bytes.
#[test]
fn window_partition_is_exact() {
    let mut meta = SimRng::seed_from_u64(0x0405);
    for _ in 0..CASES {
        let n = meta.uniform_u64(1, 199) as usize;
        let mut sorted: Vec<(u64, usize)> = (0..n)
            .map(|_| (meta.uniform_u64(0, 59_999), meta.uniform_u64(16, 1399) as usize))
            .collect();
        sorted.sort_unstable();
        let recv: Vec<RecvRecord> = sorted
            .iter()
            .enumerate()
            .map(|(i, (rx_ms, size))| RecvRecord {
                seq: i as u32,
                tx: Instant::from_millis(rx_ms.saturating_sub(5)),
                rx: Instant::from_millis(*rx_ms),
                payload: *size,
            })
            .collect();
        let decoder = Decoder::with_window(Duration::from_millis(200));
        let series = decoder.series(Instant::ZERO, Duration::from_secs(60), &[], &recv, &[]);
        let total_rate: f64 = series.points.iter().map(|p| p.bitrate_bps).sum::<f64>() * 0.2;
        let total_bytes: usize = recv.iter().map(|r| r.payload).sum();
        assert!(
            (total_rate - total_bytes as f64 * 8.0).abs() < 1.0,
            "windowed bits {} vs actual {}",
            total_rate,
            total_bytes * 8
        );
        let count: u64 = series.points.iter().map(|p| p.received).sum();
        assert_eq!(count, recv.len() as u64);
    }
}

/// RTT assignment: every probe lands in exactly one window and window
/// means stay within [min, max] of the samples in that window.
#[test]
fn rtt_window_means_are_bounded() {
    let mut meta = SimRng::seed_from_u64(0x0406);
    for _ in 0..CASES {
        let n = meta.uniform_u64(1, 99) as usize;
        let rtts: Vec<RttRecord> = (0..n)
            .map(|i| RttRecord {
                seq: i as u32,
                tx: Instant::from_millis(meta.uniform_u64(0, 9_999)),
                rtt: Duration::from_millis(meta.uniform_u64(1, 4_999)),
            })
            .collect();
        let decoder = Decoder::paper();
        let series = decoder.series(Instant::ZERO, Duration::from_secs(10), &[], &[], &rtts);
        let windows_with_rtt = series.points.iter().filter(|p| p.rtt.is_some()).count();
        assert!(windows_with_rtt >= 1);
        let lo = rtts.iter().map(|r| r.rtt).min().unwrap();
        let hi = rtts.iter().map(|r| r.rtt).max().unwrap();
        for p in &series.points {
            if let Some(rtt) = p.rtt {
                assert!(rtt >= lo && rtt <= hi);
            }
        }
    }
}

/// Sent records have monotonically increasing tx and match emissions
/// (sanity for the SentRecord log used in loss attribution).
#[test]
fn sent_log_matches_emissions() {
    let mut meta = SimRng::seed_from_u64(0x0407);
    for _ in 0..CASES {
        let spec = FlowSpec::poisson(500.0, 64, Duration::from_millis(200));
        let mut s =
            TrafficSender::new(spec, 3, a("1.1.1.1"), a("2.2.2.2"), Instant::ZERO, meta.next_u64());
        let mut ids = PacketIdAllocator::new();
        let mut pool = umtslab_net::bytes::BufferPool::new();
        while let Some(t) = s.next_departure() {
            let _ = s.emit(t, &mut ids, &mut pool);
        }
        let sent: &[SentRecord] = s.sent();
        for w in sent.windows(2) {
            assert!(w[1].tx > w[0].tx);
            assert_eq!(w[1].seq, w[0].seq + 1);
        }
    }
}
