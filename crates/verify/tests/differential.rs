//! Differential tests: the static analyzer against the live simulator.
//!
//! Every test builds a deterministic scenario, evaluates the full packet
//! class sweep statically, replays the very same packets through
//! `Node::send_from_slice`, and asserts verdict agreement. The analyzer is
//! only trusted because these tests hold.

use umtslab_verify::differential::{replay_sweep, replay_witnesses};
use umtslab_verify::invariants::{analyze, InvariantKind};
use umtslab_verify::scenarios;

/// Formats the disagreeing replays of a differential result for assertion
/// messages.
fn disagreements(result: &umtslab_verify::differential::DifferentialResult) -> String {
    result
        .replays
        .iter()
        .filter(|r| !r.agrees)
        .map(|r| {
            format!(
                "  {:?} src={} dst={}:{} static={} live={}",
                r.witness.class.sender,
                r.witness.class.src,
                r.witness.class.dst,
                r.witness.class.dport,
                r.witness.verdict.label(),
                r.live.label()
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn two_slice_bearer_up_sweep_agrees_with_live_node() {
    let mut scenario = scenarios::two_slice_correct();
    let result = replay_sweep(&mut scenario.node, scenario.now);
    assert!(!result.replays.is_empty(), "sweep must replay slice classes");
    assert!(
        result.all_agree(),
        "static/live divergence on bearer-up node:\n{}",
        disagreements(&result)
    );
}

#[test]
fn bearer_down_sweep_agrees_with_live_node() {
    let mut scenario = scenarios::bearer_down_correct();
    let result = replay_sweep(&mut scenario.node, scenario.now);
    assert!(!result.replays.is_empty());
    assert!(
        result.all_agree(),
        "static/live divergence on bearer-down node:\n{}",
        disagreements(&result)
    );
}

#[test]
fn mark_collision_witnesses_reproduce_live() {
    let mut scenario = scenarios::mark_collision();
    let analysis = analyze(&scenario.node);
    assert!(analysis.kinds().contains(&InvariantKind::CrossSliceEgress));
    let result = replay_witnesses(&mut scenario.node, scenario.now, &analysis);
    assert!(!result.replays.is_empty(), "cross-slice witnesses must be replayable");
    assert!(result.all_agree(), "a witness did not reproduce live:\n{}", disagreements(&result));
}

#[test]
fn mark_collision_full_sweep_agrees_with_live_node() {
    let mut scenario = scenarios::mark_collision();
    let result = replay_sweep(&mut scenario.node, scenario.now);
    assert!(
        result.all_agree(),
        "static/live divergence on mark-collision node:\n{}",
        disagreements(&result)
    );
}

#[test]
fn shadowed_filter_witnesses_reproduce_live() {
    let mut scenario = scenarios::shadowed_filter();
    let analysis = analyze(&scenario.node);
    assert!(analysis.kinds().contains(&InvariantKind::ShadowedRule));
    let result = replay_witnesses(&mut scenario.node, scenario.now, &analysis);
    assert!(!result.replays.is_empty());
    assert!(result.all_agree(), "a witness did not reproduce live:\n{}", disagreements(&result));
}

#[test]
fn kernel_classes_are_skipped_not_faked() {
    let mut scenario = scenarios::two_slice_correct();
    let result = replay_sweep(&mut scenario.node, scenario.now);
    assert!(result.skipped > 0, "kernel pseudo-sender classes cannot go through the slice API");
}

#[test]
fn campaign_hash_is_stable_across_runs() {
    let check = umtslab_verify::determinism::check();
    assert!(
        check.deterministic(),
        "campaign diverged: {:016x} vs {:016x}",
        check.first,
        check.second
    );
}

/// The debug-assert hook: a correctly configured testbed passes its own
/// per-node audit after every event, and the audit stays clean at the end.
#[test]
fn testbed_audit_stays_clean_through_a_run() {
    let mut tb = umtslab::Testbed::new(42);
    let access = umtslab::prelude::LinkConfig::wired(
        100_000_000,
        umtslab_sim::time::Duration::from_millis(5),
    );
    let node = tb.add_node(
        "auditee.onelab.eu",
        umtslab_net::wire::Ipv4Address::new(10, 20, 0, 2),
        "10.20.0.0/24".parse().expect("prefix"),
        umtslab_net::wire::Ipv4Address::new(10, 20, 0, 1),
        access,
    );
    tb.attach_umts(
        node,
        umtslab_umts::operator::OperatorProfile::commercial_italy(),
        umtslab_umts::at::DeviceProfile::option_globetrotter(),
        Some(umtslab_umts::ppp::Credentials::new("web", "web")),
    );
    let slice = tb.node_mut(node).slices.create("auditor");
    tb.node_mut(node).grant_umts_access(slice);
    tb.node_mut(node)
        .vsys_submit(slice, umtslab_planetlab::umtscmd::UmtsRequest::Start)
        .expect("granted");
    // run_until itself debug-asserts every node audit after each event.
    tb.run_until(umtslab_sim::time::Instant::from_secs(40));
    for n in tb.nodes() {
        assert!(n.audit().is_empty(), "audit found: {:?}", n.audit());
        let analysis = analyze(n);
        assert!(
            analysis.is_clean(),
            "verifier found violations on a correct testbed node: {:?}",
            analysis.kinds()
        );
    }
}
