//! `umtslab-verify` — CI entry point for the static isolation verifier.
//!
//! ```text
//! umtslab-verify --all-scenarios [--json]   verify every canned scenario
//! umtslab-verify --scenario NAME [--json]   verify one scenario
//! umtslab-verify --determinism              run-twice campaign hash gate
//! umtslab-verify --chaos                    supervised chaos campaign gate
//! umtslab-verify --chaos-determinism        run-twice chaos hash gate
//! umtslab-verify --list                     list scenario names
//! ```
//!
//! Exit status is 0 when every scenario meets its expectation (correct
//! nodes clean, seeded bugs detected with exactly the expected invariant
//! kinds) *and* every replayed witness agrees with the live simulator;
//! 1 otherwise. `--determinism` exits 0 iff two full campaign runs hash
//! identically.

use std::process::ExitCode;

use umtslab_verify::differential::replay_witnesses;
use umtslab_verify::invariants::analyze;
use umtslab_verify::report::{render_json, render_table};
use umtslab_verify::scenarios::{self, Scenario, SCENARIO_NAMES};
use umtslab_verify::{chaos, determinism, Analysis};

struct Options {
    all: bool,
    scenario: Option<String>,
    json: bool,
    determinism: bool,
    chaos: bool,
    chaos_determinism: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all: false,
        scenario: None,
        json: false,
        determinism: false,
        chaos: false,
        chaos_determinism: false,
        list: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--all-scenarios" => opts.all = true,
            "--scenario" => {
                i += 1;
                let name = args.get(i).ok_or("--scenario requires a name")?;
                opts.scenario = Some(name.clone());
            }
            "--json" => opts.json = true,
            "--determinism" => opts.determinism = true,
            "--chaos" => opts.chaos = true,
            "--chaos-determinism" => opts.chaos_determinism = true,
            "--list" => opts.list = true,
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
        i += 1;
    }
    if !opts.all
        && opts.scenario.is_none()
        && !opts.determinism
        && !opts.chaos
        && !opts.chaos_determinism
        && !opts.list
    {
        return Err("nothing to do: pass --all-scenarios, --scenario NAME, \
                    --determinism, --chaos, --chaos-determinism or --list"
            .to_string());
    }
    Ok(opts)
}

fn print_help() {
    println!(
        "umtslab-verify — static slice-isolation verifier\n\n\
         USAGE:\n  umtslab-verify --all-scenarios [--json]\n  \
         umtslab-verify --scenario NAME [--json]\n  \
         umtslab-verify --determinism\n  umtslab-verify --chaos\n  \
         umtslab-verify --chaos-determinism\n  umtslab-verify --list\n\n\
         Scenarios: {}",
        SCENARIO_NAMES.join(", ")
    );
}

/// Verifies one scenario end to end: analyze, check the expectation both
/// ways, replay every witness differentially. Returns the analysis plus
/// whether the scenario passed.
fn verify_scenario(mut scenario: Scenario) -> (Analysis, bool) {
    let analysis = analyze(&scenario.node);
    let kinds = analysis.kinds();
    let expectation_met = scenario.expected.iter().all(|k| kinds.contains(k))
        && kinds.iter().all(|k| scenario.expected.contains(k));
    let diff = replay_witnesses(&mut scenario.node, scenario.now, &analysis);
    if !expectation_met {
        eprintln!(
            "{}: expected invariants {:?}, analyzer reported {:?}",
            scenario.name,
            scenario.expected.iter().map(|k| k.name()).collect::<Vec<_>>(),
            kinds.iter().map(|k| k.name()).collect::<Vec<_>>()
        );
    }
    for replay in diff.replays.iter().filter(|r| !r.agrees) {
        eprintln!(
            "{}: differential mismatch: static {} vs live {} for src={} dst={}:{}",
            scenario.name,
            replay.witness.verdict.label(),
            replay.live.label(),
            replay.witness.class.src,
            replay.witness.class.dst,
            replay.witness.class.dport
        );
    }
    (analysis, expectation_met && diff.all_agree())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            print_help();
            return ExitCode::FAILURE;
        }
    };

    if opts.list {
        for name in SCENARIO_NAMES {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    if opts.determinism {
        let check = determinism::check();
        println!(
            "determinism: run1={:016x} run2={:016x} -> {}",
            check.first,
            check.second,
            if check.deterministic() { "identical" } else { "DIVERGED" }
        );
        return if check.deterministic() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if opts.chaos {
        let check = chaos::run(chaos::DEFAULT_SEED);
        let a = check.report.availability;
        println!(
            "chaos: faults={} established={} drops={} redials={} \
             uptime={:.1}% checkpoints={} -> {}",
            a.faults_injected,
            a.sessions_established,
            a.session_drops,
            a.redials,
            a.uptime_fraction().unwrap_or(0.0) * 100.0,
            check.checkpoints,
            if check.passed() { "pass" } else { "FAIL" }
        );
        for v in &check.violations {
            eprintln!("chaos violation: {v}");
        }
        return if check.passed() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if opts.chaos_determinism {
        let check = chaos::check(chaos::DEFAULT_SEED);
        println!(
            "chaos-determinism: run1={:016x} run2={:016x} -> {}",
            check.first,
            check.second,
            if check.deterministic() { "identical" } else { "DIVERGED" }
        );
        return if check.deterministic() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let names: Vec<&str> = if opts.all {
        SCENARIO_NAMES.to_vec()
    } else {
        vec![opts.scenario.as_deref().unwrap_or_default()]
    };

    let mut analyses = Vec::new();
    let mut ok = true;
    for name in names {
        let Some(scenario) = scenarios::build(name) else {
            eprintln!("error: unknown scenario '{name}' (try --list)");
            return ExitCode::FAILURE;
        };
        let expect_clean = scenario.expected.is_empty();
        let (analysis, passed) = verify_scenario(scenario);
        if !opts.json {
            println!(
                "scenario {name} ({}): {}",
                if expect_clean { "expected clean" } else { "seeded bug" },
                if passed { "pass" } else { "FAIL" }
            );
            print!("{}", render_table(&analysis));
        }
        analyses.push(analysis);
        ok &= passed;
    }
    if opts.json {
        print!("{}", render_json(&analyses));
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
