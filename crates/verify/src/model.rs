//! A read-only snapshot of one node's policy state.
//!
//! The analyzer never touches a live [`Node`] while reasoning: it first
//! copies every piece of state that influences the fate of a locally
//! emitted packet — slices and their marks, interfaces, the policy-rule
//! list, every routing table, both firewall chains, the socket table and
//! the UMTS control-plane phase — into a [`NodeModel`]. Working on a
//! snapshot keeps the evaluation side-effect free (live chains count rule
//! hits) and makes the analysis independent of simulation time.

use umtslab_net::filter::{FilterRule, FilterVerdict};
use umtslab_net::iface::IfaceId;
use umtslab_net::packet::Mark;
use umtslab_net::route::{PolicyRule, Route, TableId};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::Node;
use umtslab_planetlab::slice::SliceId;
use umtslab_planetlab::umtscmd::UmtsPhase;

/// Interface state the data path consults.
#[derive(Debug, Clone)]
pub struct IfaceModel {
    /// Node-local interface id.
    pub id: IfaceId,
    /// Human name (`eth0`, `ppp0`, `lo`).
    pub name: String,
    /// Configured address (unspecified while down).
    pub addr: Ipv4Address,
    /// Peer address, for point-to-point interfaces.
    pub peer: Option<Ipv4Address>,
    /// Administrative state.
    pub up: bool,
}

/// A slice and its VNET+ classification mark.
#[derive(Debug, Clone)]
pub struct SliceModel {
    /// Context id.
    pub id: SliceId,
    /// Human name.
    pub name: String,
    /// The mark stamped on this slice's packets.
    pub mark: Mark,
}

/// One firewall chain: its rules in evaluation order plus the default
/// policy applied when no rule decides.
#[derive(Debug, Clone)]
pub struct ChainModel {
    /// Chain name, for diagnostics (`mangle/OUTPUT`, `filter/POSTROUTING`).
    pub name: String,
    /// Rules in evaluation order.
    pub rules: Vec<FilterRule>,
    /// Default verdict.
    pub policy: FilterVerdict,
}

/// The complete static snapshot of a node's policy state.
#[derive(Debug, Clone)]
pub struct NodeModel {
    /// Node name.
    pub name: String,
    /// Slices in creation order.
    pub slices: Vec<SliceModel>,
    /// Interfaces in id order.
    pub ifaces: Vec<IfaceModel>,
    /// Policy rules in scan order.
    pub rules: Vec<PolicyRule>,
    /// Routing tables in ascending id order, each with its routes in
    /// insertion order.
    pub tables: Vec<(TableId, Vec<Route>)>,
    /// The mangle/OUTPUT chain.
    pub mangle: ChainModel,
    /// The filter/POSTROUTING (egress) chain.
    pub egress: ChainModel,
    /// Bound UDP ports with their owning slices, in port order.
    pub bound_ports: Vec<(u16, SliceId)>,
    /// Whether a 3G card is installed.
    pub has_umts: bool,
    /// UMTS connection phase at snapshot time.
    pub umts_phase: UmtsPhase,
    /// Slice holding the UMTS lock, if any.
    pub umts_owner: Option<SliceId>,
    /// Destinations registered for UMTS routing.
    pub umts_destinations: Vec<Ipv4Cidr>,
    /// Slices allowed to invoke the `umts` vsys script.
    pub umts_acl: Vec<SliceId>,
}

impl NodeModel {
    /// Snapshots a node's policy state through its read-only accessors.
    pub fn capture(node: &Node) -> NodeModel {
        let status = node.umts_status();
        NodeModel {
            name: node.name.to_string(),
            slices: node
                .slices
                .iter()
                .map(|s| SliceModel { id: s.id, name: s.name.to_string(), mark: s.mark })
                .collect(),
            ifaces: node
                .ifaces()
                .map(|i| IfaceModel {
                    id: i.id,
                    name: i.name.clone(),
                    addr: i.addr,
                    peer: i.peer,
                    up: i.up,
                })
                .collect(),
            rules: node.rib.rules().to_vec(),
            tables: node.rib.tables().map(|(id, t)| (id, t.routes().to_vec())).collect(),
            mangle: ChainModel {
                name: node.firewall.mangle_output.name.clone(),
                rules: node.firewall.mangle_output.rules().to_vec(),
                policy: node.firewall.mangle_output.policy,
            },
            egress: ChainModel {
                name: node.firewall.egress.name.clone(),
                rules: node.firewall.egress.rules().to_vec(),
                policy: node.firewall.egress.policy,
            },
            bound_ports: node.bound_ports(),
            has_umts: node.has_umts(),
            umts_phase: status.phase,
            umts_owner: status.owner,
            umts_destinations: status.destinations,
            umts_acl: node.umts_acl().to_vec(),
        }
    }

    /// The mark of a slice, if it exists.
    pub fn mark_of(&self, slice: SliceId) -> Option<Mark> {
        self.slices.iter().find(|s| s.id == slice).map(|s| s.mark)
    }

    /// The interface with the given id.
    pub fn iface(&self, id: IfaceId) -> Option<&IfaceModel> {
        self.ifaces.iter().find(|i| i.id == id)
    }

    /// True if `addr` is one of this node's up interface addresses (the
    /// local-delivery test the data path performs before routing).
    pub fn is_local_addr(&self, addr: Ipv4Address) -> bool {
        self.ifaces.iter().any(|i| i.up && i.addr == addr)
    }

    /// The address configured on `ppp0`, if the bearer is up.
    pub fn ppp_addr(&self) -> Option<Ipv4Address> {
        self.ifaces.iter().find(|i| i.id == umtslab_planetlab::node::PPP0 && i.up).map(|i| i.addr)
    }

    /// The slice bound to a UDP port, if any.
    pub fn port_owner(&self, port: u16) -> Option<SliceId> {
        self.bound_ports.iter().find(|(p, _)| *p == port).map(|(_, s)| *s)
    }

    /// The routes of a table, if the table exists.
    pub fn table(&self, id: TableId) -> Option<&[Route]> {
        self.tables.iter().find(|(t, _)| *t == id).map(|(_, r)| r.as_slice())
    }
}
