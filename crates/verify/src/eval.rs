//! The static packet evaluator.
//!
//! [`evaluate`] walks one [`PacketClass`] through the same decision
//! sequence `Node::send_from_slice` applies to a live packet — VNET+ mark
//! stamping, the local-delivery test, policy-rule scan with
//! longest-prefix-match table lookup, kernel source-address selection, the
//! interface-up check, the mangle and egress firewall chains, and finally
//! the bearer hand-off — without simulating any traffic. Along the way it
//! records the *admitting chain*: every rule and route that decided the
//! packet's fate, in the order they fired.
//!
//! The evaluator also feeds [`SweepCounters`]: for every policy rule,
//! route and filter rule it tracks how often the entity actually decided
//! a packet versus how often it *would have matched* had an earlier entry
//! not captured the packet first. An entity with would-match hits but no
//! real hits across a whole sweep is shadowed — dead policy the operator
//! probably believes is active.

use umtslab_net::filter::{FilterVerdict, Target};
use umtslab_net::iface::IfaceId;
use umtslab_net::packet::Mark;
use umtslab_net::route::{FlowKey, Route, TableId};
use umtslab_net::trace::TraceKind;
use umtslab_net::wire::Ipv4Address;
use umtslab_planetlab::node::PPP0;
use umtslab_planetlab::umtscmd::UmtsPhase;

use crate::classes::{PacketClass, Sender};
use crate::model::{ChainModel, NodeModel};

/// The statically predicted fate of a packet class. Mirrors
/// `EgressAction` so the differential harness can compare verdicts
/// one-to-one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticVerdict {
    /// Transmitted on a wired interface.
    Wire(IfaceId),
    /// Handed to the UMTS attachment (uplink bearer).
    Umts,
    /// Delivered to a local socket.
    Local,
    /// Dropped, with the trace kind the live node would record.
    Drop(TraceKind),
}

impl StaticVerdict {
    /// Compact label used in reports and hashes.
    pub fn label(self) -> String {
        match self {
            StaticVerdict::Wire(dev) => format!("wire({dev})"),
            StaticVerdict::Umts => "umts".to_string(),
            StaticVerdict::Local => "local".to_string(),
            StaticVerdict::Drop(kind) => format!("{kind}"),
        }
    }
}

/// The full outcome of evaluating one class.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Predicted fate.
    pub verdict: StaticVerdict,
    /// Source address after kernel source selection.
    pub src: Ipv4Address,
    /// Mark after stamping and mangle.
    pub mark: Mark,
    /// Egress interface chosen by routing, if routing was reached.
    pub egress_dev: Option<IfaceId>,
    /// The admitting chain: each rule/route/filter that decided the fate.
    pub chain: Vec<String>,
}

/// Per-entity hit/shadow counters accumulated over a sweep.
#[derive(Debug, Clone, Default)]
pub struct HitCounter {
    /// Times the entity actually decided a packet.
    pub hits: u64,
    /// Times it would have matched but an earlier entity had already
    /// captured the packet.
    pub shadowed: u64,
    /// A witness class for the first shadowed match.
    pub shadow_witness: Option<PacketClass>,
    /// What captured the shadowed packet first.
    pub shadowed_by: Option<String>,
}

impl HitCounter {
    fn record_shadow(&mut self, class: &PacketClass, by: &str) {
        self.shadowed += 1;
        if self.shadow_witness.is_none() {
            self.shadow_witness = Some(*class);
            self.shadowed_by = Some(by.to_string());
        }
    }
}

/// Counters for every rule, route and filter entry in a node model. The
/// vectors are parallel to the model's own ordering.
#[derive(Debug, Clone, Default)]
pub struct SweepCounters {
    /// One counter per policy rule, in scan order.
    pub rules: Vec<HitCounter>,
    /// One counter per `(table, route index)`, flattened in table order.
    pub routes: Vec<(TableId, usize, HitCounter)>,
    /// One counter per mangle rule, in chain order.
    pub mangle: Vec<HitCounter>,
    /// One counter per egress rule, in chain order.
    pub egress: Vec<HitCounter>,
}

impl SweepCounters {
    /// Creates counters shaped after a model.
    pub fn for_model(model: &NodeModel) -> SweepCounters {
        SweepCounters {
            rules: vec![HitCounter::default(); model.rules.len()],
            routes: model
                .tables
                .iter()
                .flat_map(|(id, routes)| (0..routes.len()).map(|i| (*id, i, HitCounter::default())))
                .collect(),
            mangle: vec![HitCounter::default(); model.mangle.rules.len()],
            egress: vec![HitCounter::default(); model.egress.rules.len()],
        }
    }

    fn route_counter(&mut self, table: TableId, index: usize) -> &mut HitCounter {
        let entry = self
            .routes
            .iter_mut()
            .find(|(t, i, _)| *t == table && *i == index)
            .expect("counter exists for every model route");
        &mut entry.2
    }
}

/// Longest-prefix-match over a route list, mirroring
/// `RoutingTable::lookup` (ties by lowest metric, then insertion order).
/// Returns the winning route's index.
fn lookup(routes: &[Route], dst: Ipv4Address) -> Option<usize> {
    let mut best: Option<usize> = None;
    for (i, route) in routes.iter().enumerate() {
        if !route.dest.contains(dst) {
            continue;
        }
        match best {
            None => best = Some(i),
            Some(b) => {
                let cur = &routes[b];
                // `max_by` keeps the *later* element on ties, and orders by
                // (prefix_len asc, metric desc) — so a candidate wins when
                // its prefix is longer, or equal-length with metric <=.
                if route.dest.prefix_len() > cur.dest.prefix_len()
                    || (route.dest.prefix_len() == cur.dest.prefix_len()
                        && route.metric <= cur.metric)
                {
                    best = Some(i);
                }
            }
        }
    }
    best
}

struct RibOutcome {
    dev: IfaceId,
    prefsrc: Option<Ipv4Address>,
    rule_priority: u32,
    table: TableId,
    chain: Vec<String>,
}

/// Scans the policy rules as `Rib::resolve` does, recording counters: the
/// selecting rule and route get real hits, every later rule/route that
/// would also have resolved the flow gets a shadow mark.
fn resolve(
    model: &NodeModel,
    counters: &mut SweepCounters,
    class: &PacketClass,
    key: &FlowKey,
) -> Option<RibOutcome> {
    let mut selected: Option<RibOutcome> = None;
    let mut captured_by: Option<String> = None;
    for (ri, rule) in model.rules.iter().enumerate() {
        if !rule.selector.matches(key) {
            continue;
        }
        let Some(routes) = model.table(rule.table) else {
            continue;
        };
        let Some(route_idx) = lookup(routes, key.dst) else {
            // A matching rule whose table has no route continues the scan
            // (Linux semantics); it neither decides nor shadows.
            continue;
        };
        let route = &routes[route_idx];
        let rule_desc = format!(
            "ip rule pref {} {} lookup table {}",
            rule.priority,
            selector_desc(rule),
            rule.table.0
        );
        let route_desc = format!("table {}: {} dev {}", rule.table.0, route.dest, route.dev);
        if let Some(by) = &captured_by {
            let by = by.clone();
            counters.rules[ri].record_shadow(class, &by);
            counters.route_counter(rule.table, route_idx).record_shadow(class, &by);
        } else {
            counters.rules[ri].hits += 1;
            counters.route_counter(rule.table, route_idx).hits += 1;
            selected = Some(RibOutcome {
                dev: route.dev,
                prefsrc: route.prefsrc,
                rule_priority: rule.priority,
                table: rule.table,
                chain: vec![rule_desc.clone(), route_desc],
            });
            captured_by = Some(rule_desc);
        }
    }
    selected
}

fn selector_desc(rule: &umtslab_net::route::PolicyRule) -> String {
    let mut parts = Vec::new();
    if let Some(m) = rule.selector.fwmark {
        parts.push(format!("fwmark {}", m.0));
    }
    if let Some(src) = rule.selector.src {
        parts.push(format!("from {src}"));
    }
    if let Some(dst) = rule.selector.dst {
        parts.push(format!("to {dst}"));
    }
    if parts.is_empty() {
        parts.push("from all".to_string());
    }
    parts.join(" ")
}

struct ChainOutcome {
    verdict: FilterVerdict,
    mark: Mark,
    chain: Vec<String>,
}

/// Walks a firewall chain as `Chain::evaluate` does, but keeps walking
/// *virtually* past the first terminal rule so later rules that would have
/// matched are recorded as shadowed. `SetMark` targets keep mutating the
/// virtual packet state even in the shadowed region, mirroring what the
/// chain would do were the terminal rule removed.
fn run_chain(
    chain_model: &ChainModel,
    counters: &mut [HitCounter],
    class: &PacketClass,
    src: Ipv4Address,
    mark: Mark,
    out_dev: IfaceId,
) -> ChainOutcome {
    let mut live_mark = mark;
    let mut virtual_mark = mark;
    let mut verdict: Option<FilterVerdict> = None;
    let mut decided_by: Option<String> = None;
    let mut admitted = Vec::new();
    for (i, rule) in chain_model.rules.iter().enumerate() {
        let probe_mark = if verdict.is_none() { live_mark } else { virtual_mark };
        if !matches_static(rule, src, class.dst, probe_mark, out_dev) {
            continue;
        }
        let desc = format!(
            "{} #{} {:?} ({})",
            chain_model.name,
            i + 1,
            rule.target,
            if rule.comment.is_empty() { "uncommented" } else { &rule.comment }
        );
        if let Some(by) = &decided_by {
            let by = by.clone();
            counters[i].record_shadow(class, &by);
            if let Target::SetMark(m) = rule.target {
                virtual_mark = m;
            }
            continue;
        }
        counters[i].hits += 1;
        match rule.target {
            Target::Accept => {
                verdict = Some(FilterVerdict::Accept);
                decided_by = Some(desc.clone());
                admitted.push(desc);
                virtual_mark = live_mark;
            }
            Target::Drop => {
                verdict = Some(FilterVerdict::Drop);
                decided_by = Some(desc.clone());
                admitted.push(desc);
                virtual_mark = live_mark;
            }
            Target::SetMark(m) => {
                live_mark = m;
                virtual_mark = m;
                admitted.push(desc);
            }
        }
    }
    ChainOutcome {
        verdict: verdict.unwrap_or(chain_model.policy),
        mark: live_mark,
        chain: admitted,
    }
}

/// Static version of `FilterMatch::matches` for the local-output path
/// (no ingress interface, UDP protocol).
fn matches_static(
    rule: &umtslab_net::filter::FilterRule,
    src: Ipv4Address,
    dst: Ipv4Address,
    mark: Mark,
    out_dev: IfaceId,
) -> bool {
    let m = &rule.matcher;
    if let Some(dev) = m.out_dev {
        if dev != out_dev {
            return false;
        }
    }
    if m.in_dev.is_some() {
        // Locally generated packets have no ingress interface.
        return false;
    }
    if let Some(want) = m.mark {
        if mark != want {
            return false;
        }
    }
    if let Some(not) = m.not_mark {
        if mark == not {
            return false;
        }
    }
    if let Some(prefix) = m.src {
        if !prefix.contains(src) {
            return false;
        }
    }
    if let Some(prefix) = m.dst {
        if !prefix.contains(dst) {
            return false;
        }
    }
    if let Some(proto) = m.proto {
        if proto != umtslab_net::wire::Protocol::Udp {
            return false;
        }
    }
    true
}

/// Evaluates one packet class against the model, updating sweep counters.
pub fn evaluate(
    model: &NodeModel,
    counters: &mut SweepCounters,
    class: &PacketClass,
) -> Evaluation {
    let mut chain = Vec::new();

    // 1. VNET+ mark stamping (or the kernel's unmarked path).
    let mark = match class.sender {
        Sender::Slice(slice) => match model.mark_of(slice) {
            Some(m) => m,
            None => {
                return Evaluation {
                    verdict: StaticVerdict::Drop(TraceKind::DropFilter),
                    src: class.src,
                    mark: Mark::NONE,
                    egress_dev: None,
                    chain: vec!["no such slice".to_string()],
                };
            }
        },
        Sender::Kernel => Mark::NONE,
    };
    chain.push(format!("vnet+ stamps mark {}", mark.0));

    // 2. Local destination: delivered without touching the wire.
    if model.is_local_addr(class.dst) {
        return if model.port_owner(class.dport).is_some() {
            chain.push(format!("local delivery to bound port {}", class.dport));
            Evaluation {
                verdict: StaticVerdict::Local,
                src: class.src,
                mark,
                egress_dev: None,
                chain,
            }
        } else {
            chain.push(format!("local destination, port {} unbound", class.dport));
            Evaluation {
                verdict: StaticVerdict::Drop(TraceKind::DropNoSocket),
                src: class.src,
                mark,
                egress_dev: None,
                chain,
            }
        };
    }

    // 3. Policy routing.
    let key = FlowKey { src: class.src, dst: class.dst, mark };
    let Some(outcome) = resolve(model, counters, class, &key) else {
        chain.push("no rule yielded a route".to_string());
        return Evaluation {
            verdict: StaticVerdict::Drop(TraceKind::DropNoRoute),
            src: class.src,
            mark,
            egress_dev: None,
            chain,
        };
    };
    chain.extend(outcome.chain.iter().cloned());
    let _ = outcome.rule_priority;
    let _ = outcome.table;

    // 4. Kernel source-address selection for unbound sockets.
    let src = if class.src.is_unspecified() {
        let chosen = outcome
            .prefsrc
            .or_else(|| model.iface(outcome.dev).map(|i| i.addr))
            .unwrap_or(Ipv4Address::UNSPECIFIED);
        chain.push(format!("src selected: {chosen}"));
        chosen
    } else {
        class.src
    };

    // 5. Egress interface must be up.
    let iface_up = model.iface(outcome.dev).is_some_and(|i| i.up);
    if !iface_up {
        chain.push(format!("egress {} is down", outcome.dev));
        return Evaluation {
            verdict: StaticVerdict::Drop(TraceKind::DropNoRoute),
            src,
            mark,
            egress_dev: Some(outcome.dev),
            chain,
        };
    }

    // 6. Netfilter output path: mangle, then the egress filter.
    let mangle = run_chain(&model.mangle, &mut counters.mangle, class, src, mark, outcome.dev);
    chain.extend(mangle.chain.iter().cloned());
    if mangle.verdict == FilterVerdict::Drop {
        return Evaluation {
            verdict: StaticVerdict::Drop(TraceKind::DropFilter),
            src,
            mark: mangle.mark,
            egress_dev: Some(outcome.dev),
            chain,
        };
    }
    let egress =
        run_chain(&model.egress, &mut counters.egress, class, src, mangle.mark, outcome.dev);
    chain.extend(egress.chain.iter().cloned());
    if egress.verdict == FilterVerdict::Drop {
        return Evaluation {
            verdict: StaticVerdict::Drop(TraceKind::DropFilter),
            src,
            mark: egress.mark,
            egress_dev: Some(outcome.dev),
            chain,
        };
    }

    // 7. Bearer hand-off or wired transmission.
    if outcome.dev == PPP0 {
        if !model.has_umts {
            chain.push("no 3G card installed".to_string());
            return Evaluation {
                verdict: StaticVerdict::Drop(TraceKind::DropNoRoute),
                src,
                mark: egress.mark,
                egress_dev: Some(outcome.dev),
                chain,
            };
        }
        if model.umts_phase == UmtsPhase::Up {
            chain.push("queued on the UMTS uplink bearer".to_string());
            return Evaluation {
                verdict: StaticVerdict::Umts,
                src,
                mark: egress.mark,
                egress_dev: Some(outcome.dev),
                chain,
            };
        }
        chain.push("ppp0 chosen but the bearer is not up".to_string());
        return Evaluation {
            verdict: StaticVerdict::Drop(TraceKind::DropNoRoute),
            src,
            mark: egress.mark,
            egress_dev: Some(outcome.dev),
            chain,
        };
    }
    chain.push(format!("transmitted on {}", outcome.dev));
    Evaluation {
        verdict: StaticVerdict::Wire(outcome.dev),
        src,
        mark: egress.mark,
        egress_dev: Some(outcome.dev),
        chain,
    }
}
