//! Symbolic packet-class enumeration.
//!
//! The fate of a locally emitted packet depends only on a handful of
//! header fields — emitting slice (hence mark), source address,
//! destination address and destination port — and every rule, route and
//! filter in the node partitions that space along CIDR boundaries. Two
//! packets whose fields fall on the same side of *every* boundary are
//! routed and filtered identically, so it suffices to evaluate one
//! concrete representative per equivalence class.
//!
//! [`enumerate`] collects every prefix mentioned anywhere in the node's
//! policy (rule selectors, route destinations, filter matchers, interface
//! addresses and peers), derives boundary representatives from each
//! (network base, an interior address, the last covered address), adds a
//! canonical far-outside destination, and takes the cross product with
//! the senders (every slice plus the unmarked kernel path) and the
//! bound/unbound destination ports.

use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::slice::SliceId;

use crate::model::NodeModel;

/// The sender side of a packet class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sender {
    /// A slice emits through `send_from_slice` (mark stamped by VNET+).
    Slice(SliceId),
    /// The kernel emits (ICMP replies): no slice, mark zero. Not
    /// replayable through the slice API; used for static invariants only.
    Kernel,
}

/// One packet equivalence class, identified by a concrete representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketClass {
    /// Who emits the packet.
    pub sender: Sender,
    /// Source address (unspecified models an unbound socket).
    pub src: Ipv4Address,
    /// Destination address.
    pub dst: Ipv4Address,
    /// Destination UDP port.
    pub dport: u16,
}

/// A destination far from any prefix a testbed node ever configures; it
/// exercises the default-route fallback path.
pub const FAR_DESTINATION: Ipv4Address = Ipv4Address::new(192, 0, 2, 123);

fn push_unique(out: &mut Vec<Ipv4Address>, addr: Ipv4Address) {
    if !out.contains(&addr) {
        out.push(addr);
    }
}

/// Boundary representatives of one prefix: the network base, one interior
/// address and the last covered address.
fn representatives(out: &mut Vec<Ipv4Address>, cidr: Ipv4Cidr) {
    let base = cidr.address().to_u32();
    let span = match cidr.prefix_len() {
        0 => u32::MAX,
        len if len >= 32 => 0,
        len => !0u32 >> len,
    };
    push_unique(out, Ipv4Address::from_u32(base));
    push_unique(out, Ipv4Address::from_u32(base | (span >> 1)));
    push_unique(out, Ipv4Address::from_u32(base | span));
}

/// Every prefix the node's policy mentions anywhere.
fn policy_prefixes(model: &NodeModel) -> Vec<Ipv4Cidr> {
    let mut prefixes = Vec::new();
    let mut add = |c: Option<Ipv4Cidr>| {
        if let Some(c) = c {
            if !prefixes.contains(&c) {
                prefixes.push(c);
            }
        }
    };
    for rule in &model.rules {
        add(rule.selector.src);
        add(rule.selector.dst);
    }
    for (_, routes) in &model.tables {
        for route in routes {
            add(Some(route.dest));
        }
    }
    for chain in [&model.mangle, &model.egress] {
        for rule in &chain.rules {
            add(rule.matcher.src);
            add(rule.matcher.dst);
        }
    }
    for dest in &model.umts_destinations {
        add(Some(*dest));
    }
    prefixes
}

/// The candidate destination addresses for a node: boundary
/// representatives of every policy prefix, every interface address and
/// peer, and the canonical far-outside destination. Sorted numerically so
/// the sweep order — and therefore every report — is deterministic.
pub fn destination_candidates(model: &NodeModel) -> Vec<Ipv4Address> {
    let mut out = Vec::new();
    for cidr in policy_prefixes(model) {
        representatives(&mut out, cidr);
    }
    for iface in &model.ifaces {
        if !iface.addr.is_unspecified() {
            push_unique(&mut out, iface.addr);
        }
        if let Some(peer) = iface.peer {
            push_unique(&mut out, peer);
        }
    }
    push_unique(&mut out, FAR_DESTINATION);
    out.sort_by_key(|a| a.to_u32());
    out
}

/// The candidate source addresses: the unspecified address (an unbound
/// socket, the common case) plus every configured interface address — the
/// latter models a slice explicitly binding an address, including the
/// paper's special case of a foreign slice binding the UMTS address.
pub fn source_candidates(model: &NodeModel) -> Vec<Ipv4Address> {
    let mut out = vec![Ipv4Address::UNSPECIFIED];
    for iface in &model.ifaces {
        if iface.up && !iface.addr.is_unspecified() {
            push_unique(&mut out, iface.addr);
        }
    }
    out
}

/// The destination ports worth distinguishing: one bound port per owning
/// slice (local delivery succeeds) and one guaranteed-unbound port (local
/// delivery fails with no-socket).
pub fn port_candidates(model: &NodeModel) -> Vec<u16> {
    let mut out: Vec<u16> = model.bound_ports.iter().map(|(p, _)| *p).collect();
    let mut unbound = 40_000u16;
    while model.bound_ports.iter().any(|(p, _)| *p == unbound) {
        unbound += 1;
    }
    out.push(unbound);
    out
}

/// Enumerates the full packet-class sweep for a node.
pub fn enumerate(model: &NodeModel) -> Vec<PacketClass> {
    let dsts = destination_candidates(model);
    let srcs = source_candidates(model);
    let ports = port_candidates(model);
    let mut senders: Vec<Sender> = model.slices.iter().map(|s| Sender::Slice(s.id)).collect();
    senders.push(Sender::Kernel);

    let mut classes = Vec::with_capacity(senders.len() * srcs.len() * dsts.len() * ports.len());
    for &sender in &senders {
        for &src in &srcs {
            for &dst in &dsts {
                for &dport in &ports {
                    classes.push(PacketClass { sender, src, dst, dport });
                }
            }
        }
    }
    classes
}
