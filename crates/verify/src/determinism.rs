//! Run-twice determinism gate.
//!
//! The simulator promises that identical inputs produce identical event
//! streams, and the analyzer promises that identical nodes produce
//! identical reports. [`campaign_hash`] runs the full scenario campaign —
//! build every scenario, analyze it, replay every witness differentially,
//! and collect each node's packet trace — and folds the entire event
//! stream into one FNV-1a hash. [`check`] runs the campaign twice from
//! scratch and compares the hashes; any divergence (iteration over an
//! unordered map, hidden wall-clock dependence, leftover global state)
//! flips bits somewhere in the stream and fails the gate.

use crate::differential::replay_witnesses;
use crate::invariants::analyze;
use crate::report::render_json;
use crate::scenarios::all;

/// 64-bit FNV-1a over a byte stream: tiny, dependency-free and stable
/// across platforms.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv1a {
    /// Creates the hasher with the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a::default()
    }

    /// Folds bytes into the state.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current digest.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

/// Runs the whole scenario campaign once and hashes its event stream:
/// the analyzer reports, every differential replay outcome, and every
/// node's full packet trace.
pub fn campaign_hash() -> u64 {
    let mut hasher = Fnv1a::new();
    for mut scenario in all() {
        scenario.node.trace.set_enabled(true);
        let analysis = analyze(&scenario.node);
        hasher.update(render_json(std::slice::from_ref(&analysis)).as_bytes());
        let diff = replay_witnesses(&mut scenario.node, scenario.now, &analysis);
        for replay in &diff.replays {
            hasher.update(replay.witness.verdict.label().as_bytes());
            hasher.update(replay.live.label().as_bytes());
            hasher.update(&[u8::from(replay.agrees)]);
        }
        hasher.update(scenario.node.trace.dump().as_bytes());
    }
    hasher.digest()
}

/// The outcome of the run-twice gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeterminismCheck {
    /// Hash of the first campaign run.
    pub first: u64,
    /// Hash of the second campaign run.
    pub second: u64,
}

impl DeterminismCheck {
    /// True if both runs produced the identical event stream.
    pub fn deterministic(&self) -> bool {
        self.first == self.second
    }
}

/// Runs the campaign twice from scratch and compares the hashes.
pub fn check() -> DeterminismCheck {
    DeterminismCheck { first: campaign_hash(), second: campaign_hash() }
}
