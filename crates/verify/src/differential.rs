//! Differential harness: replay analyzer witnesses through the live node.
//!
//! The static evaluator is only trustworthy if it agrees with the
//! simulator it models. For every replayable witness the harness builds
//! the concrete packet and pushes it through `Node::send_from_slice` —
//! the same code path live traffic takes — then compares the live
//! [`EgressAction`] against the static verdict. The single tolerated
//! divergence is queue pressure: a statically `umts` packet may come back
//! `drop(queue)` live when the uplink bearer buffer happens to be full,
//! which no static analysis can (or should) predict.

use umtslab_net::packet::{Packet, PacketIdAllocator};
use umtslab_net::trace::TraceKind;
use umtslab_net::wire::Endpoint;
use umtslab_planetlab::node::{EgressAction, Node};
use umtslab_sim::time::Instant;

use crate::classes::Sender;
use crate::eval::StaticVerdict;
use crate::invariants::{Analysis, Witness};

/// The outcome of replaying one witness.
#[derive(Debug, Clone)]
pub struct Replay {
    /// The witness that was replayed.
    pub witness: Witness,
    /// What the live node did, in verdict form.
    pub live: StaticVerdict,
    /// Whether live and static agree (modulo queue pressure).
    pub agrees: bool,
}

/// The result of replaying every replayable witness of an analysis.
#[derive(Debug, Clone, Default)]
pub struct DifferentialResult {
    /// One entry per replayed witness, in report order.
    pub replays: Vec<Replay>,
    /// Witnesses skipped because they cannot go through the slice API.
    pub skipped: usize,
}

impl DifferentialResult {
    /// True if every replayed witness agreed.
    pub fn all_agree(&self) -> bool {
        self.replays.iter().all(|r| r.agrees)
    }
}

/// Maps a live egress action onto the static verdict vocabulary.
fn live_verdict(action: &EgressAction) -> StaticVerdict {
    match action {
        EgressAction::Wire { iface, .. } => StaticVerdict::Wire(*iface),
        EgressAction::Umts => StaticVerdict::Umts,
        EgressAction::Local => StaticVerdict::Local,
        EgressAction::Dropped(kind) => StaticVerdict::Drop(*kind),
    }
}

fn verdicts_agree(static_v: StaticVerdict, live: StaticVerdict) -> bool {
    if static_v == live {
        return true;
    }
    // Queue overflow on the uplink bearer is dynamic state the static
    // analysis deliberately abstracts away.
    matches!((static_v, live), (StaticVerdict::Umts, StaticVerdict::Drop(TraceKind::DropQueue)))
}

/// Replays every replayable witness of `analysis` through `node`.
///
/// The node is the *same* configured node the analysis snapshotted;
/// replaying mutates only its counters and trace, not its policy.
pub fn replay_witnesses(node: &mut Node, now: Instant, analysis: &Analysis) -> DifferentialResult {
    let mut alloc = PacketIdAllocator::new();
    let mut result = DifferentialResult::default();
    for violation in &analysis.violations {
        let Some(witness) = &violation.witness else {
            continue;
        };
        if !witness.replayable {
            result.skipped += 1;
            continue;
        }
        let Sender::Slice(slice) = witness.class.sender else {
            result.skipped += 1;
            continue;
        };
        let packet = Packet::udp(
            alloc.allocate(),
            Endpoint::new(witness.class.src, 9_000),
            Endpoint::new(witness.class.dst, witness.class.dport),
            vec![0; 32],
            now,
        );
        let action = node.send_from_slice(now, slice, packet);
        let live = live_verdict(&action);
        result.replays.push(Replay {
            witness: witness.clone(),
            live,
            agrees: verdicts_agree(witness.verdict, live),
        });
    }
    result
}

/// Replays a full packet-class sweep (not only violation witnesses)
/// through the live node and checks verdict agreement for every class.
/// Used by the differential tests; more expensive than
/// [`replay_witnesses`] but exhaustive.
pub fn replay_sweep(node: &mut Node, now: Instant) -> DifferentialResult {
    let model = crate::model::NodeModel::capture(node);
    let classes = crate::classes::enumerate(&model);
    let mut counters = crate::eval::SweepCounters::for_model(&model);
    let mut alloc = PacketIdAllocator::new();
    let mut result = DifferentialResult::default();
    for class in &classes {
        let Sender::Slice(slice) = class.sender else {
            result.skipped += 1;
            continue;
        };
        let eval = crate::eval::evaluate(&model, &mut counters, class);
        let packet = Packet::udp(
            alloc.allocate(),
            Endpoint::new(class.src, 9_000),
            Endpoint::new(class.dst, class.dport),
            vec![0; 32],
            now,
        );
        let action = node.send_from_slice(now, slice, packet);
        let live = live_verdict(&action);
        result.replays.push(Replay {
            witness: Witness { class: *class, verdict: eval.verdict, replayable: true },
            live,
            agrees: verdicts_agree(eval.verdict, live),
        });
    }
    result
}
