//! `umtslab-verify` — static slice-isolation verifier for UMTS testbed
//! nodes.
//!
//! The paper's central operational claim (§2–§3) is that a PlanetLab node
//! can hand one slice a UMTS bearer *without* perturbing every other
//! slice: VNET+ marks classify traffic per slice, `ip rule` entries steer
//! only the owner's marked flows into the UMTS routing table, and an
//! iptables isolation rule keeps everything else off `ppp0`. That promise
//! lives entirely in configuration — marks, rules, routes and filters —
//! so it can be checked *statically*, before any packet flows.
//!
//! This crate snapshots a configured [`Node`](umtslab_planetlab::node::Node)
//! ([`model`]), symbolically enumerates the packet equivalence classes its
//! policy distinguishes ([`classes`]), pushes each class through a static
//! mirror of the node's egress decision sequence ([`eval`]), and checks
//! the isolation invariants over the sweep ([`invariants`]). Violations
//! come with a concrete witness packet and the admitting rule chain, and a
//! differential harness ([`differential`]) replays every witness through
//! the live simulator to confirm the static verdict. A run-twice
//! determinism gate ([`determinism`]) hashes the full campaign event
//! stream. [`report`] renders everything as a human table or JSON.
//!
//! The `verify` binary wires the canned [`scenarios`] into CI.

pub mod chaos;
pub mod classes;
pub mod determinism;
pub mod differential;
pub mod eval;
pub mod invariants;
pub mod model;
pub mod report;
pub mod scenarios;

pub use invariants::{analyze as verify_node, Analysis, InvariantKind, Violation, Witness};

#[cfg(test)]
mod tests {
    use crate::determinism::Fnv1a;
    use crate::eval::{evaluate, SweepCounters};
    use crate::invariants::{analyze, InvariantKind};
    use crate::model::NodeModel;
    use crate::report::{render_json, render_table};
    use crate::scenarios;

    #[test]
    fn correct_scenarios_are_clean() {
        for name in ["two-slice-correct", "bearer-down-correct"] {
            let scenario = scenarios::build(name).expect("known scenario");
            let analysis = analyze(&scenario.node);
            assert!(
                analysis.is_clean(),
                "{name} should verify clean, got:\n{}",
                render_table(&analysis)
            );
        }
    }

    #[test]
    fn seeded_bugs_are_detected_with_witnesses() {
        for name in ["mark-collision", "shadowed-filter"] {
            let scenario = scenarios::build(name).expect("known scenario");
            let analysis = analyze(&scenario.node);
            let kinds = analysis.kinds();
            for expected in &scenario.expected {
                assert!(
                    kinds.contains(expected),
                    "{name} should report {}, got:\n{}",
                    expected.name(),
                    render_table(&analysis)
                );
            }
            for kind in &kinds {
                assert!(
                    scenario.expected.contains(kind),
                    "{name} reported unexpected {}:\n{}",
                    kind.name(),
                    render_table(&analysis)
                );
            }
            assert!(
                analysis.violations.iter().any(|v| v.witness.is_some()),
                "{name} should carry at least one witness packet"
            );
        }
    }

    #[test]
    fn cross_slice_witnesses_are_replayable() {
        let scenario = scenarios::mark_collision();
        let analysis = analyze(&scenario.node);
        let witness = analysis
            .violations
            .iter()
            .filter(|v| v.kind == InvariantKind::CrossSliceEgress)
            .filter_map(|v| v.witness.as_ref())
            .next()
            .expect("cross-slice violation carries a witness");
        assert!(witness.replayable, "slice-sent witnesses must be replayable");
        assert!(!witness.verdict.label().is_empty());
    }

    #[test]
    fn evaluation_records_an_admitting_chain() {
        let scenario = scenarios::two_slice_correct();
        let model = NodeModel::capture(&scenario.node);
        let classes = crate::classes::enumerate(&model);
        let mut counters = SweepCounters::for_model(&model);
        let class = classes.first().expect("enumeration is non-empty");
        let eval = evaluate(&model, &mut counters, class);
        assert!(!eval.chain.is_empty(), "every evaluation explains itself");
    }

    #[test]
    fn json_report_round_trips_the_verdict() {
        let scenario = scenarios::shadowed_filter();
        let analysis = analyze(&scenario.node);
        let json = render_json(&[analysis]);
        assert!(json.contains("\"clean\": false"));
        assert!(json.contains("shadowed-rule"));
        assert!(json.contains("\"witness\""));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        let mut h = Fnv1a::new();
        assert_eq!(h.digest(), 0xcbf2_9ce4_8422_2325);
        h.update(b"a");
        assert_eq!(h.digest(), 0xaf63_dc4c_8601_ec8c);
        let mut h2 = Fnv1a::new();
        h2.update(b"foobar");
        assert_eq!(h2.digest(), 0x85944171f73967e8);
    }
}
