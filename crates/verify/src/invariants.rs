//! The isolation invariants and the sweep that checks them.
//!
//! The paper's integration rests on one promise (§3 of the paper): the
//! UMTS bearer is a *private* resource of the slice that started it, and
//! granting that slice a second interface must not perturb any other
//! slice. [`analyze`] enumerates the node's packet equivalence classes,
//! evaluates each one statically, and checks:
//!
//! * **cross-slice-egress** — no packet of a non-owner slice is ever
//!   admitted onto the UMTS bearer;
//! * **unmarked-leak** — no unmarked (kernel/zero-mark) packet reaches the
//!   UMTS path: everything on the bearer is attributable to the owner;
//! * **martian-wired-egress** — no packet leaves a wired interface
//!   carrying the UMTS source address (the leak the pre-fix `source_rule`
//!   allowed);
//! * **mark-collision** — VNET+ classification is injective: no two
//!   slices share a mark, no slice has the reserved zero mark;
//! * **shadowed-rule** — every policy rule, route and filter rule is
//!   reachable: an entry that would match some class but is always
//!   captured by an earlier entry is dead policy;
//! * **stale-umts-state** — a node whose bearer is down carries no
//!   leftover UMTS table, rules or isolation filter;
//! * **default-fallback** — with the bearer down (or for unregistered
//!   destinations) every slice still reaches the internet over the wired
//!   default route.

use umtslab_net::trace::TraceKind;
use umtslab_planetlab::node::Node;
use umtslab_planetlab::umtscmd::{
    UmtsPhase, ISOLATION_COMMENT, RULE_PRIO_DEST, RULE_PRIO_SRC, UMTS_TABLE,
};

use crate::classes::{enumerate, PacketClass, Sender, FAR_DESTINATION};
use crate::eval::{evaluate, StaticVerdict, SweepCounters};
use crate::model::NodeModel;

/// The invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A non-owner slice's packet is admitted onto the UMTS bearer.
    CrossSliceEgress,
    /// An unmarked packet reaches the UMTS bearer.
    UnmarkedLeak,
    /// A packet leaves a wired interface with the UMTS source address.
    MartianWiredEgress,
    /// Two slices share a mark, or a slice has the reserved zero mark.
    MarkCollision,
    /// A rule, route or filter entry is unreachable (always shadowed).
    ShadowedRule,
    /// UMTS policy state survives while the bearer is down.
    StaleUmtsState,
    /// A slice lost wired default-route connectivity.
    DefaultFallback,
}

impl InvariantKind {
    /// Stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            InvariantKind::CrossSliceEgress => "cross-slice-egress",
            InvariantKind::UnmarkedLeak => "unmarked-leak",
            InvariantKind::MartianWiredEgress => "martian-wired-egress",
            InvariantKind::MarkCollision => "mark-collision",
            InvariantKind::ShadowedRule => "shadowed-rule",
            InvariantKind::StaleUmtsState => "stale-umts-state",
            InvariantKind::DefaultFallback => "default-fallback",
        }
    }
}

/// A concrete packet demonstrating a violation.
#[derive(Debug, Clone)]
pub struct Witness {
    /// The packet class (sender, addresses, port).
    pub class: PacketClass,
    /// The statically predicted fate.
    pub verdict: StaticVerdict,
    /// Whether the class can be replayed through `send_from_slice` (the
    /// kernel pseudo-sender cannot).
    pub replayable: bool,
}

/// One broken invariant, with evidence.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Human-readable one-liner.
    pub summary: String,
    /// The witness packet, for class-level violations.
    pub witness: Option<Witness>,
    /// The admitting rule chain that produced the witness verdict.
    pub chain: Vec<String>,
}

/// The result of analyzing one node.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Node name.
    pub node: String,
    /// Packet classes enumerated.
    pub classes: usize,
    /// Violations found, in deterministic order.
    pub violations: Vec<Violation>,
}

impl Analysis {
    /// True if every invariant holds.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The distinct invariant kinds violated.
    pub fn kinds(&self) -> Vec<InvariantKind> {
        let mut kinds = Vec::new();
        for v in &self.violations {
            if !kinds.contains(&v.kind) {
                kinds.push(v.kind);
            }
        }
        kinds
    }
}

/// Analyzes a live node (snapshot + sweep + invariant checks).
pub fn analyze(node: &Node) -> Analysis {
    analyze_model(&NodeModel::capture(node))
}

/// Analyzes an already captured model.
pub fn analyze_model(model: &NodeModel) -> Analysis {
    let classes = enumerate(model);
    let mut counters = SweepCounters::for_model(model);
    let mut violations = Vec::new();

    check_marks(model, &mut violations);
    check_stale_state(model, &mut violations);

    for class in &classes {
        let eval = evaluate(model, &mut counters, class);
        let witness = |verdict| Witness {
            class: *class,
            verdict,
            replayable: matches!(class.sender, Sender::Slice(_)),
        };

        match eval.verdict {
            StaticVerdict::Umts => {
                let owner_sends = match class.sender {
                    Sender::Slice(s) => Some(s) == model.umts_owner,
                    Sender::Kernel => false,
                };
                if !owner_sends && !eval.mark.is_none() {
                    violations.push(Violation {
                        kind: InvariantKind::CrossSliceEgress,
                        summary: format!(
                            "{:?} (mark {}) reaches the UMTS bearer owned by {:?}",
                            class.sender, eval.mark.0, model.umts_owner
                        ),
                        witness: Some(witness(eval.verdict)),
                        chain: eval.chain.clone(),
                    });
                }
                if eval.mark.is_none() {
                    violations.push(Violation {
                        kind: InvariantKind::UnmarkedLeak,
                        summary: format!(
                            "unmarked packet ({:?}) is admitted onto the UMTS bearer",
                            class.sender
                        ),
                        witness: Some(witness(eval.verdict)),
                        chain: eval.chain.clone(),
                    });
                }
            }
            StaticVerdict::Wire(dev) => {
                if let Some(ppp) = model.ppp_addr() {
                    if eval.src == ppp {
                        violations.push(Violation {
                            kind: InvariantKind::MartianWiredEgress,
                            summary: format!(
                                "packet leaves {} ({}) carrying the UMTS source address {ppp}",
                                dev,
                                model
                                    .iface(dev)
                                    .map_or_else(|| "?".to_string(), |i| i.name.clone()),
                            ),
                            witness: Some(witness(eval.verdict)),
                            chain: eval.chain.clone(),
                        });
                    }
                }
            }
            StaticVerdict::Local | StaticVerdict::Drop(_) => {}
        }

        // Default-route fallback: any slice sending from an unbound socket
        // to the far-outside destination must reach the wire or (for the
        // owner with a registered covering prefix) the bearer — never a
        // routing black hole.
        if class.dst == FAR_DESTINATION
            && class.src.is_unspecified()
            && matches!(class.sender, Sender::Slice(_))
            && matches!(eval.verdict, StaticVerdict::Drop(TraceKind::DropNoRoute))
        {
            violations.push(Violation {
                kind: InvariantKind::DefaultFallback,
                summary: format!(
                    "{:?} has no wired fallback route to {FAR_DESTINATION}",
                    class.sender
                ),
                witness: Some(witness(eval.verdict)),
                chain: eval.chain.clone(),
            });
        }
    }

    check_shadowing(model, &counters, &mut violations);

    Analysis { node: model.name.clone(), classes: classes.len(), violations }
}

/// VNET+ classification must be injective and never zero.
fn check_marks(model: &NodeModel, violations: &mut Vec<Violation>) {
    for (i, a) in model.slices.iter().enumerate() {
        if a.mark.is_none() {
            violations.push(Violation {
                kind: InvariantKind::MarkCollision,
                summary: format!("slice {} ({}) has the reserved zero mark", a.id, a.name),
                witness: None,
                chain: Vec::new(),
            });
        }
        for b in &model.slices[i + 1..] {
            if a.mark == b.mark {
                violations.push(Violation {
                    kind: InvariantKind::MarkCollision,
                    summary: format!(
                        "slices {} ({}) and {} ({}) share mark {}",
                        a.id, a.name, b.id, b.name, a.mark.0
                    ),
                    witness: None,
                    chain: Vec::new(),
                });
            }
        }
    }
}

/// A bearer that is down must leave no policy residue behind.
fn check_stale_state(model: &NodeModel, violations: &mut Vec<Violation>) {
    if model.umts_phase != UmtsPhase::Down {
        return;
    }
    let mut stale = |what: &str| {
        violations.push(Violation {
            kind: InvariantKind::StaleUmtsState,
            summary: format!("{what} present while the bearer is down"),
            witness: None,
            chain: Vec::new(),
        });
    };
    if model.table(UMTS_TABLE).is_some_and(|t| !t.is_empty()) {
        stale("UMTS routing table");
    }
    if model.rules.iter().any(|r| r.priority == RULE_PRIO_DEST || r.priority == RULE_PRIO_SRC) {
        stale("UMTS policy rules");
    }
    if model.egress.rules.iter().any(|r| r.comment == ISOLATION_COMMENT) {
        stale("isolation filter rule");
    }
}

/// Entries that would match some class but never actually fire are dead
/// policy: either a misordering bug or residue the operator forgot.
fn check_shadowing(model: &NodeModel, counters: &SweepCounters, violations: &mut Vec<Violation>) {
    for (i, counter) in counters.rules.iter().enumerate() {
        if counter.hits == 0 && counter.shadowed > 0 {
            let rule = &model.rules[i];
            push_shadow(
                model,
                violations,
                counter,
                format!("policy rule pref {} (table {}) is shadowed", rule.priority, rule.table.0),
            );
        }
    }
    for (table, idx, counter) in &counters.routes {
        if counter.hits == 0 && counter.shadowed > 0 {
            let dest = model.table(*table).and_then(|r| r.get(*idx)).map(|r| r.dest.to_string());
            push_shadow(
                model,
                violations,
                counter,
                format!(
                    "route {} in table {} is shadowed",
                    dest.unwrap_or_else(|| "?".to_string()),
                    table.0
                ),
            );
        }
    }
    for (chain, chain_counters) in
        [(&model.mangle, &counters.mangle), (&model.egress, &counters.egress)]
    {
        for (i, counter) in chain_counters.iter().enumerate() {
            if counter.hits == 0 && counter.shadowed > 0 {
                let rule = &chain.rules[i];
                push_shadow(
                    model,
                    violations,
                    counter,
                    format!(
                        "{} rule #{} ({}) is shadowed",
                        chain.name,
                        i + 1,
                        if rule.comment.is_empty() { "uncommented" } else { &rule.comment }
                    ),
                );
            }
        }
    }
}

fn push_shadow(
    model: &NodeModel,
    violations: &mut Vec<Violation>,
    counter: &crate::eval::HitCounter,
    summary: String,
) {
    let chain = counter
        .shadowed_by
        .as_ref()
        .map(|by| vec![format!("captured first by: {by}")])
        .unwrap_or_default();
    // Re-evaluate the witness class with scratch counters to report the
    // fate the shadowed packet actually meets.
    let witness = counter.shadow_witness.map(|class| {
        let mut scratch = SweepCounters::for_model(model);
        let eval = evaluate(model, &mut scratch, &class);
        Witness {
            class,
            verdict: eval.verdict,
            replayable: matches!(class.sender, Sender::Slice(_)),
        }
    });
    violations.push(Violation { kind: InvariantKind::ShadowedRule, summary, witness, chain });
}
