//! Chaos gate: isolation must survive every supervised recovery.
//!
//! The static analyzer proves a *configured* node clean; this gate proves
//! the property is *maintained* while the configuration churns. It runs
//! the core chaos campaign (the paper's VoIP flow under a seeded storm of
//! session faults, with the supervisor redialing) and re-analyzes the
//! Napoli node at every drop and every recovery checkpoint: any stale
//! route, rule or filter left behind by a teardown/redial cycle shows up
//! as a violation tagged with the checkpoint that exposed it. A run-twice
//! hash over the availability metrics and the lifecycle marker trail
//! doubles as the chaos determinism gate.

use umtslab::chaos::{run_chaos_campaign, ChaosConfig, ChaosReport};
use umtslab::umtslab_umts::attachment::SessionFault;

use crate::determinism::{DeterminismCheck, Fnv1a};
use crate::invariants::analyze;

/// The seed the CI gate runs with. Chosen so the drawn schedule covers
/// all five fault types of the default mix (in particular the LCP
/// terminate and modem hard-hang the acceptance bar names).
pub const DEFAULT_SEED: u64 = 2022;

/// Outcome of one chaos-campaign verification run.
#[derive(Debug)]
pub struct ChaosCheck {
    /// The campaign report (availability, faults, lifecycle trail).
    pub report: ChaosReport,
    /// Isolation violations found at checkpoints, as
    /// `"<checkpoint>: <invariant>: <summary>"` lines. Empty means every
    /// recovery left the node clean.
    pub violations: Vec<String>,
    /// How many checkpoints (drops + recoveries) were audited.
    pub checkpoints: usize,
}

impl ChaosCheck {
    /// True if the campaign meets the acceptance bar: enough faults
    /// fired, every drop was re-established, the run ended with the
    /// session up, and no checkpoint found stale state or a leak.
    pub fn passed(&self) -> bool {
        let a = &self.report.availability;
        self.violations.is_empty()
            && self.report.ended_up
            && a.faults_injected >= 3
            && a.session_drops >= 1
            && a.sessions_established == a.session_drops + 1
            && self.fault_coverage_met()
    }

    /// The acceptance bar names the hardest two faults explicitly: the
    /// campaign must have fired at least three distinct fault types,
    /// among them an LCP terminate (PPP drop) and a modem hard-hang.
    pub fn fault_coverage_met(&self) -> bool {
        let mut kinds: Vec<SessionFault> = self.report.faults.iter().map(|f| f.fault).collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        kinds.dedup();
        kinds.len() >= 3
            && kinds.contains(&SessionFault::PppTerminate)
            && kinds.contains(&SessionFault::ModemHang)
    }
}

/// Runs the seeded campaign once, auditing the node at every checkpoint.
pub fn run(seed: u64) -> ChaosCheck {
    let cfg = ChaosConfig::paper(seed);
    let mut violations = Vec::new();
    let mut checkpoints = 0usize;
    let report = run_chaos_campaign(&cfg, |node, _now, label| {
        checkpoints += 1;
        let analysis = analyze(node);
        for v in &analysis.violations {
            violations.push(format!("{label}: {}: {}", v.kind.name(), v.summary));
        }
    });
    ChaosCheck { report, violations, checkpoints }
}

/// Hashes everything a chaos campaign is required to reproduce
/// bit-identically: the availability counters, the scheduled faults and
/// the full lifecycle marker trail.
pub fn chaos_hash(seed: u64) -> u64 {
    let cfg = ChaosConfig::paper(seed);
    let report = run_chaos_campaign(&cfg, |_, _, _| {});
    let mut h = Fnv1a::new();
    let a = report.availability;
    for v in [
        a.time_up.total_micros(),
        a.time_down.total_micros(),
        a.time_degraded.total_micros(),
        a.sessions_established,
        a.session_drops,
        a.redials,
        a.faults_injected,
    ] {
        h.update(&v.to_le_bytes());
    }
    for f in &report.faults {
        h.update(&f.at.total_micros().to_le_bytes());
        h.update(format!("{:?}", f.fault).as_bytes());
    }
    for (at, kind) in &report.lifecycle {
        h.update(&at.to_le_bytes());
        h.update(kind.as_bytes());
    }
    h.update(&report.summary.received.to_le_bytes());
    h.digest()
}

/// Runs the campaign twice from scratch and compares the hashes.
pub fn check(seed: u64) -> DeterminismCheck {
    DeterminismCheck { first: chaos_hash(seed), second: chaos_hash(seed) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_gate_passes_on_the_default_seed() {
        let check = run(DEFAULT_SEED);
        assert!(check.checkpoints >= 2, "campaign produced no checkpoints");
        assert!(
            check.passed(),
            "chaos gate failed: violations={:?} availability={:?} ended_up={}",
            check.violations,
            check.report.availability,
            check.report.ended_up
        );
    }
}
