//! Canned verification scenarios.
//!
//! Each scenario builds one fully configured node — correct or seeded
//! with a specific misconfiguration — together with the invariant
//! violations the analyzer is *expected* to report. The `verify` binary
//! and the differential tests run the analyzer over every scenario and
//! check the expectation both ways: correct nodes must come back clean,
//! and seeded bugs must be detected with witnesses.

use umtslab_net::filter::{FilterMatch, FilterRule, Target};
use umtslab_net::route::{Route, TableId};
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::node::{Node, PPP0};
use umtslab_planetlab::slice::SliceId;
use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest};
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::attachment::UmtsAttachment;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::invariants::InvariantKind;

/// A built scenario: the node, the simulated time it was built at, and
/// the invariant kinds the analyzer must report (empty = must be clean).
pub struct Scenario {
    /// Scenario name (stable, kebab-case).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The configured node.
    pub node: Node,
    /// Simulated time at which the node finished configuring.
    pub now: Instant,
    /// The UMTS owner slice, if the scenario connects the bearer.
    pub owner: Option<SliceId>,
    /// Invariants the analyzer must flag (empty for correct scenarios).
    pub expected: Vec<InvariantKind>,
}

/// The names of all scenarios, in build order.
pub const SCENARIO_NAMES: [&str; 4] =
    ["two-slice-correct", "bearer-down-correct", "mark-collision", "shadowed-filter"];

fn addr(s: &str) -> Ipv4Address {
    s.parse().expect("literal address")
}

fn base_node() -> Node {
    let mut node = Node::new("planetlab1.unina.it");
    node.configure_eth(
        addr("143.225.229.5"),
        "143.225.229.0/24".parse().expect("literal prefix"),
        addr("143.225.229.1"),
    );
    node
}

fn attach(node: &mut Node) {
    node.attach_umts(UmtsAttachment::new(
        OperatorProfile::commercial_italy(),
        DeviceProfile::huawei_e620(),
        Some(Credentials::new("web", "web")),
        7,
        Instant::ZERO,
    ));
}

/// Drives the node's control plane until the bearer is up (or the
/// horizon passes, which would be a scenario-construction bug).
fn connect(node: &mut Node, slice: SliceId) -> Instant {
    node.vsys_submit(slice, UmtsRequest::Start).expect("slice is in the ACL");
    let horizon = Instant::from_secs(60);
    let mut now = Instant::ZERO;
    loop {
        let _ = node.poll(now);
        if node.umts_status().phase == UmtsPhase::Up || now >= horizon {
            break;
        }
        now = match node.next_wakeup() {
            Some(t) if t > now => t.min(horizon),
            _ => now + Duration::from_millis(1),
        };
    }
    assert_eq!(node.umts_status().phase, UmtsPhase::Up, "scenario bearer failed to come up");
    let _ = node.vsys_collect(slice);
    now
}

/// A correctly configured two-slice node with the bearer up and one
/// registered destination. Must verify clean.
pub fn two_slice_correct() -> Scenario {
    let mut node = base_node();
    attach(&mut node);
    let owner = node.slices.create("unina_umts");
    node.grant_umts_access(owner);
    let _other = node.slices.create("inria_probe");
    let now = connect(&mut node, owner);
    node.vsys_submit(owner, UmtsRequest::AddDestination("138.96.0.0/16".parse().expect("prefix")))
        .expect("owner is in the ACL");
    let _ = node.poll(now);
    node.bind(owner, 9_001).expect("port free");
    Scenario {
        name: "two-slice-correct",
        description: "bearer up, two slices, one registered destination",
        node,
        now,
        owner: Some(owner),
        expected: Vec::new(),
    }
}

/// A correct node whose bearer was never started: every slice must still
/// have its wired fallback and no UMTS residue may exist.
pub fn bearer_down_correct() -> Scenario {
    let mut node = base_node();
    attach(&mut node);
    let owner = node.slices.create("unina_umts");
    node.grant_umts_access(owner);
    let _other = node.slices.create("inria_probe");
    node.bind(owner, 9_001).expect("port free");
    Scenario {
        name: "bearer-down-correct",
        description: "bearer down, wired fallback only",
        node,
        now: Instant::ZERO,
        owner: Some(owner),
        expected: Vec::new(),
    }
}

/// A misconfigured node where a second slice was created with the owner's
/// mark (VNET+ classification broken): its traffic is indistinguishable
/// from the owner's and rides the bearer.
pub fn mark_collision() -> Scenario {
    let mut node = base_node();
    attach(&mut node);
    let owner = node.slices.create("unina_umts");
    node.grant_umts_access(owner);
    let now = connect(&mut node, owner);
    node.vsys_submit(owner, UmtsRequest::AddDestination("138.96.0.0/16".parse().expect("prefix")))
        .expect("owner is in the ACL");
    let _ = node.poll(now);
    let owner_mark = node.slices.mark_of(owner).expect("owner exists");
    let _evil = node.slices.create_with_mark("mark_thief", owner_mark);
    Scenario {
        name: "mark-collision",
        description: "second slice reuses the owner's mark",
        node,
        now,
        owner: Some(owner),
        expected: vec![InvariantKind::MarkCollision, InvariantKind::CrossSliceEgress],
    }
}

/// A misconfigured node where a debugging accept-all rule was inserted
/// ahead of the isolation rule on the egress chain: the isolation rule is
/// shadowed and foreign traffic leaks onto the bearer.
pub fn shadowed_filter() -> Scenario {
    let mut node = base_node();
    attach(&mut node);
    let owner = node.slices.create("unina_umts");
    node.grant_umts_access(owner);
    let _other = node.slices.create("inria_probe");
    let now = connect(&mut node, owner);
    // The seeded bug: `iptables -I POSTROUTING -o ppp0 -j ACCEPT` left
    // behind by a debugging session, inserted *before* the isolation rule.
    node.firewall.egress.insert(FilterRule::new(
        FilterMatch { out_dev: Some(PPP0), ..FilterMatch::any() },
        Target::Accept,
        "debug-accept-all",
    ));
    // A stray host route steering traffic for the PPP peer through ppp0
    // from the main table, so foreign slices can reach the bearer at all.
    if let Some(peer) = node.iface(PPP0).peer {
        node.rib.table_mut(TableId::MAIN).add(Route::onlink(Ipv4Cidr::host(peer), PPP0));
    }
    Scenario {
        name: "shadowed-filter",
        description: "accept-all debug rule shadows the isolation rule",
        node,
        now,
        owner: Some(owner),
        expected: vec![
            InvariantKind::ShadowedRule,
            InvariantKind::CrossSliceEgress,
            InvariantKind::UnmarkedLeak,
        ],
    }
}

/// Builds a scenario by name.
pub fn build(name: &str) -> Option<Scenario> {
    match name {
        "two-slice-correct" => Some(two_slice_correct()),
        "bearer-down-correct" => Some(bearer_down_correct()),
        "mark-collision" => Some(mark_collision()),
        "shadowed-filter" => Some(shadowed_filter()),
        _ => None,
    }
}

/// Builds every scenario, in [`SCENARIO_NAMES`] order.
pub fn all() -> Vec<Scenario> {
    SCENARIO_NAMES.iter().map(|n| build(n).expect("known name")).collect()
}
