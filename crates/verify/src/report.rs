//! Rendering analyses as a human table or machine-readable JSON.
//!
//! JSON is hand-rolled (the workspace deliberately carries no
//! serialization dependency); the escape routine matches the one the
//! runner's metrics registry uses.

use std::fmt::Write;

use crate::classes::Sender;
use crate::invariants::{Analysis, Violation};

/// Renders one analysis as a human-readable block: a verdict line, then
/// one indented entry per violation with its witness packet and the
/// admitting rule chain.
pub fn render_table(analysis: &Analysis) -> String {
    let mut out = String::new();
    let verdict = if analysis.is_clean() { "OK" } else { "VIOLATIONS" };
    let _ = writeln!(
        out,
        "{}: {} — {} packet class(es), {} violation(s)",
        analysis.node,
        verdict,
        analysis.classes,
        analysis.violations.len()
    );
    for v in &analysis.violations {
        let _ = writeln!(out, "  [{}] {}", v.kind.name(), v.summary);
        if let Some(w) = &v.witness {
            let _ = writeln!(
                out,
                "    witness: {} src={} dst={}:{} -> {}",
                sender_label(&w.class.sender),
                w.class.src,
                w.class.dst,
                w.class.dport,
                w.verdict.label()
            );
        }
        for step in &v.chain {
            let _ = writeln!(out, "      | {step}");
        }
    }
    out
}

/// Renders a list of analyses as one JSON document:
/// `{"nodes": [{"node": ..., "classes": N, "violations": [...]}]}`.
pub fn render_json(analyses: &[Analysis]) -> String {
    let mut out = String::from("{\n  \"nodes\": [");
    for (i, a) in analyses.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"node\": \"{}\", \"classes\": {}, \"clean\": {}, \"violations\": [",
            escape_json(&a.node),
            a.classes,
            a.is_clean()
        );
        for (j, v) in a.violations.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&violation_json(v));
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn violation_json(v: &Violation) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "\n      {{\"invariant\": \"{}\", \"summary\": \"{}\"",
        v.kind.name(),
        escape_json(&v.summary)
    );
    if let Some(w) = &v.witness {
        let _ = write!(
            out,
            ", \"witness\": {{\"sender\": \"{}\", \"src\": \"{}\", \"dst\": \"{}\", \
             \"dport\": {}, \"verdict\": \"{}\", \"replayable\": {}}}",
            sender_label(&w.class.sender),
            w.class.src,
            w.class.dst,
            w.class.dport,
            escape_json(&w.verdict.label()),
            w.replayable
        );
    }
    out.push_str(", \"chain\": [");
    for (i, step) in v.chain.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\"", escape_json(step));
    }
    out.push_str("]}");
    out
}

fn sender_label(sender: &Sender) -> String {
    match sender {
        Sender::Slice(id) => id.to_string(),
        Sender::Kernel => "kernel".to_string(),
    }
}

/// Escapes the handful of characters JSON strings cannot carry verbatim.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}
