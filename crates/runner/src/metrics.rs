//! The metrics registry experiment workers publish into.
//!
//! Cross-job totals are lock-free [`AtomicU64`] counters (workers bump
//! them concurrently without coordination); per-job gauges go into a
//! mutex-guarded row table keyed by job index, so rendering order is
//! deterministic no matter which worker finished first. The registry
//! renders as a human summary table ([`MetricsRegistry::summary_table`])
//! or machine-readable JSON ([`MetricsRegistry::to_json`]) — hand-rolled,
//! since the workspace deliberately has no serialization dependency.
//!
//! Every counter's name, unit, emitting layer and paper figure is
//! documented in `docs/METRICS.md`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use umtslab::umtslab_supervisor::metrics::AvailabilityMetrics;
use umtslab::TestbedMetrics;

/// Per-job session-availability gauges, as published by a supervised
/// (chaos) job. Plain numbers so the registry renders without reaching
/// back into the supervisor crate's types.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Availability {
    /// Percentage of observed time the session was up, `0.0..=100.0`.
    pub uptime_pct: f64,
    /// Redial attempts the supervisor launched.
    pub redials: u64,
    /// Mean time to repair in microseconds, if any repair happened.
    // lint:allow(D4) JSON wire field; the registry export schema is raw integers
    pub mttr_micros: Option<u64>,
}

impl Availability {
    /// Projects a supervisor availability snapshot onto the registry's
    /// summary columns.
    pub fn from_metrics(m: &AvailabilityMetrics) -> Availability {
        Availability {
            uptime_pct: m.uptime_fraction().unwrap_or(0.0) * 100.0,
            redials: m.redials,
            mttr_micros: m.mttr().map(|d| d.total_micros()),
        }
    }
}

/// Per-job gauges: one row per completed experiment.
#[derive(Debug, Clone)]
pub struct JobRow {
    /// Position of the job in its campaign (rendering sort key).
    pub index: usize,
    /// Human-readable job identifier, e.g. `voip/UMTS-to-Ethernet`.
    pub label: String,
    /// The master seed the job's testbed was built from.
    pub seed: u64,
    /// How many shards the job's topology was partitioned across
    /// (`1` = a plain unsharded testbed).
    pub shards: u32,
    /// The job's full cross-layer counter snapshot.
    pub metrics: TestbedMetrics,
    /// Host wall-clock time the job took, in microseconds.
    // lint:allow(D4) JSON wire field; host time is reporting-only, never fed back into the sim
    pub wall_micros: u64,
    /// Static isolation-verification verdict for the job's testbed, when
    /// a verifier ran: `"yes"` or `"no (N violations)"`. `None` when the
    /// job was not verified.
    pub verified: Option<String>,
    /// Session-availability gauges, when the job ran under a supervisor.
    pub availability: Option<Availability>,
}

/// A plain snapshot of the registry's cross-job totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsTotals {
    /// Jobs that published results.
    pub jobs: u64,
    /// Packets offered to wired access links (both directions).
    pub packets_pushed: u64,
    /// Packets the access links scheduled for delivery.
    pub packets_delivered: u64,
    /// Access-link drops: buffer overflow.
    pub drops_access_queue: u64,
    /// Access-link drops: loss process.
    pub drops_access_loss: u64,
    /// Radio (uplink + downlink) drops: bearer buffer overflow.
    pub drops_radio_overflow: u64,
    /// Radio (uplink + downlink) drops: RLC retransmissions exhausted.
    pub drops_radio_rlc: u64,
    /// Testbed-core drops: unroutable destination.
    pub drops_core_unroutable: u64,
    /// Testbed-core drops: operator firewall.
    pub drops_operator_firewall: u64,
    /// Testbed-core drops: node egress (route/filter/queue).
    pub drops_node_egress: u64,
    /// Testbed-core drops: UMTS downlink not connected / overflowed.
    pub drops_umts_downlink: u64,
    /// RRC state transitions across all attachments.
    pub rrc_transitions: u64,
    /// PPP phase transitions across all attachments.
    pub ppp_transitions: u64,
    /// Scheduler events processed across all jobs.
    pub events: u64,
    /// Summed host wall-clock time of all jobs, in microseconds.
    // lint:allow(D4) JSON wire field; aggregate host time for the export schema
    pub wall_micros: u64,
}

/// Shared, thread-safe metrics sink for a campaign of experiment jobs.
///
/// Workers call [`MetricsRegistry::record`] once per finished job; the
/// owner renders or inspects the registry after the pool joins. All
/// methods take `&self`, so one registry can be shared by reference
/// across a thread scope.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    jobs: AtomicU64,
    packets_pushed: AtomicU64,
    packets_delivered: AtomicU64,
    drops_access_queue: AtomicU64,
    drops_access_loss: AtomicU64,
    drops_radio_overflow: AtomicU64,
    drops_radio_rlc: AtomicU64,
    drops_core_unroutable: AtomicU64,
    drops_operator_firewall: AtomicU64,
    drops_node_egress: AtomicU64,
    drops_umts_downlink: AtomicU64,
    rrc_transitions: AtomicU64,
    ppp_transitions: AtomicU64,
    events: AtomicU64,
    wall_micros: AtomicU64,
    rows: Mutex<Vec<JobRow>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Publishes one finished job into the registry.
    pub fn record(
        &self,
        index: usize,
        label: impl Into<String>,
        seed: u64,
        metrics: TestbedMetrics,
        wall: std::time::Duration,
    ) {
        // lint:allow(D4) flattening host wall time into the JSON wire field
        let wall_micros = wall.as_micros() as u64;
        let add = |c: &AtomicU64, v: u64| {
            c.fetch_add(v, Ordering::Relaxed);
        };
        add(&self.jobs, 1);
        add(&self.packets_pushed, metrics.access.pushed);
        add(&self.packets_delivered, metrics.access.delivered);
        add(&self.drops_access_queue, metrics.access.dropped_queue);
        add(&self.drops_access_loss, metrics.access.dropped_loss);
        add(
            &self.drops_radio_overflow,
            metrics.uplink.dropped_overflow + metrics.downlink.dropped_overflow,
        );
        add(&self.drops_radio_rlc, metrics.uplink.dropped_rlc + metrics.downlink.dropped_rlc);
        add(&self.drops_core_unroutable, metrics.drops.core_unroutable);
        add(&self.drops_operator_firewall, metrics.drops.operator_firewall);
        add(&self.drops_node_egress, metrics.drops.node_egress);
        add(&self.drops_umts_downlink, metrics.drops.umts_downlink);
        add(&self.rrc_transitions, metrics.rrc_transitions);
        add(&self.ppp_transitions, metrics.ppp_transitions);
        add(&self.events, metrics.events);
        add(&self.wall_micros, wall_micros);
        self.rows.lock().expect("rows poisoned").push(JobRow {
            index,
            label: label.into(),
            seed,
            shards: 1,
            metrics,
            wall_micros,
            verified: None,
            availability: None,
        });
    }

    /// Records how many shards a job's topology was partitioned across.
    /// Jobs default to `1` (unsharded). No-op if the job index was never
    /// recorded.
    pub fn set_shards(&self, index: usize, shards: u32) {
        let mut rows = self.rows.lock().expect("rows poisoned");
        if let Some(row) = rows.iter_mut().find(|r| r.index == index) {
            row.shards = shards;
        }
    }

    /// Attaches a static isolation-verification verdict to a recorded job.
    ///
    /// `ok` is the verifier's verdict and `violations` the number of
    /// invariant violations it reported. No-op if the job index was never
    /// recorded.
    pub fn set_verified(&self, index: usize, ok: bool, violations: usize) {
        let label = if ok { "yes".to_string() } else { format!("no ({violations} violations)") };
        let mut rows = self.rows.lock().expect("rows poisoned");
        if let Some(row) = rows.iter_mut().find(|r| r.index == index) {
            row.verified = Some(label);
        }
    }

    /// Attaches session-availability gauges to a recorded job. No-op if
    /// the job index was never recorded.
    pub fn set_availability(&self, index: usize, availability: Availability) {
        let mut rows = self.rows.lock().expect("rows poisoned");
        if let Some(row) = rows.iter_mut().find(|r| r.index == index) {
            row.availability = Some(availability);
        }
    }

    /// Number of jobs recorded so far.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Snapshot of the cross-job totals.
    pub fn totals(&self) -> MetricsTotals {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsTotals {
            jobs: get(&self.jobs),
            packets_pushed: get(&self.packets_pushed),
            packets_delivered: get(&self.packets_delivered),
            drops_access_queue: get(&self.drops_access_queue),
            drops_access_loss: get(&self.drops_access_loss),
            drops_radio_overflow: get(&self.drops_radio_overflow),
            drops_radio_rlc: get(&self.drops_radio_rlc),
            drops_core_unroutable: get(&self.drops_core_unroutable),
            drops_operator_firewall: get(&self.drops_operator_firewall),
            drops_node_egress: get(&self.drops_node_egress),
            drops_umts_downlink: get(&self.drops_umts_downlink),
            rrc_transitions: get(&self.rrc_transitions),
            ppp_transitions: get(&self.ppp_transitions),
            events: get(&self.events),
            wall_micros: get(&self.wall_micros),
        }
    }

    /// Per-job rows, sorted by job index (stable across worker counts).
    pub fn rows(&self) -> Vec<JobRow> {
        let mut rows = self.rows.lock().expect("rows poisoned").clone();
        rows.sort_by_key(|r| r.index);
        rows
    }

    /// Renders the per-job gauge table plus the totals line.
    pub fn summary_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>12} {:>6} {:>10} {:>9} {:>7} {:>6} {:>6} {:>9} {:>10} {:>8} {:>7} {:>8}",
            "job",
            "seed",
            "shards",
            "events",
            "fwd pkts",
            "radio",
            "rrc",
            "ppp",
            "wall [s]",
            "verified",
            "uptime",
            "redials",
            "mttr [s]"
        );
        for r in self.rows() {
            let m = &r.metrics;
            let (uptime, redials, mttr) = match &r.availability {
                Some(a) => (
                    format!("{:.1}%", a.uptime_pct),
                    a.redials.to_string(),
                    a.mttr_micros
                        .map_or_else(|| "-".to_string(), |us| format!("{:.2}", us as f64 / 1e6)),
                ),
                None => ("-".to_string(), "-".to_string(), "-".to_string()),
            };
            let _ = writeln!(
                out,
                "{:<36} {:>12} {:>6} {:>10} {:>9} {:>7} {:>6} {:>6} {:>9.3} {:>10} {:>8} {:>7} {:>8}",
                r.label,
                r.seed,
                r.shards,
                m.events,
                m.access.pushed,
                m.uplink.served + m.downlink.served,
                m.rrc_transitions,
                m.ppp_transitions,
                r.wall_micros as f64 / 1e6,
                r.verified.as_deref().unwrap_or("-"),
                uptime,
                redials,
                mttr,
            );
        }
        let t = self.totals();
        let _ = writeln!(
            out,
            "totals: {} job(s), {} events, {} pkts pushed / {} delivered, \
             drops[q={} loss={} radio={} core={}], rrc={} ppp={}, wall {:.3} s",
            t.jobs,
            t.events,
            t.packets_pushed,
            t.packets_delivered,
            t.drops_access_queue,
            t.drops_access_loss,
            t.drops_radio_overflow + t.drops_radio_rlc,
            t.drops_core_unroutable
                + t.drops_operator_firewall
                + t.drops_node_egress
                + t.drops_umts_downlink,
            t.rrc_transitions,
            t.ppp_transitions,
            t.wall_micros as f64 / 1e6,
        );
        out
    }

    /// Renders the whole registry as a JSON document.
    ///
    /// Shape: `{"totals": {...}, "jobs": [{...}, ...]}` with jobs sorted
    /// by index. Counter names match `docs/METRICS.md`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let t = self.totals();
        let mut out = String::from("{\n  \"totals\": {");
        let _ = write!(
            out,
            "\"jobs\": {}, \"packets_pushed\": {}, \"packets_delivered\": {}, \
             \"drops_access_queue\": {}, \"drops_access_loss\": {}, \
             \"drops_radio_overflow\": {}, \"drops_radio_rlc\": {}, \
             \"drops_core_unroutable\": {}, \"drops_operator_firewall\": {}, \
             \"drops_node_egress\": {}, \"drops_umts_downlink\": {}, \
             \"rrc_transitions\": {}, \"ppp_transitions\": {}, \"events\": {}, \
             \"wall_micros\": {}",
            t.jobs,
            t.packets_pushed,
            t.packets_delivered,
            t.drops_access_queue,
            t.drops_access_loss,
            t.drops_radio_overflow,
            t.drops_radio_rlc,
            t.drops_core_unroutable,
            t.drops_operator_firewall,
            t.drops_node_egress,
            t.drops_umts_downlink,
            t.rrc_transitions,
            t.ppp_transitions,
            t.events,
            t.wall_micros,
        );
        out.push_str("},\n  \"jobs\": [");
        for (i, r) in self.rows().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let m = &r.metrics;
            let _ = write!(
                out,
                "\n    {{\"index\": {}, \"label\": \"{}\", \"seed\": {}, \"shards\": {}, \
                 \"wall_micros\": {}, \
                 \"verified\": {}, \"availability\": {}, \"events\": {}, \
                 \"access\": {{\"pushed\": {}, \"delivered\": {}, \"dropped_queue\": {}, \
                 \"dropped_loss\": {}}}, \
                 \"uplink\": {{\"offered\": {}, \"served\": {}, \"dropped_overflow\": {}, \
                 \"dropped_rlc\": {}, \"retransmissions\": {}, \"outages\": {}}}, \
                 \"downlink\": {{\"offered\": {}, \"served\": {}, \"dropped_overflow\": {}, \
                 \"dropped_rlc\": {}, \"retransmissions\": {}, \"outages\": {}}}, \
                 \"rrc_transitions\": {}, \"ppp_transitions\": {}, \
                 \"drops\": {{\"core_unroutable\": {}, \"operator_firewall\": {}, \
                 \"node_egress\": {}, \"umts_downlink\": {}}}}}",
                r.index,
                escape_json(&r.label),
                r.seed,
                r.shards,
                r.wall_micros,
                r.verified
                    .as_deref()
                    .map_or_else(|| "null".to_string(), |v| format!("\"{}\"", escape_json(v))),
                r.availability.as_ref().map_or_else(
                    || "null".to_string(),
                    |a| {
                        format!(
                            "{{\"uptime_pct\": {:.3}, \"redials\": {}, \"mttr_micros\": {}}}",
                            a.uptime_pct,
                            a.redials,
                            a.mttr_micros.map_or_else(|| "null".to_string(), |v| v.to_string())
                        )
                    }
                ),
                m.events,
                m.access.pushed,
                m.access.delivered,
                m.access.dropped_queue,
                m.access.dropped_loss,
                m.uplink.offered,
                m.uplink.served,
                m.uplink.dropped_overflow,
                m.uplink.dropped_rlc,
                m.uplink.retransmissions,
                m.uplink.outages,
                m.downlink.offered,
                m.downlink.served,
                m.downlink.dropped_overflow,
                m.downlink.dropped_rlc,
                m.downlink.retransmissions,
                m.downlink.outages,
                m.rrc_transitions,
                m.ppp_transitions,
                m.drops.core_unroutable,
                m.drops.operator_firewall,
                m.drops.node_egress,
                m.drops.umts_downlink,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// Escapes the handful of characters JSON strings cannot carry verbatim.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_metrics(events: u64) -> TestbedMetrics {
        let mut m = TestbedMetrics::default();
        m.access.pushed = 10;
        m.access.delivered = 9;
        m.access.dropped_queue = 1;
        m.uplink.offered = 5;
        m.uplink.served = 4;
        m.uplink.dropped_rlc = 1;
        m.rrc_transitions = 3;
        m.ppp_transitions = 8;
        m.events = events;
        m
    }

    #[test]
    fn totals_accumulate_across_records() {
        let reg = MetricsRegistry::new();
        reg.record(0, "a", 1, sample_metrics(100), std::time::Duration::from_millis(2));
        reg.record(1, "b", 2, sample_metrics(50), std::time::Duration::from_millis(3));
        let t = reg.totals();
        assert_eq!(t.jobs, 2);
        assert_eq!(t.packets_pushed, 20);
        assert_eq!(t.packets_delivered, 18);
        assert_eq!(t.drops_access_queue, 2);
        assert_eq!(t.drops_radio_rlc, 2);
        assert_eq!(t.rrc_transitions, 6);
        assert_eq!(t.ppp_transitions, 16);
        assert_eq!(t.events, 150);
        assert_eq!(t.wall_micros, 5_000);
        assert_eq!(reg.jobs_completed(), 2);
    }

    #[test]
    fn rows_sort_by_index_not_arrival() {
        let reg = MetricsRegistry::new();
        reg.record(2, "late", 3, sample_metrics(1), std::time::Duration::ZERO);
        reg.record(0, "early", 1, sample_metrics(1), std::time::Duration::ZERO);
        reg.record(1, "mid", 2, sample_metrics(1), std::time::Duration::ZERO);
        let labels: Vec<String> = reg.rows().into_iter().map(|r| r.label).collect();
        assert_eq!(labels, ["early", "mid", "late"]);
    }

    #[test]
    fn json_is_wellformed_enough_to_round_trip_counters() {
        let reg = MetricsRegistry::new();
        reg.record(0, "voip/UMTS-to-Ethernet", 2008, sample_metrics(42), std::time::Duration::ZERO);
        let json = reg.to_json();
        assert!(json.contains("\"jobs\": 1"));
        assert!(json.contains("\"label\": \"voip/UMTS-to-Ethernet\""));
        assert!(json.contains("\"events\": 42"));
        // Balanced braces/brackets (a cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn summary_table_lists_every_job_and_totals() {
        let reg = MetricsRegistry::new();
        reg.record(0, "a", 1, sample_metrics(7), std::time::Duration::ZERO);
        let table = reg.summary_table();
        assert!(table.contains("a"));
        assert!(table.starts_with("job") || table.contains("job"));
        assert!(table.contains("totals: 1 job(s)"));
    }

    #[test]
    fn verified_verdict_renders_in_table_and_json() {
        let reg = MetricsRegistry::new();
        reg.record(0, "ok-job", 1, sample_metrics(1), std::time::Duration::ZERO);
        reg.record(1, "bad-job", 2, sample_metrics(1), std::time::Duration::ZERO);
        reg.set_verified(0, true, 0);
        reg.set_verified(1, false, 3);
        // Unknown index is a no-op, not a panic.
        reg.set_verified(99, true, 0);
        let rows = reg.rows();
        assert_eq!(rows[0].verified.as_deref(), Some("yes"));
        assert_eq!(rows[1].verified.as_deref(), Some("no (3 violations)"));
        let table = reg.summary_table();
        assert!(table.contains("verified"));
        assert!(table.contains("yes"));
        assert!(table.contains("no (3 violations)"));
        let json = reg.to_json();
        assert!(json.contains("\"verified\": \"yes\""));
        assert!(json.contains("\"verified\": \"no (3 violations)\""));
    }

    #[test]
    fn unverified_jobs_render_dash_and_null() {
        let reg = MetricsRegistry::new();
        reg.record(0, "plain", 1, sample_metrics(1), std::time::Duration::ZERO);
        assert!(reg.summary_table().lines().nth(1).is_some_and(|l| l.trim_end().ends_with('-')));
        assert!(reg.to_json().contains("\"verified\": null"));
    }

    #[test]
    fn availability_renders_in_table_and_json() {
        let reg = MetricsRegistry::new();
        reg.record(0, "chaos-voip", 2022, sample_metrics(1), std::time::Duration::ZERO);
        reg.record(1, "plain", 1, sample_metrics(1), std::time::Duration::ZERO);
        reg.set_availability(
            0,
            Availability { uptime_pct: 82.25, redials: 8, mttr_micros: Some(7_450_000) },
        );
        // Unknown index is a no-op, not a panic.
        reg.set_availability(99, Availability { uptime_pct: 0.0, redials: 0, mttr_micros: None });
        let rows = reg.rows();
        assert!(rows[0].availability.is_some());
        assert!(rows[1].availability.is_none());
        let table = reg.summary_table();
        assert!(table.contains("uptime"));
        assert!(table.contains("82.2%"));
        assert!(table.contains("7.45"));
        let json = reg.to_json();
        assert!(json.contains("\"uptime_pct\": 82.250"));
        assert!(json.contains("\"redials\": 8"));
        assert!(json.contains("\"mttr_micros\": 7450000"));
        assert!(json.contains("\"availability\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn shards_default_to_one_and_render_when_set() {
        let reg = MetricsRegistry::new();
        reg.record(0, "fleet", 2008, sample_metrics(1), std::time::Duration::ZERO);
        assert_eq!(reg.rows()[0].shards, 1);
        assert!(reg.to_json().contains("\"shards\": 1"));
        reg.set_shards(0, 8);
        // Unknown index is a no-op, not a panic.
        reg.set_shards(99, 4);
        assert_eq!(reg.rows()[0].shards, 8);
        let table = reg.summary_table();
        assert!(table.contains("shards"));
        assert!(reg.to_json().contains("\"shards\": 8"));
    }

    #[test]
    fn availability_projects_from_supervisor_metrics() {
        use umtslab_sim::time::Duration;
        let m = AvailabilityMetrics {
            time_up: Duration::from_secs(90),
            time_down: Duration::from_secs(10),
            time_degraded: Duration::ZERO,
            sessions_established: 3,
            session_drops: 2,
            redials: 4,
            faults_injected: 5,
        };
        let a = Availability::from_metrics(&m);
        assert!((a.uptime_pct - 90.0).abs() < 1e-9);
        assert_eq!(a.redials, 4);
        assert_eq!(a.mttr_micros, Some(5_000_000));
        let empty = Availability::from_metrics(&AvailabilityMetrics::default());
        assert_eq!(empty.uptime_pct, 0.0);
        assert_eq!(empty.mttr_micros, None);
    }

    #[test]
    fn escape_json_handles_specials() {
        assert_eq!(escape_json("plain"), "plain");
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
