//! # umtslab-runner — the parallel experiment engine
//!
//! Every experiment in this workspace is an *independent* simulation: it
//! builds a private [`umtslab::Testbed`] from its own master seed and
//! never shares state with any other run. That makes the paper campaign
//! (Figures 1–7), multi-repetition seed sweeps and ablation grids
//! embarrassingly parallel — and this crate is the engine that shards
//! them across a pool of worker threads while keeping the output
//! **byte-identical** to the serial path:
//!
//! * [`pool`] — a scoped worker pool ([`run_jobs`]) that executes jobs in
//!   any order but collects results *by job index*, so the caller sees
//!   the same ordering regardless of thread scheduling;
//! * [`metrics`] — a registry ([`MetricsRegistry`]) workers publish into:
//!   lock-free atomic totals for the cross-job counters plus a per-job
//!   gauge table, rendered as a summary table or machine-readable JSON;
//! * [`paper`] — the paper campaign expressed as shardable jobs
//!   ([`run_paper_parallel`], [`run_campaign_parallel`]) reassembled in
//!   the exact order of [`umtslab::paper::paper_jobs`];
//! * [`fleet`] — the other axis of parallelism: one *coupled* topology
//!   partitioned across shards ([`umtslab::ShardedTestbed`]), each
//!   window fanned across the pool via [`run_jobs_mut`].
//!
//! Determinism is seed-based, not scheduling-based: each job's seed is
//! fixed *before* the pool starts (the campaign helpers reuse the serial
//! seed schemes; free-form sweeps can derive seeds with
//! [`umtslab_sim::rng::job_seed`]), so a campaign run with 1 worker and
//! with 16 workers produces identical bytes.
//!
//! ## Quickstart
//!
//! ```
//! use umtslab_runner::{run_paper_parallel, MetricsRegistry};
//! use umtslab_sim::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! // A shortened campaign (2 s flows) across 2 workers.
//! let run = run_paper_parallel(42, Some(Duration::from_secs(2)), 2, &registry).unwrap();
//! assert_eq!(run.voip.umts.label, "voip-g711-72kbps");
//! assert_eq!(registry.jobs_completed(), 4);
//! // Totals aggregated across all four jobs:
//! assert!(registry.totals().packets_delivered > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fleet;
pub mod metrics;
pub mod paper;
pub mod pool;

pub use fleet::run_fleet_parallel;
pub use metrics::{Availability, JobRow, MetricsRegistry, MetricsTotals};
pub use paper::{run_campaign_parallel, run_paper_parallel, run_reps_parallel};
pub use pool::{default_workers, run_jobs, run_jobs_mut};
