//! A scoped worker pool with deterministic result collection.
//!
//! Jobs are pulled from a shared queue by `workers` threads and may
//! finish in any order; results are written into a slot indexed by the
//! job's position in the input, so the returned `Vec` always matches the
//! input order. Combined with per-job seeding (every umtslab experiment
//! builds its own testbed from its own seed) this makes parallel runs
//! reproduce serial runs byte for byte.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A sensible worker count for this machine: the available parallelism,
/// capped at `jobs` (no point spawning idle threads).
pub fn default_workers(jobs: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    hw.min(jobs).max(1)
}

/// Runs `f` over every job on a pool of `workers` threads and returns the
/// results in input order.
///
/// `f` is called as `f(index, &job)`. Worker threads pull jobs from a
/// shared FIFO queue, so long jobs don't serialize behind short ones; a
/// panic in any job propagates to the caller once the scope joins.
///
/// With `workers == 1` the pool degenerates to an in-order serial loop on
/// one spawned thread — handy for A/B-ing parallel against serial runs.
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, &J) -> R + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, n);
    let queue: Mutex<VecDeque<(usize, J)>> = Mutex::new(jobs.into_iter().enumerate().collect());
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((idx, job)) = queue.lock().expect("queue poisoned").pop_front() else {
                    return;
                };
                let out = f(idx, &job);
                results.lock().expect("results poisoned")[idx] = Some(out);
            });
        }
    });

    results
        .into_inner()
        .expect("results poisoned")
        .into_iter()
        .map(|slot| slot.expect("every job ran"))
        .collect()
}

/// Runs `f` over every job **in place** on a pool of `workers` threads.
///
/// Like [`run_jobs`] but borrows the jobs mutably instead of consuming
/// them — the shape the sharded testbed needs, where the same shards are
/// driven window after window and must survive between calls. `f` is
/// called as `f(index, &mut job)`; each job is visited exactly once per
/// call, by exactly one thread.
///
/// With `workers == 1` no thread is spawned at all: the jobs run as a
/// plain in-order loop on the caller's thread, so the serial path has
/// zero synchronization overhead per window.
pub fn run_jobs_mut<J, F>(jobs: &mut [J], workers: usize, f: F)
where
    J: Send,
    F: Fn(usize, &mut J) + Sync,
{
    let n = jobs.len();
    if n == 0 {
        return;
    }
    let workers = workers.clamp(1, n);
    if workers == 1 {
        for (idx, job) in jobs.iter_mut().enumerate() {
            f(idx, job);
        }
        return;
    }
    let queue: Mutex<VecDeque<(usize, &mut J)>> = Mutex::new(jobs.iter_mut().enumerate().collect());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let Some((idx, job)) = queue.lock().expect("queue poisoned").pop_front() else {
                    return;
                };
                f(idx, job);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order_for_any_worker_count() {
        let jobs: Vec<u64> = (0..40).collect();
        let expected: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = run_jobs(jobs.clone(), workers, |_, j| j * j);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let got = run_jobs((0..100).collect::<Vec<_>>(), 7, |idx, j| {
            count.fetch_add(1, Ordering::SeqCst);
            assert_eq!(idx as i32, *j);
            idx
        });
        assert_eq!(count.load(Ordering::SeqCst), 100);
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn empty_and_oversized_pools_are_fine() {
        let got: Vec<u8> = run_jobs(Vec::<u8>::new(), 4, |_, j| *j);
        assert!(got.is_empty());
        let got = run_jobs(vec![9u8], 16, |_, j| *j);
        assert_eq!(got, vec![9]);
    }

    #[test]
    fn run_jobs_mut_visits_every_job_once_in_place() {
        for workers in [1, 2, 5, 32] {
            let mut jobs: Vec<u64> = (0..23).collect();
            let calls = AtomicUsize::new(0);
            run_jobs_mut(&mut jobs, workers, |idx, j| {
                calls.fetch_add(1, Ordering::SeqCst);
                assert_eq!(idx as u64, *j);
                *j *= *j;
            });
            assert_eq!(calls.load(Ordering::SeqCst), 23, "workers={workers}");
            let expected: Vec<u64> = (0..23).map(|j| j * j).collect();
            assert_eq!(jobs, expected, "workers={workers}");
        }
        let mut empty: Vec<u8> = Vec::new();
        run_jobs_mut(&mut empty, 4, |_, _| unreachable!());
    }

    #[test]
    fn default_workers_is_bounded() {
        assert_eq!(default_workers(0), 1);
        assert!(default_workers(3) <= 3);
        assert!(default_workers(1000) >= 1);
    }
}
