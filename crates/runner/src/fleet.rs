//! Parallel driving of the sharded fleet topology.
//!
//! A [`umtslab::ShardedTestbed`] advances in conservative windows: every
//! shard runs its own scheduler up to the window boundary, then the
//! shards exchange cross-shard handoffs. *Within* a window the shards
//! are fully independent, so this module fans each window out across the
//! worker pool — and because the merge order at barriers is canonical
//! (`(at, origin, seq)`), the parallel run is byte-identical to the
//! serial one. [`fleet_parallel_matches_serial`] in the tests pins that
//! down on hashes.
//!
//! [`fleet_parallel_matches_serial`]: self#tests

use umtslab::fleet::{run_fleet_with, FleetConfig, FleetReport};
use umtslab_sim::ShardScheduler;

use crate::pool::run_jobs_mut;

/// Runs the fleet scenario, driving each window's shards on a pool of
/// `workers` threads.
///
/// Produces a report byte-identical to [`umtslab::fleet::run_fleet`] for
/// any worker count: parallelism only changes wall time, never results.
pub fn run_fleet_parallel(cfg: &FleetConfig, workers: usize) -> FleetReport {
    run_fleet_with(cfg, |shards, horizon| {
        run_jobs_mut(shards, workers, |_, shard| shard.run_window(horizon));
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab::fleet::run_fleet;

    #[test]
    fn fleet_parallel_matches_serial() {
        let mut cfg = FleetConfig::small();
        cfg.shards = 4;
        let serial = run_fleet(&cfg);
        for workers in [1, 2, 4] {
            let parallel = run_fleet_parallel(&cfg, workers);
            assert_eq!(parallel.trace_hash, serial.trace_hash, "workers={workers}");
            assert_eq!(parallel.metrics_json, serial.metrics_json, "workers={workers}");
            assert_eq!(parallel.sent, serial.sent);
            assert_eq!(parallel.received, serial.received);
        }
    }
}
