//! The paper campaign, sharded: parallel drivers for Figures 1–7 and for
//! multi-repetition seed sweeps.
//!
//! Jobs and seeds come from [`umtslab::paper::paper_jobs`] /
//! [`umtslab::paper::campaign_seeds`] — the exact units and seed schemes
//! the serial [`umtslab::run_paper`] path uses — so a campaign's results
//! do not depend on the worker count, only on the base seed.

// lint:allow(D2) wall-clock feeds only the registry's host-time column, never simulation state
use std::time::Instant as WallInstant;

use umtslab::paper::{assemble_paper_run, campaign_seeds, paper_jobs};
use umtslab::prelude::Duration;
use umtslab::{ExperimentError, ExperimentResult, PaperJob, PaperRun};

use crate::metrics::MetricsRegistry;
use crate::pool::run_jobs;

/// Runs an arbitrary list of [`PaperJob`]s across `workers` threads,
/// publishing each finished job into `registry`. Results come back in
/// input order.
pub fn run_campaign_parallel(
    jobs: Vec<PaperJob>,
    workers: usize,
    registry: &MetricsRegistry,
) -> Vec<Result<ExperimentResult, ExperimentError>> {
    run_jobs(jobs, workers, |idx, job| {
        // lint:allow(D2) measuring host wall time per job for the summary table only
        let started = WallInstant::now();
        let outcome = job.run();
        if let Ok(result) = &outcome {
            registry.record(idx, job.label(), job.seed, result.metrics, started.elapsed());
        }
        outcome
    })
}

/// The parallel equivalent of [`umtslab::run_paper`]: the four
/// workload × path jobs of one campaign, sharded across `workers`
/// threads and reassembled in canonical order.
///
/// For equal seeds this produces byte-identical results to the serial
/// path for any worker count ≥ 1.
pub fn run_paper_parallel(
    seed: u64,
    duration: Option<Duration>,
    workers: usize,
    registry: &MetricsRegistry,
) -> Result<PaperRun, ExperimentError> {
    let jobs = paper_jobs(seed, duration).to_vec();
    let mut results = Vec::with_capacity(4);
    for outcome in run_campaign_parallel(jobs, workers, registry) {
        results.push(outcome?);
    }
    let results: [ExperimentResult; 4] =
        results.try_into().unwrap_or_else(|_| unreachable!("exactly four paper jobs"));
    Ok(assemble_paper_run(results))
}

/// Runs `reps` full paper campaigns (the figures binary's seed scheme:
/// repetition `r` uses `base_seed + r * 7919`) with all `4 * reps` jobs
/// sharded across one pool, so repetitions overlap instead of running
/// one after another.
pub fn run_reps_parallel(
    base_seed: u64,
    reps: usize,
    duration: Option<Duration>,
    workers: usize,
    registry: &MetricsRegistry,
) -> Result<Vec<PaperRun>, ExperimentError> {
    let mut jobs = Vec::with_capacity(reps * 4);
    for seed in campaign_seeds(base_seed, reps) {
        jobs.extend(paper_jobs(seed, duration));
    }
    let mut results = Vec::with_capacity(jobs.len());
    for outcome in run_campaign_parallel(jobs, workers, registry) {
        results.push(outcome?);
    }
    let mut runs = Vec::with_capacity(reps);
    let mut iter = results.into_iter();
    for _ in 0..reps {
        let chunk: [ExperimentResult; 4] = [
            iter.next().expect("4 results per rep"),
            iter.next().expect("4 results per rep"),
            iter.next().expect("4 results per rep"),
            iter.next().expect("4 results per rep"),
        ];
        runs.push(assemble_paper_run(chunk));
    }
    Ok(runs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab::paper::{render_series, run_paper, summary_row, Metric};
    use umtslab::PathKind;

    const SHORT: Option<Duration> = Some(Duration::from_secs(2));

    /// Renders every figure-relevant byte of a run: all four summaries
    /// plus all 4 × 4 metric series, with connect times and drop
    /// counters. Two runs with equal renderings are the same campaign.
    fn render_full(run: &PaperRun) -> String {
        let mut out = String::new();
        for r in [&run.voip.umts, &run.voip.ethernet, &run.cbr.umts, &run.cbr.ethernet] {
            out.push_str(&summary_row(r));
            out.push('\n');
            out.push_str(&format!(
                "connect={:?} drops={:?} events={}\n",
                r.connect_time, r.drops, r.events
            ));
            for m in [Metric::Bitrate, Metric::Jitter, Metric::Loss, Metric::Rtt] {
                out.push_str(&render_series(r, m));
            }
        }
        out
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let serial = run_paper(77, SHORT).unwrap();
        let registry = MetricsRegistry::new();
        let parallel = run_paper_parallel(77, SHORT, 4, &registry).unwrap();
        assert_eq!(render_full(&serial), render_full(&parallel));
        assert_eq!(registry.jobs_completed(), 4);
        // The registry saw exactly the events the four results report.
        let expected: u64 = [
            &parallel.voip.umts,
            &parallel.voip.ethernet,
            &parallel.cbr.umts,
            &parallel.cbr.ethernet,
        ]
        .iter()
        .map(|r| r.events)
        .sum();
        assert_eq!(registry.totals().events, expected);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let registry1 = MetricsRegistry::new();
        let one = run_paper_parallel(5, SHORT, 1, &registry1).unwrap();
        let registry3 = MetricsRegistry::new();
        let three = run_paper_parallel(5, SHORT, 3, &registry3).unwrap();
        assert_eq!(render_full(&one), render_full(&three));
        // Deterministic (simulation-side) totals agree too; wall time may
        // differ, so compare with it zeroed.
        let mut t1 = registry1.totals();
        let mut t3 = registry3.totals();
        t1.wall_micros = 0;
        t3.wall_micros = 0;
        assert_eq!(t1, t3);
    }

    #[test]
    fn reps_shard_flat_and_match_serial_reps() {
        let registry = MetricsRegistry::new();
        let runs = run_reps_parallel(2008, 2, SHORT, 4, &registry).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(registry.jobs_completed(), 8);
        let serial_rep1 = run_paper(2008 + 7919, SHORT).unwrap();
        assert_eq!(render_full(&runs[1]), render_full(&serial_rep1));
    }

    #[test]
    fn campaign_surface_errors_per_job() {
        // An impossible UMTS config: zero-duration dial timeout cannot
        // happen through PaperJob, so instead check the error plumbing by
        // running a normal job list and asserting all succeed.
        let jobs = vec![PaperJob {
            workload: umtslab::Workload::VoipG711,
            path: PathKind::EthernetToEthernet,
            seed: 9,
            duration: SHORT,
        }];
        let registry = MetricsRegistry::new();
        let outcomes = run_campaign_parallel(jobs, 2, &registry);
        assert_eq!(outcomes.len(), 1);
        assert!(outcomes[0].is_ok());
        assert_eq!(registry.jobs_completed(), 1);
    }
}
