//! The `runner` CLI: executes declarative experiment packs, lists the
//! shipped catalog, and drives the sharded fleet scenario.
//!
//! ```text
//! runner run [--nodes N] [--flows-per-node N] [--sinks N] [--shards N]
//!            [--seconds N] [--seed N] [--workers N] [--json]
//! runner pack <file> [--quick] [--json] [--record] [--check] [--shards N]
//! runner packs --list [--dir DIR] [--json] [--shards N]
//! ```
//!
//! `run` builds one coupled fleet topology partitioned across `--shards`
//! deterministic schedulers, drives it on a worker pool, and prints the
//! metrics summary plus a `trace_hash=` line; the hash is invariant
//! under the shard and worker counts, which CI gates on. `pack` parses a
//! pack document, runs every flow at every campaign seed (`--quick`:
//! first seed only; `--shards N`: N runs in flight at once), diffs the
//! measured metrics against the pack's stored goldens and exits nonzero
//! on drift. `--record` re-runs everything and rewrites the file
//! canonically with freshly measured goldens; `--check` only verifies
//! the round-trip byte-identity guarantee without running anything. All
//! simulation output is deterministic: no wall clock, no host entropy.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use umtslab::fleet::FleetConfig;
use umtslab_pack::canon::fmt_float;
use umtslab_pack::{
    assemble, diff, load_catalog, plan, record, render_diff_table, render_json, render_table,
    run_one, serialize, Pack, RunOutcome,
};
use umtslab_runner::{run_fleet_parallel, run_jobs, MetricsRegistry};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  runner run [--nodes N] [--flows-per-node N] [--sinks N] [--shards N]\n    \
         [--seconds N] [--seed N] [--workers N] [--json]\n  \
         runner pack <file> [--quick] [--json] [--record] [--check] [--shards N]\n  \
         runner packs --list [--dir DIR] [--json] [--shards N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("packs") => cmd_packs(&args[1..]),
        _ => usage(),
    }
}

/// Parses the value of a `--flag N` pair.
fn parse_num(it: &mut std::slice::Iter<'_, String>) -> Option<u64> {
    it.next().and_then(|v| v.parse().ok())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = FleetConfig::demo();
    let mut json = false;
    let mut workers: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--nodes" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.nodes = n as usize,
                _ => return usage(),
            },
            "--flows-per-node" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.flows_per_node = n as usize,
                _ => return usage(),
            },
            "--sinks" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.sinks = n as usize,
                _ => return usage(),
            },
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.shards = n as usize,
                _ => return usage(),
            },
            "--seconds" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.seconds = n,
                _ => return usage(),
            },
            "--seed" => match parse_num(&mut it) {
                Some(n) => cfg.seed = n,
                _ => return usage(),
            },
            "--workers" => match parse_num(&mut it) {
                Some(n) if n >= 1 => workers = Some(n as usize),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if cfg.shards > cfg.nodes + cfg.sinks {
        eprintln!("error: --shards must not exceed the node count");
        return ExitCode::from(2);
    }
    let workers = workers.unwrap_or_else(|| umtslab_runner::default_workers(cfg.shards));
    // lint:allow(D2) measuring host wall time for the summary table only
    let wall_start = std::time::Instant::now();
    let report = run_fleet_parallel(&cfg, workers);
    let wall = wall_start.elapsed();
    let registry = MetricsRegistry::new();
    let label = format!("fleet/{}n-{}f", cfg.nodes, cfg.flows());
    registry.record(0, label, cfg.seed, report.metrics, wall);
    registry.set_shards(0, cfg.shards as u32);
    if json {
        print!("{}", registry.to_json());
    } else {
        print!("{}", registry.summary_table());
        println!(
            "fleet: {} nodes, {} sinks, {} flows, {} ppp up, sent {} received {} rtts {}",
            report.nodes,
            report.sinks,
            report.flows,
            report.ppp_up,
            report.sent,
            report.received,
            report.rtt_count
        );
    }
    println!("trace_hash=0x{:016x}", report.trace_hash);
    ExitCode::SUCCESS
}

/// Escapes a string for the hand-rolled JSON output.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_pack(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut quick = false;
    let mut json = false;
    let mut do_record = false;
    let mut check_only = false;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--record" => do_record = true,
            "--check" => check_only = true,
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => shards = n as usize,
                _ => return usage(),
            },
            _ if !a.starts_with('-') && file.is_none() => file = Some(PathBuf::from(a)),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let pack = match Pack::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {}:{e}", file.display());
            return ExitCode::from(2);
        }
    };

    // The round-trip guarantee is checked on every invocation — a pack
    // whose canonical form does not re-parse to itself is a bug
    // regardless of what was asked for.
    let canonical = serialize(&pack);
    match Pack::parse(&canonical) {
        Ok(reparsed) if reparsed == pack && serialize(&reparsed) == canonical => {}
        Ok(_) => {
            eprintln!("error: {} violates the round-trip guarantee", file.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: canonical form of {} fails to re-parse: {e}", file.display());
            return ExitCode::FAILURE;
        }
    }
    if check_only {
        let verdict = if text == canonical { "canonical" } else { "non-canonical formatting" };
        println!(
            "{}: round-trip ok ({verdict}, {} flows, {} seeds, {} goldens)",
            file.display(),
            pack.flows.len(),
            pack.seeds.reps,
            pack.goldens.len()
        );
        return ExitCode::SUCCESS;
    }

    // Execute. `--record` always runs the full seed matrix: goldens
    // recorded from a partial run would silently drop coverage. Every
    // (flow, seed) run is independent, so `--shards N` fans them across
    // the worker pool; outcomes reassemble in plan order, which keeps
    // the output byte-identical to the serial path.
    let run_quick = quick && !do_record;
    let (planned, seeds_run) = plan(&pack, run_quick);
    let outcomes = run_jobs(planned, shards, |_, r| RunOutcome {
        flow: r.flow.clone(),
        seed: r.seed,
        outcome: run_one(r),
    });
    for outcome in &outcomes {
        if !json {
            match &outcome.outcome {
                Ok(m) => println!(
                    "ran {}@{}: sent {} received {} loss {:.4}",
                    outcome.flow,
                    outcome.seed,
                    m.result.summary.sent,
                    m.result.summary.received,
                    m.result.summary.loss_rate
                ),
                Err(e) => println!("ran {}@{}: FAILED ({e})", outcome.flow, outcome.seed),
            }
        }
    }
    let executed = assemble(outcomes, seeds_run);

    if do_record {
        let failed = executed.failures().count();
        if failed > 0 {
            for (flow, seed, err) in executed.failures() {
                eprintln!("error: {flow}@{seed} failed: {err}");
            }
            eprintln!("error: refusing to record goldens from a failing run");
            return ExitCode::FAILURE;
        }
        let recorded = record(&pack, &executed);
        let out = serialize(&recorded);
        if let Err(e) = std::fs::write(&file, &out) {
            eprintln!("error: cannot write {}: {e}", file.display());
            return ExitCode::from(2);
        }
        println!(
            "recorded {} golden(s) into {} (canonical form)",
            recorded.goldens.len(),
            file.display()
        );
        return ExitCode::SUCCESS;
    }

    let d = diff(&pack, &executed);
    let run_failures = executed.failures().count();
    let pass = d.pass() && run_failures == 0;
    if json {
        print!("{}", diff_json(&pack, &file, run_quick, shards, &executed, &d, pass));
    } else {
        print!("{}", render_diff_table(&d));
        for (flow, seed, err) in executed.failures() {
            println!("run {flow}@{seed} failed: {err}");
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders a golden diff as deterministic JSON.
fn diff_json(
    pack: &Pack,
    file: &Path,
    quick: bool,
    shards: usize,
    executed: &umtslab_pack::ExecutedPack,
    d: &umtslab_pack::GoldenDiff,
    pass: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"pack\": \"{}\",\n", escape_json(&pack.meta.name)));
    out.push_str(&format!("  \"file\": \"{}\",\n", escape_json(&file.display().to_string())));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str("  \"runs\": [");
    for (i, r) in executed.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let status = match &r.outcome {
            Ok(_) => "\"ok\"".to_string(),
            Err(e) => format!("\"failed: {}\"", escape_json(e)),
        };
        out.push_str(&format!(
            "\n    {{\"flow\": \"{}\", \"seed\": {}, \"status\": {status}}}",
            escape_json(&r.flow),
            r.seed
        ));
    }
    out.push_str("\n  ],\n  \"goldens\": [");
    for (i, row) in d.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let g = &row.golden;
        let actual = row.actual.map_or_else(|| "null".to_string(), fmt_float);
        out.push_str(&format!(
            "\n    {{\"flow\": \"{}\", \"seed\": {}, \"metric\": \"{}\", \
             \"expected\": {}, \"actual\": {actual}, \"tolerance\": {}, \"pass\": {}}}",
            escape_json(&g.flow),
            g.seed,
            g.metric,
            fmt_float(g.value),
            fmt_float(g.tolerance),
            row.pass
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"skipped\": {},\n", d.skipped));
    out.push_str(&format!("  \"pass\": {pass}\n"));
    out.push_str("}\n");
    out
}

fn cmd_packs(args: &[String]) -> ExitCode {
    let mut list = false;
    let mut json = false;
    let mut dir = PathBuf::from("packs");
    let mut shards: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--json" => json = true,
            "--dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => return usage(),
            },
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => shards = Some(n as usize),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if !list {
        return usage();
    }
    match load_catalog(&dir) {
        Ok(entries) => {
            // `--shards` is recorded in the listing so a catalog snapshot
            // carries the parallelism its packs are meant to run at; the
            // plain output stays byte-identical when the flag is absent.
            if json {
                match shards {
                    Some(n) => println!(
                        "{{\"shards\": {n}, \"catalog\": {}}}",
                        render_json(&entries).trim_end()
                    ),
                    None => print!("{}", render_json(&entries)),
                }
            } else {
                if let Some(n) = shards {
                    println!("shards: {n}");
                }
                print!("{}", render_table(&entries));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
