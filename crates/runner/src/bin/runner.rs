//! The `runner` CLI: executes declarative experiment packs, lists the
//! shipped catalog, and drives the sharded fleet scenario.
//!
//! ```text
//! runner run [--nodes N] [--flows-per-node N] [--sinks N] [--shards N]
//!            [--seconds N] [--seed N] [--workers N] [--json]
//! runner pack <file> [--quick] [--json] [--record] [--check] [--shards N]
//! runner packs --list [--dir DIR] [--json] [--shards N]
//! runner traffic [--scenario rrc-tcp] [--seed N] [--reps N] [--seconds N]
//!                [--trace FILE] [--shards N] [--workers N] [--json]
//! ```
//!
//! `run` builds one coupled fleet topology partitioned across `--shards`
//! deterministic schedulers, drives it on a worker pool, and prints the
//! metrics summary plus a `trace_hash=` line (in `--json` mode the hash
//! is a field of the JSON object instead); the hash is invariant under
//! the shard and worker counts, which CI gates on. `pack` parses a pack
//! document, runs every flow at every campaign seed (`--quick`: first
//! seed only; `--shards N`: N runs in flight at once), diffs the
//! measured metrics against the pack's stored goldens and exits nonzero
//! on drift. `--record` re-runs everything and rewrites the file
//! canonically with freshly measured goldens; `--check` only verifies
//! the round-trip byte-identity guarantee without running anything.
//! `traffic` runs the INRIA cross-layer scenario: a congestion-controlled
//! TCP flow on the UMTS uplink under every FACH/DCH switching policy,
//! each policy × seed cell an independent seeded experiment fanned
//! across the worker pool and reassembled in plan order — the output is
//! byte-identical for any `--shards`/`--workers` combination. All
//! simulation output is deterministic: no wall clock, no host entropy.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use umtslab::fleet::FleetConfig;
use umtslab::paper::campaign_seeds;
use umtslab::umtslab_traffic::{SwitchingPolicy, Trace};
use umtslab::{run_switching_policy, CrosslayerConfig};
use umtslab_pack::canon::fmt_float;
use umtslab_pack::{
    assemble, diff, load_catalog, load_trace, plan_with_trace, record, render_diff_table,
    render_json, render_table, run_one, serialize, Pack, RunOutcome,
};
use umtslab_runner::{run_fleet_parallel, run_jobs, MetricsRegistry};
use umtslab_sim::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  runner run [--nodes N] [--flows-per-node N] [--sinks N] [--shards N]\n    \
         [--seconds N] [--seed N] [--workers N] [--json]\n  \
         runner pack <file> [--quick] [--json] [--record] [--check] [--shards N]\n  \
         runner packs --list [--dir DIR] [--json] [--shards N]\n  \
         runner traffic [--scenario rrc-tcp] [--seed N] [--reps N] [--seconds N]\n    \
         [--trace FILE] [--shards N] [--workers N] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("pack") => cmd_pack(&args[1..]),
        Some("packs") => cmd_packs(&args[1..]),
        Some("traffic") => cmd_traffic(&args[1..]),
        _ => usage(),
    }
}

/// Parses the value of a `--flag N` pair.
fn parse_num(it: &mut std::slice::Iter<'_, String>) -> Option<u64> {
    it.next().and_then(|v| v.parse().ok())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut cfg = FleetConfig::demo();
    let mut json = false;
    let mut workers: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--nodes" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.nodes = n as usize,
                _ => return usage(),
            },
            "--flows-per-node" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.flows_per_node = n as usize,
                _ => return usage(),
            },
            "--sinks" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.sinks = n as usize,
                _ => return usage(),
            },
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.shards = n as usize,
                _ => return usage(),
            },
            "--seconds" => match parse_num(&mut it) {
                Some(n) if n >= 1 => cfg.seconds = n,
                _ => return usage(),
            },
            "--seed" => match parse_num(&mut it) {
                Some(n) => cfg.seed = n,
                _ => return usage(),
            },
            "--workers" => match parse_num(&mut it) {
                Some(n) if n >= 1 => workers = Some(n as usize),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if cfg.shards > cfg.nodes + cfg.sinks {
        eprintln!("error: --shards must not exceed the node count");
        return ExitCode::from(2);
    }
    let workers = workers.unwrap_or_else(|| umtslab_runner::default_workers(cfg.shards));
    // lint:allow(D2) measuring host wall time for the summary table only
    let wall_start = std::time::Instant::now();
    let report = run_fleet_parallel(&cfg, workers);
    let wall = wall_start.elapsed();
    let registry = MetricsRegistry::new();
    let label = format!("fleet/{}n-{}f", cfg.nodes, cfg.flows());
    registry.record(0, label, cfg.seed, report.metrics, wall);
    registry.set_shards(0, cfg.shards as u32);
    if json {
        // The trace hash rides inside the JSON object (a bare stdout
        // line would corrupt piped-to-parser output); table mode keeps
        // the greppable trailing line, which CI's shard gate matches.
        let body = registry.to_json();
        let rest = body.strip_prefix("{\n").expect("registry JSON opens an object");
        print!("{{\n  \"trace_hash\": \"0x{:016x}\",\n{rest}", report.trace_hash);
    } else {
        print!("{}", registry.summary_table());
        println!(
            "fleet: {} nodes, {} sinks, {} flows, {} ppp up, sent {} received {} rtts {}",
            report.nodes,
            report.sinks,
            report.flows,
            report.ppp_up,
            report.sent,
            report.received,
            report.rtt_count
        );
        println!("trace_hash=0x{:016x}", report.trace_hash);
    }
    ExitCode::SUCCESS
}

/// Escapes a string for the hand-rolled JSON output.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn cmd_pack(args: &[String]) -> ExitCode {
    let mut file: Option<PathBuf> = None;
    let mut quick = false;
    let mut json = false;
    let mut do_record = false;
    let mut check_only = false;
    let mut shards = 1usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--json" => json = true,
            "--record" => do_record = true,
            "--check" => check_only = true,
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => shards = n as usize,
                _ => return usage(),
            },
            _ if !a.starts_with('-') && file.is_none() => file = Some(PathBuf::from(a)),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };

    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", file.display());
            return ExitCode::from(2);
        }
    };
    let pack = match Pack::parse(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {}:{e}", file.display());
            return ExitCode::from(2);
        }
    };

    // The round-trip guarantee is checked on every invocation — a pack
    // whose canonical form does not re-parse to itself is a bug
    // regardless of what was asked for.
    let canonical = serialize(&pack);
    match Pack::parse(&canonical) {
        Ok(reparsed) if reparsed == pack && serialize(&reparsed) == canonical => {}
        Ok(_) => {
            eprintln!("error: {} violates the round-trip guarantee", file.display());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: canonical form of {} fails to re-parse: {e}", file.display());
            return ExitCode::FAILURE;
        }
    }
    if check_only {
        let verdict = if text == canonical { "canonical" } else { "non-canonical formatting" };
        println!(
            "{}: round-trip ok ({verdict}, {} flows, {} seeds, {} goldens)",
            file.display(),
            pack.flows.len(),
            pack.seeds.reps,
            pack.goldens.len()
        );
        return ExitCode::SUCCESS;
    }

    // A pack that references a [trace] needs the trace file itself
    // before anything can run.
    let trace = match load_trace(&pack, Some(&file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    // Execute. `--record` always runs the full seed matrix: goldens
    // recorded from a partial run would silently drop coverage. Every
    // (flow, seed) run is independent, so `--shards N` fans them across
    // the worker pool; outcomes reassemble in plan order, which keeps
    // the output byte-identical to the serial path.
    let run_quick = quick && !do_record;
    let (planned, seeds_run) = plan_with_trace(&pack, run_quick, trace.as_ref());
    let outcomes = run_jobs(planned, shards, |_, r| RunOutcome {
        flow: r.flow.clone(),
        seed: r.seed,
        outcome: run_one(r),
    });
    for outcome in &outcomes {
        if !json {
            match &outcome.outcome {
                Ok(m) => println!(
                    "ran {}@{}: sent {} received {} loss {:.4}",
                    outcome.flow,
                    outcome.seed,
                    m.result.summary.sent,
                    m.result.summary.received,
                    m.result.summary.loss_rate
                ),
                Err(e) => println!("ran {}@{}: FAILED ({e})", outcome.flow, outcome.seed),
            }
        }
    }
    let executed = assemble(outcomes, seeds_run);

    if do_record {
        let failed = executed.failures().count();
        if failed > 0 {
            for (flow, seed, err) in executed.failures() {
                eprintln!("error: {flow}@{seed} failed: {err}");
            }
            eprintln!("error: refusing to record goldens from a failing run");
            return ExitCode::FAILURE;
        }
        let recorded = record(&pack, &executed);
        let out = serialize(&recorded);
        if let Err(e) = std::fs::write(&file, &out) {
            eprintln!("error: cannot write {}: {e}", file.display());
            return ExitCode::from(2);
        }
        println!(
            "recorded {} golden(s) into {} (canonical form)",
            recorded.goldens.len(),
            file.display()
        );
        return ExitCode::SUCCESS;
    }

    let d = diff(&pack, &executed);
    let run_failures = executed.failures().count();
    let pass = d.pass() && run_failures == 0;
    if json {
        print!("{}", diff_json(&pack, &file, run_quick, shards, &executed, &d, pass));
    } else {
        print!("{}", render_diff_table(&d));
        for (flow, seed, err) in executed.failures() {
            println!("run {flow}@{seed} failed: {err}");
        }
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders a golden diff as deterministic JSON.
fn diff_json(
    pack: &Pack,
    file: &Path,
    quick: bool,
    shards: usize,
    executed: &umtslab_pack::ExecutedPack,
    d: &umtslab_pack::GoldenDiff,
    pass: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"pack\": \"{}\",\n", escape_json(&pack.meta.name)));
    out.push_str(&format!("  \"file\": \"{}\",\n", escape_json(&file.display().to_string())));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str("  \"runs\": [");
    for (i, r) in executed.runs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let status = match &r.outcome {
            Ok(_) => "\"ok\"".to_string(),
            Err(e) => format!("\"failed: {}\"", escape_json(e)),
        };
        out.push_str(&format!(
            "\n    {{\"flow\": \"{}\", \"seed\": {}, \"status\": {status}}}",
            escape_json(&r.flow),
            r.seed
        ));
    }
    out.push_str("\n  ],\n  \"goldens\": [");
    for (i, row) in d.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let g = &row.golden;
        let actual = row.actual.map_or_else(|| "null".to_string(), fmt_float);
        out.push_str(&format!(
            "\n    {{\"flow\": \"{}\", \"seed\": {}, \"metric\": \"{}\", \
             \"expected\": {}, \"actual\": {actual}, \"tolerance\": {}, \"pass\": {}}}",
            escape_json(&g.flow),
            g.seed,
            g.metric,
            fmt_float(g.value),
            fmt_float(g.tolerance),
            row.pass
        ));
    }
    out.push_str("\n  ],\n");
    out.push_str(&format!("  \"skipped\": {},\n", d.skipped));
    out.push_str(&format!("  \"pass\": {pass}\n"));
    out.push_str("}\n");
    out
}

/// Formats a duration as exact decimal seconds (microsecond fraction) —
/// a pure function of the integer tick count, so rendered reports are
/// byte-deterministic.
fn fmt_dur_s(d: Duration) -> String {
    format!("{}.{:06}", d.total_secs(), d.total_micros() % 1_000_000)
}

/// One line of the traffic report in its canonical hashable spelling.
fn traffic_row(r: &umtslab::umtslab_traffic::PolicyReport) -> String {
    let d = &r.dwell;
    format!(
        "{} seed={} goodput_bps={} segments={} retx={} timeouts={} max_cwnd={} \
         rrc_transitions={} dwell_idle={} dwell_fach={} dwell_dch={} dwell_dch_up={} \
         idle_promotions={} promotion_latency={}",
        r.policy.name(),
        r.seed,
        r.goodput_bps,
        r.delivered_segments,
        r.retransmits,
        r.timeouts,
        r.max_cwnd_bytes,
        r.rrc_transitions,
        fmt_dur_s(d.idle),
        fmt_dur_s(d.fach),
        fmt_dur_s(d.dch),
        fmt_dur_s(d.dch_upgraded),
        d.idle_promotions,
        fmt_dur_s(d.idle_promotion_latency),
    )
}

/// FNV-1a over the canonical report rows: invariant under
/// `--shards`/`--workers` because rows are assembled in plan order.
fn traffic_hash(rows: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for row in rows {
        for b in row.bytes().chain([b'\n']) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn cmd_traffic(args: &[String]) -> ExitCode {
    let mut scenario = "rrc-tcp".to_string();
    let mut seed = 2008u64;
    let mut reps = 3usize;
    let mut seconds = 30u64;
    let mut trace_file: Option<PathBuf> = None;
    let mut shards = 1usize;
    let mut workers: Option<usize> = None;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--scenario" => match it.next() {
                Some(s) => scenario = s.clone(),
                None => return usage(),
            },
            "--seed" => match parse_num(&mut it) {
                Some(n) => seed = n,
                _ => return usage(),
            },
            "--reps" => match parse_num(&mut it) {
                Some(n) if n >= 1 => reps = n as usize,
                _ => return usage(),
            },
            "--seconds" => match parse_num(&mut it) {
                Some(n) if n >= 1 => seconds = n,
                _ => return usage(),
            },
            "--trace" => match it.next() {
                Some(f) => trace_file = Some(PathBuf::from(f)),
                None => return usage(),
            },
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => shards = n as usize,
                _ => return usage(),
            },
            "--workers" => match parse_num(&mut it) {
                Some(n) if n >= 1 => workers = Some(n as usize),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if scenario != "rrc-tcp" {
        eprintln!("error: unknown traffic scenario `{scenario}` (rrc-tcp)");
        return ExitCode::from(2);
    }
    let trace = match &trace_file {
        None => None,
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|text| Trace::parse(&text).map_err(|e| e.to_string()))
        {
            Ok(t) => Some(t),
            Err(e) => {
                eprintln!("error: cannot load trace {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    // The plan: every switching policy × every campaign seed, in fixed
    // (policy-major, seed-minor) order. Each cell is an independent
    // seeded experiment, so fanning the plan across the pool and
    // collecting by job index reproduces the serial bytes exactly;
    // `--shards` and `--workers` both just size the pool (kept separate
    // for symmetry with `run`, where they mean different things).
    let seeds = campaign_seeds(seed, reps);
    let mut jobs: Vec<CrosslayerConfig> = Vec::new();
    for policy in SwitchingPolicy::ALL {
        for &s in &seeds {
            let mut cfg = CrosslayerConfig::new(policy, s);
            cfg.tcp.duration = Duration::from_secs(seconds);
            cfg.access_trace = trace.clone();
            jobs.push(cfg);
        }
    }
    let pool = shards.max(workers.unwrap_or(1));
    let outcomes = run_jobs(jobs, pool, |_, cfg| run_switching_policy(cfg));

    let mut reports = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok((report, _)) => reports.push(report),
            Err(e) => {
                eprintln!("error: traffic cell failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let rows: Vec<String> = reports.iter().map(traffic_row).collect();
    let hash = traffic_hash(&rows);

    if json {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"scenario\": \"{}\",\n", escape_json(&scenario)));
        out.push_str(&format!("  \"seed\": {seed},\n  \"reps\": {reps},\n"));
        out.push_str(&format!("  \"seconds\": {seconds},\n"));
        match &trace {
            Some(t) => out.push_str(&format!("  \"trace\": \"{}\",\n", escape_json(&t.name))),
            None => out.push_str("  \"trace\": null,\n"),
        }
        out.push_str("  \"cells\": [");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let d = &r.dwell;
            out.push_str(&format!(
                "\n    {{\"policy\": \"{}\", \"seed\": {}, \"goodput_bps\": {}, \
                 \"delivered_segments\": {}, \"retransmits\": {}, \"timeouts\": {}, \
                 \"max_cwnd_bytes\": {}, \"rrc_transitions\": {}, \
                 \"dwell_idle_s\": {}, \"dwell_fach_s\": {}, \"dwell_dch_s\": {}, \
                 \"dwell_dch_upgraded_s\": {}, \"idle_promotions\": {}, \
                 \"idle_promotion_latency_s\": {}}}",
                r.policy.name(),
                r.seed,
                r.goodput_bps,
                r.delivered_segments,
                r.retransmits,
                r.timeouts,
                r.max_cwnd_bytes,
                r.rrc_transitions,
                fmt_dur_s(d.idle),
                fmt_dur_s(d.fach),
                fmt_dur_s(d.dch),
                fmt_dur_s(d.dch_upgraded),
                d.idle_promotions,
                fmt_dur_s(d.idle_promotion_latency),
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str(&format!("  \"trace_hash\": \"0x{hash:016x}\"\n}}\n"));
        print!("{out}");
    } else {
        println!(
            "{:<12} {:>10} {:>12} {:>9} {:>6} {:>9} {:>10} {:>5} {:>10} {:>10} {:>10}",
            "policy",
            "seed",
            "goodput_bps",
            "segments",
            "retx",
            "timeouts",
            "max_cwnd",
            "rrc",
            "idle_s",
            "fach_s",
            "dch_s"
        );
        for r in &reports {
            let d = &r.dwell;
            println!(
                "{:<12} {:>10} {:>12} {:>9} {:>6} {:>9} {:>10} {:>5} {:>10} {:>10} {:>10}",
                r.policy.name(),
                r.seed,
                r.goodput_bps,
                r.delivered_segments,
                r.retransmits,
                r.timeouts,
                r.max_cwnd_bytes,
                r.rrc_transitions,
                fmt_dur_s(d.idle),
                fmt_dur_s(d.fach),
                fmt_dur_s(d.dch + d.dch_upgraded),
            );
        }
        println!("trace_hash=0x{hash:016x}");
    }
    ExitCode::SUCCESS
}

fn cmd_packs(args: &[String]) -> ExitCode {
    let mut list = false;
    let mut json = false;
    let mut dir = PathBuf::from("packs");
    let mut shards: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => list = true,
            "--json" => json = true,
            "--dir" => match it.next() {
                Some(d) => dir = PathBuf::from(d),
                None => return usage(),
            },
            "--shards" => match parse_num(&mut it) {
                Some(n) if n >= 1 => shards = Some(n as usize),
                _ => return usage(),
            },
            _ => return usage(),
        }
    }
    if !list {
        return usage();
    }
    match load_catalog(&dir) {
        Ok(entries) => {
            // `--shards` is recorded in the listing so a catalog snapshot
            // carries the parallelism its packs are meant to run at; the
            // plain output stays byte-identical when the flag is absent.
            if json {
                match shards {
                    Some(n) => println!(
                        "{{\"shards\": {n}, \"catalog\": {}}}",
                        render_json(&entries).trim_end()
                    ),
                    None => print!("{}", render_json(&entries)),
                }
            } else {
                if let Some(n) = shards {
                    println!("shards: {n}");
                }
                print!("{}", render_table(&entries));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
