//! Availability accounting for a supervised UMTS session.
//!
//! All counters are integer microseconds/counts so that two same-seed
//! runs produce bit-identical metrics (the chaos determinism gate hashes
//! this struct field by field).

use umtslab_sim::time::Duration;

/// Cumulative availability metrics for one supervised session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvailabilityMetrics {
    /// Time spent with the session up and healthy, in microseconds.
    pub time_up_micros: u64,
    /// Time spent with the session down (dialing, backoff, or idle after
    /// a drop), in microseconds.
    pub time_down_micros: u64,
    /// Time spent degraded (session nominally up but failing health
    /// probes), in microseconds.
    pub time_degraded_micros: u64,
    /// Successful session establishments (including the first).
    pub sessions_established: u64,
    /// Established sessions that subsequently dropped.
    pub session_drops: u64,
    /// Redial attempts actually launched (after backoff expiry).
    pub redials: u64,
    /// Faults injected against this session by the campaign driver.
    pub faults_injected: u64,
}

impl AvailabilityMetrics {
    /// Total observed time, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.time_up_micros + self.time_down_micros + self.time_degraded_micros
    }

    /// Fraction of observed time the session was up (degraded time counts
    /// as unavailable). `None` before any time has been observed.
    pub fn uptime_fraction(&self) -> Option<f64> {
        let total = self.total_micros();
        if total == 0 {
            return None;
        }
        Some(self.time_up_micros as f64 / total as f64)
    }

    /// Mean time between failures: up time per drop. `None` until the
    /// first drop.
    pub fn mtbf(&self) -> Option<Duration> {
        if self.session_drops == 0 {
            return None;
        }
        Some(Duration::from_micros(self.time_up_micros / self.session_drops))
    }

    /// Mean time to repair: non-up time per re-establishment after a
    /// drop. `None` until the first repair.
    pub fn mttr(&self) -> Option<Duration> {
        let repairs = self.sessions_established.saturating_sub(1);
        if repairs == 0 {
            return None;
        }
        Some(Duration::from_micros((self.time_down_micros + self.time_degraded_micros) / repairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_need_observations() {
        let m = AvailabilityMetrics::default();
        assert_eq!(m.uptime_fraction(), None);
        assert_eq!(m.mtbf(), None);
        assert_eq!(m.mttr(), None);
    }

    #[test]
    fn derived_figures_follow_the_counters() {
        let m = AvailabilityMetrics {
            time_up_micros: 90_000_000,
            time_down_micros: 9_000_000,
            time_degraded_micros: 1_000_000,
            sessions_established: 4,
            session_drops: 3,
            redials: 5,
            faults_injected: 6,
        };
        assert!((m.uptime_fraction().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(m.mtbf(), Some(Duration::from_secs(30)));
        // (9s + 1s) / 3 repairs.
        assert_eq!(m.mttr(), Some(Duration::from_micros(10_000_000 / 3)));
    }
}
