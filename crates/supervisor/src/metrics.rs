//! Availability accounting for a supervised UMTS session.
//!
//! Time is carried as simulated [`Duration`]s (integer microseconds under
//! the hood) so that two same-seed runs produce bit-identical metrics
//! (the chaos determinism gate compares this struct field by field).

use umtslab_sim::time::Duration;

/// Cumulative availability metrics for one supervised session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AvailabilityMetrics {
    /// Time spent with the session up and healthy.
    pub time_up: Duration,
    /// Time spent with the session down (dialing, backoff, or idle after
    /// a drop).
    pub time_down: Duration,
    /// Time spent degraded (session nominally up but failing health
    /// probes).
    pub time_degraded: Duration,
    /// Successful session establishments (including the first).
    pub sessions_established: u64,
    /// Established sessions that subsequently dropped.
    pub session_drops: u64,
    /// Redial attempts actually launched (after backoff expiry).
    pub redials: u64,
    /// Faults injected against this session by the campaign driver.
    pub faults_injected: u64,
}

impl AvailabilityMetrics {
    /// Total observed time.
    pub fn total(&self) -> Duration {
        self.time_up + self.time_down + self.time_degraded
    }

    /// Fraction of observed time the session was up (degraded time counts
    /// as unavailable). `None` before any time has been observed.
    pub fn uptime_fraction(&self) -> Option<f64> {
        let total = self.total();
        if total.is_zero() {
            return None;
        }
        Some(self.time_up.as_secs_f64() / total.as_secs_f64())
    }

    /// Mean time between failures: up time per drop. `None` until the
    /// first drop.
    pub fn mtbf(&self) -> Option<Duration> {
        if self.session_drops == 0 {
            return None;
        }
        Some(self.time_up / self.session_drops)
    }

    /// Mean time to repair: non-up time per re-establishment after a
    /// drop. `None` until the first repair.
    pub fn mttr(&self) -> Option<Duration> {
        let repairs = self.sessions_established.saturating_sub(1);
        if repairs == 0 {
            return None;
        }
        Some((self.time_down + self.time_degraded) / repairs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_need_observations() {
        let m = AvailabilityMetrics::default();
        assert_eq!(m.uptime_fraction(), None);
        assert_eq!(m.mtbf(), None);
        assert_eq!(m.mttr(), None);
    }

    #[test]
    fn derived_figures_follow_the_counters() {
        let m = AvailabilityMetrics {
            time_up: Duration::from_secs(90),
            time_down: Duration::from_secs(9),
            time_degraded: Duration::from_secs(1),
            sessions_established: 4,
            session_drops: 3,
            redials: 5,
            faults_injected: 6,
        };
        assert!((m.uptime_fraction().unwrap() - 0.9).abs() < 1e-12);
        assert_eq!(m.mtbf(), Some(Duration::from_secs(30)));
        // (9s + 1s) / 3 repairs.
        assert_eq!(m.mttr(), Some(Duration::from_micros(10_000_000 / 3)));
    }
}
