//! Capped exponential backoff with deterministic jitter.
//!
//! The paper's management scripts redial pppd as soon as it dies; on a
//! flapping radio link that turns into a tight dial/fail loop that keeps
//! the modem busy and the operator's RADIUS unhappy. The supervisor
//! spaces redials with the classic capped exponential schedule
//! (`base * 2^attempt`, clamped to `cap`) plus a bounded jitter term so
//! that a fleet of nodes recovering from the same outage does not redial
//! in lockstep. Jitter is drawn from a [`SimRng`], so the whole schedule
//! is a pure function of the seed.

use umtslab_sim::rng::SimRng;
use umtslab_sim::time::Duration;

/// Parameters of the backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the first redial.
    pub base: Duration,
    /// Upper bound for the exponential term.
    pub cap: Duration,
    /// Jitter as a fraction of the (capped) delay: the drawn delay lies
    /// in `[d, d * (1 + jitter_frac)]`. Zero disables jitter.
    pub jitter_frac: f64,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig {
            base: Duration::from_millis(500),
            cap: Duration::from_secs(30),
            jitter_frac: 0.1,
        }
    }
}

/// A stateful redial schedule.
#[derive(Debug, Clone)]
pub struct BackoffSchedule {
    config: BackoffConfig,
    rng: SimRng,
    attempt: u32,
}

impl BackoffSchedule {
    /// Creates a schedule; `rng` should be forked off the campaign seed.
    pub fn new(config: BackoffConfig, rng: SimRng) -> BackoffSchedule {
        BackoffSchedule { config, rng, attempt: 0 }
    }

    /// Consecutive failures so far (resets when the session comes up).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// The delay before the next redial; advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let base = self.config.base.total_micros();
        let cap = self.config.cap.total_micros();
        // base * 2^attempt, saturating, then clamped to the cap.
        let exp = self.attempt.min(63);
        let raw = base.saturating_mul(1u64.checked_shl(exp).unwrap_or(u64::MAX)).min(cap);
        self.attempt = self.attempt.saturating_add(1);
        let jitter = if self.config.jitter_frac > 0.0 {
            (raw as f64 * self.config.jitter_frac * self.rng.uniform01()) as u64
        } else {
            0
        };
        Duration::from_micros(raw.saturating_add(jitter))
    }

    /// Resets the attempt counter after a successful (re)connection.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> BackoffConfig {
        BackoffConfig { jitter_frac: 0.0, ..BackoffConfig::default() }
    }

    fn schedule(config: BackoffConfig, seed: u64) -> BackoffSchedule {
        BackoffSchedule::new(config, SimRng::seed_from_u64(seed))
    }

    /// Property: without jitter the schedule grows monotonically (strictly
    /// doubling) until it reaches the cap, then stays flat.
    #[test]
    fn delays_grow_monotonically_until_the_cap() {
        let cfg = no_jitter();
        let mut s = schedule(cfg, 1);
        let mut prev = Duration::ZERO;
        let mut capped = false;
        for _ in 0..32 {
            let d = s.next_delay();
            assert!(d >= prev, "schedule went backwards: {prev:?} -> {d:?}");
            if d == cfg.cap {
                capped = true;
            } else {
                assert!(!capped, "left the cap after reaching it");
                assert!(d > prev, "pre-cap growth must be strict");
            }
            prev = d;
        }
        assert!(capped, "schedule never reached the cap");
    }

    /// Property: the cap (plus the jitter allowance) is never exceeded,
    /// for many seeds and many attempts.
    #[test]
    fn cap_is_respected_even_with_jitter() {
        let cfg = BackoffConfig::default();
        let limit_micros =
            cfg.cap.total_micros() + (cfg.cap.total_micros() as f64 * cfg.jitter_frac) as u64;
        for seed in 0..50 {
            let mut s = schedule(cfg, seed);
            for attempt in 0..64 {
                let d = s.next_delay();
                assert!(
                    d.total_micros() <= limit_micros,
                    "seed {seed} attempt {attempt}: {d:?} exceeds cap+jitter"
                );
            }
        }
    }

    /// Property: jitter is bounded by `jitter_frac` of the capped delay.
    #[test]
    fn jitter_is_bounded_by_the_configured_fraction() {
        let cfg = BackoffConfig { jitter_frac: 0.25, ..BackoffConfig::default() };
        let base = no_jitter();
        for seed in 0..50 {
            let mut jittered = schedule(cfg, seed);
            let mut clean = schedule(base, seed);
            for attempt in 0..20 {
                let d = jittered.next_delay().total_micros();
                let raw = clean.next_delay().total_micros();
                assert!(d >= raw, "seed {seed} attempt {attempt}: jitter must not shorten");
                let max = raw + (raw as f64 * cfg.jitter_frac) as u64;
                assert!(d <= max, "seed {seed} attempt {attempt}: {d} > {max}");
            }
        }
    }

    /// Property: the schedule is a pure function of the seed — identical
    /// seeds yield identical delay sequences, different seeds diverge.
    #[test]
    fn identical_seeds_yield_identical_sequences() {
        let cfg = BackoffConfig::default();
        for seed in 0..20 {
            let mut a = schedule(cfg, seed);
            let mut b = schedule(cfg, seed);
            let sa: Vec<u64> = (0..16).map(|_| a.next_delay().total_micros()).collect();
            let sb: Vec<u64> = (0..16).map(|_| b.next_delay().total_micros()).collect();
            assert_eq!(sa, sb, "seed {seed} not reproducible");
        }
        let mut a = schedule(cfg, 1);
        let mut b = schedule(cfg, 2);
        let sa: Vec<u64> = (0..16).map(|_| a.next_delay().total_micros()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_delay().total_micros()).collect();
        assert_ne!(sa, sb, "different seeds should jitter differently");
    }

    #[test]
    fn reset_restarts_from_the_base_delay() {
        let mut s = schedule(no_jitter(), 3);
        let first = s.next_delay();
        let _ = s.next_delay();
        let _ = s.next_delay();
        s.reset();
        assert_eq!(s.attempt(), 0);
        assert_eq!(s.next_delay(), first);
    }
}
