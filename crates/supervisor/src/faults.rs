//! Fault campaigns: scripted and seeded schedules of session faults.
//!
//! A [`FaultPlan`] is an ordered list of `(instant, fault)` pairs fired
//! against a node's UMTS stack as the simulation crosses each instant.
//! Plans are either scripted (exact times, for unit tests and targeted
//! repros) or seeded (a Poisson process over a configurable fault mix,
//! for chaos campaigns). Seeded plans are pure functions of the seed, so
//! a chaos run is as replayable as any other experiment.

use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::attachment::SessionFault;

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When to inject.
    pub at: Instant,
    /// What to inject.
    pub fault: SessionFault,
}

/// Parameters of a seeded (randomised) campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// No faults before this instant (lets the first dial settle).
    pub start: Instant,
    /// No faults at or after this instant (lets the last recovery land).
    pub horizon: Instant,
    /// Mean gap between consecutive faults (exponentially distributed).
    pub mean_gap: Duration,
    /// The fault mix to draw from, uniformly.
    pub mix: Vec<SessionFault>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            start: Instant::from_secs(20),
            horizon: Instant::from_secs(320),
            mean_gap: Duration::from_secs(45),
            mix: vec![
                SessionFault::PppTerminate,
                SessionFault::ModemHang,
                SessionFault::RrcRelease,
                SessionFault::OperatorDetach,
                SessionFault::BearerPreemption,
            ],
        }
    }
}

/// An ordered, consumable schedule of session faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
    cursor: usize,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new(), cursor: 0 }
    }

    /// A scripted plan; entries are sorted by time (stable, so same-time
    /// faults fire in the order given).
    pub fn scripted(entries: Vec<(Instant, SessionFault)>) -> FaultPlan {
        let mut events: Vec<FaultEvent> =
            entries.into_iter().map(|(at, fault)| FaultEvent { at, fault }).collect();
        events.sort_by_key(|e| e.at);
        FaultPlan { events, cursor: 0 }
    }

    /// A seeded plan: fault times form a Poisson process with the
    /// configured mean gap, each fault drawn uniformly from the mix.
    /// Deterministic in `seed`.
    pub fn seeded(seed: u64, config: &CampaignConfig) -> FaultPlan {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut events = Vec::new();
        if config.mix.is_empty() || config.horizon <= config.start {
            return FaultPlan { events, cursor: 0 };
        }
        let mut t = config.start;
        loop {
            let gap = rng.exponential(config.mean_gap.as_secs_f64());
            t = t.saturating_add(Duration::from_secs_f64(gap));
            if t >= config.horizon {
                break;
            }
            let idx = rng.uniform_u64(0, config.mix.len() as u64 - 1) as usize;
            events.push(FaultEvent { at: t, fault: config.mix[idx] });
        }
        FaultPlan { events, cursor: 0 }
    }

    /// The full schedule (including already-fired entries).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// When the next unfired fault is due, if any.
    pub fn next_due(&self) -> Option<Instant> {
        self.events.get(self.cursor).map(|e| e.at)
    }

    /// Pops every fault due at or before `now`, in schedule order.
    pub fn pop_due(&mut self, now: Instant) -> Vec<SessionFault> {
        let mut due = Vec::new();
        while let Some(e) = self.events.get(self.cursor) {
            if e.at > now {
                break;
            }
            due.push(e.fault);
            self.cursor += 1;
        }
        due
    }

    /// True once every scheduled fault has fired.
    pub fn exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_plan_fires_in_time_order() {
        let mut plan = FaultPlan::scripted(vec![
            (Instant::from_secs(30), SessionFault::ModemHang),
            (Instant::from_secs(10), SessionFault::PppTerminate),
            (Instant::from_secs(10), SessionFault::RrcRelease),
        ]);
        assert_eq!(plan.next_due(), Some(Instant::from_secs(10)));
        assert_eq!(
            plan.pop_due(Instant::from_secs(10)),
            vec![SessionFault::PppTerminate, SessionFault::RrcRelease]
        );
        assert_eq!(plan.pop_due(Instant::from_secs(29)), vec![]);
        assert_eq!(plan.pop_due(Instant::from_secs(31)), vec![SessionFault::ModemHang]);
        assert!(plan.exhausted());
    }

    #[test]
    fn seeded_plan_is_deterministic_and_windowed() {
        let cfg = CampaignConfig::default();
        let a = FaultPlan::seeded(42, &cfg);
        let b = FaultPlan::seeded(42, &cfg);
        assert_eq!(a.events(), b.events());
        assert!(!a.events().is_empty(), "default campaign should schedule faults");
        for e in a.events() {
            assert!(e.at >= cfg.start && e.at < cfg.horizon, "{:?} outside window", e.at);
        }
        let c = FaultPlan::seeded(43, &cfg);
        assert_ne!(a.events(), c.events(), "different seeds should differ");
    }

    #[test]
    fn empty_mix_yields_empty_plan() {
        let cfg = CampaignConfig { mix: Vec::new(), ..CampaignConfig::default() };
        let plan = FaultPlan::seeded(7, &cfg);
        assert!(plan.events().is_empty());
        assert!(plan.exhausted());
        assert_eq!(plan.next_due(), None);
    }
}
