//! # umtslab-supervisor — the UMTS session lifecycle daemon
//!
//! The paper's testbed keeps its 3G sessions alive with shell-script
//! watchdogs around pppd and the `umts` vsys command. This crate models
//! that layer as a deterministic state machine plus the chaos tooling to
//! exercise it:
//!
//! * [`faults`] — scripted and seeded campaigns of session-level faults
//!   (modem hangs, AT timeouts, PAP rejects, LCP terminates, RRC
//!   releases, bearer preemption, operator detach) injected against the
//!   live stack;
//! * [`backoff`] — capped exponential redial backoff with seeded jitter;
//! * [`supervisor`] — the `Down -> Dialing -> Up -> Degraded -> Backoff`
//!   machine that health-probes, tears down, power cycles and redials,
//!   and restores the slice's UMTS routing after every recovery;
//! * [`metrics`] — integer-microsecond availability accounting (uptime,
//!   MTBF, MTTR, redial counts) that hashes bit-identically across
//!   same-seed runs.
//!
//! ## Example
//!
//! ```
//! use umtslab_supervisor::backoff::{BackoffConfig, BackoffSchedule};
//! use umtslab_sim::rng::SimRng;
//!
//! // The redial schedule is a pure function of the seed.
//! let cfg = BackoffConfig::default();
//! let mut a = BackoffSchedule::new(cfg, SimRng::seed_from_u64(7));
//! let mut b = BackoffSchedule::new(cfg, SimRng::seed_from_u64(7));
//! assert_eq!(a.next_delay(), b.next_delay());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod faults;
pub mod metrics;
pub mod supervisor;

pub use backoff::{BackoffConfig, BackoffSchedule};
pub use faults::{CampaignConfig, FaultEvent, FaultPlan};
pub use metrics::AvailabilityMetrics;
pub use supervisor::{SessionSupervisor, SupervisorConfig, SupervisorState};
