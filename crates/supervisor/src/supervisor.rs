//! The session supervisor state machine.
//!
//! Models the watchdog the paper's deployment runs next to pppd: it
//! starts the session through the `umts` vsys command, watches lifecycle
//! events, health-probes the modem while up, and when the session dies it
//! tears stale state down, waits out a capped exponential backoff, power
//! cycles the card and redials. While the session is down, slice traffic
//! falls back to the wired path automatically (teardown removed the UMTS
//! policy rules); on recovery the supervisor re-registers the slice's
//! UMTS destinations so the paper's routing recipe is restored.
//!
//! States: `Down -> Dialing -> Up -> Degraded -> Backoff -> Dialing ...`

use umtslab_net::trace::TraceKind;
use umtslab_net::wire::Ipv4Cidr;
use umtslab_planetlab::node::Node;
use umtslab_planetlab::slice::SliceId;
use umtslab_planetlab::umtscmd::{UmtsPhase, UmtsRequest, UmtsResponse};
use umtslab_sim::rng::SimRng;
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::attachment::{UmtsAttachment, UmtsEvent};

use crate::backoff::{BackoffConfig, BackoffSchedule};
use crate::metrics::AvailabilityMetrics;

/// Where the supervised session currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SupervisorState {
    /// Not started yet (or deliberately stopped).
    Down,
    /// A dial is in flight.
    Dialing,
    /// Session up and passing health probes.
    Up,
    /// Session nominally up but the modem is failing health probes; one
    /// more failed probe escalates to teardown.
    Degraded,
    /// Waiting out the backoff before the next redial.
    Backoff,
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Redial backoff schedule parameters.
    pub backoff: BackoffConfig,
    /// Give up on a dial that has not connected within this budget and
    /// recycle through backoff.
    pub dial_deadline: Duration,
    /// Health-probe period while the session is up.
    pub probe_interval: Duration,
    /// Destinations to (re-)register for UMTS routing after every
    /// successful connection.
    pub destinations: Vec<Ipv4Cidr>,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            backoff: BackoffConfig::default(),
            dial_deadline: Duration::from_secs(60),
            probe_interval: Duration::from_secs(1),
            destinations: Vec::new(),
        }
    }
}

/// The per-node session lifecycle daemon.
#[derive(Debug)]
pub struct SessionSupervisor {
    slice: SliceId,
    config: SupervisorConfig,
    state: SupervisorState,
    schedule: BackoffSchedule,
    metrics: AvailabilityMetrics,
    /// When the current state was entered (for time-in-state accounting).
    since: Instant,
    /// Pending redial instant while in `Backoff`.
    redial_at: Option<Instant>,
    /// Deadline for the in-flight dial while in `Dialing`.
    dial_deadline_at: Option<Instant>,
    /// Next health probe while in `Up`/`Degraded`.
    next_probe: Option<Instant>,
    /// Interned `<node>/supervisor` trace place, resolved on first use.
    place: Option<umtslab_net::Label>,
}

impl SessionSupervisor {
    /// Creates a supervisor for `slice`; `rng` feeds backoff jitter and
    /// should be forked from the experiment seed.
    pub fn new(slice: SliceId, config: SupervisorConfig, rng: SimRng) -> SessionSupervisor {
        let schedule = BackoffSchedule::new(config.backoff, rng);
        SessionSupervisor {
            slice,
            config,
            state: SupervisorState::Down,
            schedule,
            metrics: AvailabilityMetrics::default(),
            since: Instant::ZERO,
            redial_at: None,
            dial_deadline_at: None,
            next_probe: None,
            place: None,
        }
    }

    /// The supervised slice.
    pub fn slice(&self) -> SliceId {
        self.slice
    }

    /// Current state.
    pub fn state(&self) -> SupervisorState {
        self.state
    }

    /// Availability metrics accumulated so far. Call
    /// [`SessionSupervisor::finish`] first to fold in the tail interval.
    pub fn metrics(&self) -> &AvailabilityMetrics {
        &self.metrics
    }

    /// Folds the interval since the last transition into the metrics and
    /// returns them (call once at the end of an experiment).
    pub fn finish(&mut self, now: Instant) -> AvailabilityMetrics {
        self.account(now);
        self.metrics
    }

    /// Notes an injected fault (the campaign driver calls this so the
    /// metrics record campaign pressure).
    pub fn note_fault(&mut self) {
        self.metrics.faults_injected += 1;
    }

    /// Kicks off the first dial.
    pub fn start(&mut self, now: Instant, node: &mut Node) {
        if self.state != SupervisorState::Down {
            return;
        }
        self.submit_start(now, node);
    }

    /// Feeds the lifecycle events from one `Node::poll` into the machine.
    pub fn on_events(&mut self, now: Instant, events: &[UmtsEvent], node: &mut Node) {
        for ev in events {
            match ev {
                UmtsEvent::Connected { .. } => self.on_connected(now, node),
                UmtsEvent::Failed(_) | UmtsEvent::Disconnected => self.on_down(now, node),
            }
        }
    }

    /// Runs timers: redial expiry, dial deadline, health probes. Call
    /// after `Node::poll` each step.
    pub fn poll(&mut self, now: Instant, node: &mut Node) {
        // Drain vsys responses so the channel never backs up; a refused
        // Start is treated as a failed dial.
        let responses = node.vsys_collect(self.slice);
        if self.state == SupervisorState::Dialing
            && responses.iter().any(|r| matches!(r, UmtsResponse::Error(_)))
        {
            self.schedule_redial(now, node);
        }
        match self.state {
            SupervisorState::Backoff => {
                if self.redial_at.is_some_and(|t| now >= t) {
                    self.redial_at = None;
                    self.metrics.redials += 1;
                    // Power-cycle the card first: a hung modem only comes
                    // back through reset, and a reset never hurts a card
                    // that is already idle.
                    node.reset_umts_modem(now);
                    self.submit_start(now, node);
                }
            }
            SupervisorState::Dialing => {
                if self.dial_deadline_at.is_some_and(|t| now >= t) {
                    // The dial wedged. Ask for teardown and back off; the
                    // eventual Failed/Disconnected event is then absorbed
                    // harmlessly (we are already past Up).
                    let _ = node.vsys_submit(self.slice, UmtsRequest::Stop);
                    self.schedule_redial(now, node);
                }
            }
            SupervisorState::Up | SupervisorState::Degraded => {
                if self.next_probe.is_some_and(|t| now >= t) {
                    self.run_probe(now, node);
                }
            }
            SupervisorState::Down => {}
        }
    }

    /// The earliest instant this supervisor needs to run again.
    pub fn next_wakeup(&self) -> Option<Instant> {
        match self.state {
            SupervisorState::Backoff => self.redial_at,
            SupervisorState::Dialing => self.dial_deadline_at,
            SupervisorState::Up | SupervisorState::Degraded => self.next_probe,
            SupervisorState::Down => None,
        }
    }

    fn on_connected(&mut self, now: Instant, node: &mut Node) {
        node.trace.record_marker(now, TraceKind::SessionUp, self.place(node));
        self.metrics.sessions_established += 1;
        self.schedule.reset();
        self.dial_deadline_at = None;
        self.redial_at = None;
        self.next_probe = Some(now + self.config.probe_interval);
        self.transition(now, SupervisorState::Up);
        // Teardown flushed the destination rules; restore the slice's
        // UMTS routing so recovery is complete, not just reconnected.
        for dest in self.config.destinations.clone() {
            let _ = node.vsys_submit(self.slice, UmtsRequest::AddDestination(dest));
        }
    }

    fn on_down(&mut self, now: Instant, node: &mut Node) {
        if matches!(self.state, SupervisorState::Up | SupervisorState::Degraded) {
            self.metrics.session_drops += 1;
        }
        node.trace.record_marker(now, TraceKind::SessionDown, self.place(node));
        self.schedule_redial(now, node);
    }

    fn run_probe(&mut self, now: Instant, node: &mut Node) {
        self.next_probe = Some(now + self.config.probe_interval);
        let phase_up = node.umts_status().phase == UmtsPhase::Up;
        // The watchdog's AT probe: a hung modem answers nothing.
        let hung = node.umts_attachment().is_some_and(UmtsAttachment::modem_is_hung);
        if phase_up && !hung {
            if self.state == SupervisorState::Degraded {
                self.transition(now, SupervisorState::Up);
            }
            return;
        }
        if !phase_up {
            // The stack went down without an event reaching us (the node
            // owner consumed it); treat as a drop.
            self.on_down(now, node);
            return;
        }
        match self.state {
            SupervisorState::Up => {
                // First failed probe: mark degraded, give the stack one
                // probe period to recover on its own.
                self.transition(now, SupervisorState::Degraded);
            }
            SupervisorState::Degraded => {
                // Second strike: tear down and recycle. The modem is
                // unresponsive, so waiting for PPP dead-line detection
                // would cost another ~30 s of blackout.
                self.metrics.session_drops += 1;
                node.trace.record_marker(now, TraceKind::SessionDown, self.place(node));
                let _ = node.vsys_submit(self.slice, UmtsRequest::Stop);
                self.schedule_redial(now, node);
            }
            _ => {}
        }
    }

    fn submit_start(&mut self, now: Instant, node: &mut Node) {
        match node.vsys_submit(self.slice, UmtsRequest::Start) {
            Ok(()) => {
                self.dial_deadline_at = Some(now + self.config.dial_deadline);
                self.transition(now, SupervisorState::Dialing);
            }
            Err(_) => self.schedule_redial(now, node),
        }
    }

    fn schedule_redial(&mut self, now: Instant, node: &mut Node) {
        let delay = self.schedule.next_delay();
        self.redial_at = Some(now + delay);
        self.dial_deadline_at = None;
        self.next_probe = None;
        node.trace.record_marker(now, TraceKind::RedialScheduled, self.place(node));
        self.transition(now, SupervisorState::Backoff);
    }

    /// Accumulates time-in-state since the last transition.
    fn account(&mut self, now: Instant) {
        let spent = now.saturating_duration_since(self.since);
        match self.state {
            SupervisorState::Up => self.metrics.time_up += spent,
            SupervisorState::Degraded => self.metrics.time_degraded += spent,
            SupervisorState::Down | SupervisorState::Dialing | SupervisorState::Backoff => {
                self.metrics.time_down += spent;
            }
        }
        self.since = now;
    }

    fn transition(&mut self, now: Instant, next: SupervisorState) {
        self.account(now);
        self.state = next;
    }

    fn place(&mut self, node: &Node) -> umtslab_net::Label {
        *self
            .place
            .get_or_insert_with(|| umtslab_net::Label::intern(&format!("{}/supervisor", node.name)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use umtslab_net::wire::Ipv4Address;
    use umtslab_umts::at::DeviceProfile;
    use umtslab_umts::attachment::{SessionFault, UmtsAttachment};
    use umtslab_umts::operator::OperatorProfile;
    use umtslab_umts::ppp::Credentials;

    fn node_with_umts() -> (Node, SliceId) {
        let mut n = Node::new("planetlab1.unina.it");
        n.configure_eth(
            "143.225.229.5".parse::<Ipv4Address>().unwrap(),
            "143.225.229.0/24".parse().unwrap(),
            "143.225.229.1".parse::<Ipv4Address>().unwrap(),
        );
        let att = UmtsAttachment::new(
            OperatorProfile::commercial_italy(),
            DeviceProfile::option_globetrotter(),
            Some(Credentials::new("web", "web")),
            7,
            Instant::ZERO,
        );
        n.attach_umts(att);
        let s = n.slices.create("unina_umts");
        n.grant_umts_access(s);
        n.trace.set_enabled(true);
        (n, s)
    }

    fn supervisor(slice: SliceId, destinations: Vec<Ipv4Cidr>) -> SessionSupervisor {
        let config = SupervisorConfig { destinations, ..SupervisorConfig::default() };
        SessionSupervisor::new(slice, config, SimRng::seed_from_u64(99))
    }

    /// Steps node + supervisor together until `pred` or the horizon.
    fn run(
        n: &mut Node,
        sup: &mut SessionSupervisor,
        from: Instant,
        horizon: Instant,
        mut pred: impl FnMut(&Node, &SessionSupervisor) -> bool,
    ) -> Instant {
        let mut now = from;
        loop {
            let out = n.poll(now);
            sup.on_events(now, &out.umts_events, n);
            sup.poll(now, n);
            if pred(n, sup) || now >= horizon {
                return now;
            }
            let mut next = now + Duration::from_millis(100);
            if let Some(t) = n.next_wakeup() {
                next = next.min(t.max(now + Duration::from_micros(1)));
            }
            if let Some(t) = sup.next_wakeup() {
                next = next.min(t.max(now + Duration::from_micros(1)));
            }
            now = next.min(horizon);
        }
    }

    #[test]
    fn supervisor_brings_the_session_up_from_cold() {
        let (mut n, s) = node_with_umts();
        let mut sup = supervisor(s, vec!["138.96.0.0/16".parse().unwrap()]);
        sup.start(Instant::ZERO, &mut n);
        assert_eq!(sup.state(), SupervisorState::Dialing);
        let up = run(&mut n, &mut sup, Instant::ZERO, Instant::from_secs(60), |_, sup| {
            sup.state() == SupervisorState::Up
        });
        assert_eq!(sup.state(), SupervisorState::Up);
        assert_eq!(n.umts_status().phase, UmtsPhase::Up);
        assert_eq!(n.trace.of_kind(TraceKind::SessionUp).count(), 1);
        // One more poll lets the vsys back-end process the AddDestination
        // the supervisor queued on connect.
        let _ = n.poll(up);
        sup.poll(up, &mut n);
        assert_eq!(n.umts_status().destinations.len(), 1);
        let m = sup.finish(Instant::from_secs(60));
        assert_eq!(m.sessions_established, 1);
        assert_eq!(m.session_drops, 0);
    }

    #[test]
    fn ppp_drop_is_recovered_with_backoff_and_destinations_restored() {
        let (mut n, s) = node_with_umts();
        let mut sup = supervisor(s, vec!["138.96.0.0/16".parse().unwrap()]);
        sup.start(Instant::ZERO, &mut n);
        let up = run(&mut n, &mut sup, Instant::ZERO, Instant::from_secs(60), |_, sup| {
            sup.state() == SupervisorState::Up
        });
        n.inject_umts_fault(up, SessionFault::PppTerminate);
        sup.note_fault();
        // It must drop, schedule a redial, and come back on its own.
        let down = run(&mut n, &mut sup, up, up + Duration::from_secs(30), |_, sup| {
            sup.state() == SupervisorState::Backoff
        });
        assert_eq!(sup.state(), SupervisorState::Backoff);
        assert!(n.audit().is_empty(), "stale state after drop: {:?}", n.audit());
        let end = run(&mut n, &mut sup, down, down + Duration::from_secs(120), |_, sup| {
            sup.state() == SupervisorState::Up
        });
        assert_eq!(sup.state(), SupervisorState::Up);
        let _ = n.poll(end);
        sup.poll(end, &mut n);
        assert_eq!(n.umts_status().destinations.len(), 1, "destinations not restored");
        assert_eq!(n.trace.of_kind(TraceKind::SessionUp).count(), 2);
        assert_eq!(n.trace.of_kind(TraceKind::SessionDown).count(), 1);
        assert_eq!(n.trace.of_kind(TraceKind::RedialScheduled).count(), 1);
        let m = sup.finish(end);
        assert_eq!(m.sessions_established, 2);
        assert_eq!(m.session_drops, 1);
        assert_eq!(m.redials, 1);
        assert!(m.mttr().is_some());
    }

    #[test]
    fn hung_modem_is_caught_by_probes_and_power_cycled() {
        let (mut n, s) = node_with_umts();
        let mut sup = supervisor(s, Vec::new());
        sup.start(Instant::ZERO, &mut n);
        let up = run(&mut n, &mut sup, Instant::ZERO, Instant::from_secs(60), |_, sup| {
            sup.state() == SupervisorState::Up
        });
        n.inject_umts_fault(up, SessionFault::ModemHang);
        sup.note_fault();
        // Probe one: Degraded. Probe two: teardown + backoff. This beats
        // waiting ~30 s for PPP dead-line detection.
        let t = run(&mut n, &mut sup, up, up + Duration::from_secs(10), |_, sup| {
            sup.state() == SupervisorState::Backoff
        });
        assert_eq!(sup.state(), SupervisorState::Backoff);
        assert!(
            t.saturating_duration_since(up) < Duration::from_secs(5),
            "watchdog too slow: {:?}",
            t.saturating_duration_since(up)
        );
        // The redial power-cycles the card, so the session comes back.
        run(&mut n, &mut sup, t, t + Duration::from_secs(120), |_, sup| {
            sup.state() == SupervisorState::Up
        });
        assert_eq!(sup.state(), SupervisorState::Up);
        let m = sup.metrics();
        assert_eq!(m.sessions_established, 2);
        assert!(!m.time_degraded.is_zero(), "degraded interval not accounted");
    }
}
