//! Anchor crate for the workspace-level integration tests in `/tests`.
//!
//! Cargo integration tests must belong to a package; this crate exists so
//! that the repository can keep its cross-crate tests at the conventional
//! top-level `tests/` directory while remaining a pure virtual workspace
//! otherwise.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
