//! Conservative time-windowed driving of sharded event loops.
//!
//! A sharded simulation splits one coupled topology across N independent
//! [`crate::sched::Scheduler`]s. Each shard runs its own event loop; the
//! only coupling between shards is message handoff with a minimum latency
//! of `lookahead`. Under that guarantee the classic conservative
//! synchronization scheme applies: advance every shard through a fixed
//! time window of width `lookahead`, exchange the messages produced, and
//! repeat. A message generated inside window `k` can — by the latency
//! bound — only be due in window `k+1` or later, so exchanging at the
//! boundary never delivers late.
//!
//! The driving logic is deliberately split from the shard state:
//!
//! * [`ShardScheduler`] is what a shard must expose — a clock and a
//!   "run until" primitive. A plain single-scheduler simulation is the
//!   degenerate case (one shard, nothing to exchange).
//! * [`drive`] owns the window loop. The caller supplies *how* to run the
//!   shards over one window (serially, or fanned out over a worker pool)
//!   and *how* to exchange messages at each boundary; the loop itself is
//!   identical either way, which is what makes shard counts and worker
//!   counts invisible in the results.
//! * [`window_ends`] enumerates the boundaries: fixed multiples of the
//!   lookahead from the origin, independent of where the run starts, so a
//!   run split into phases crosses the same boundaries as an unsplit one.

use crate::time::{Duration, Instant};

/// Identifies one shard within a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub usize);

/// The event-loop surface a shard exposes to the window driver.
///
/// Implementors own a scheduler (clock + pending events) and any state the
/// events touch. The contract mirrors
/// [`crate::sched::Scheduler::next_before`]: after `run_window(h)` every
/// event strictly before `h` has been dispatched and the clock sits
/// exactly on `h`.
pub trait ShardScheduler {
    /// The shard's current simulated time.
    fn now(&self) -> Instant;

    /// Dispatches every pending event strictly before `horizon` and
    /// advances the clock to `horizon`.
    fn run_window(&mut self, horizon: Instant);
}

/// The window boundaries a run from `from` to `horizon` crosses, ending
/// with `horizon` itself.
///
/// Boundaries sit on fixed multiples of `lookahead` counted from
/// [`Instant::ZERO`] — *not* from `from` — so a simulation executed as
/// several consecutive `drive` calls crosses exactly the boundaries an
/// uninterrupted run would, and results cannot depend on how the caller
/// phased the run.
pub fn window_ends(
    from: Instant,
    horizon: Instant,
    lookahead: Duration,
) -> impl Iterator<Item = Instant> {
    assert!(lookahead > Duration::ZERO, "lookahead must be positive");
    let step = lookahead.total_micros();
    let mut at = from;
    std::iter::from_fn(move || {
        if at >= horizon {
            return None;
        }
        // The next multiple of `step` strictly after `at`, capped at the
        // horizon (the final window may be truncated).
        let next = Instant::from_micros((at.total_micros() / step + 1) * step).min(horizon);
        at = next;
        Some(next)
    })
}

/// Drives `shards` from `from` to `horizon` in conservative windows of
/// width `lookahead`.
///
/// For every window the driver calls `run(shards, end)` — which must
/// advance each shard to `end`, in any order or in parallel — and then
/// `sync(shards, end)`, which exchanges the messages produced during the
/// window. `sync` runs on the caller's thread with all shards at the same
/// instant, so it may freely move data between them.
pub fn drive<S: ShardScheduler>(
    shards: &mut [S],
    from: Instant,
    horizon: Instant,
    lookahead: Duration,
    mut run: impl FnMut(&mut [S], Instant),
    mut sync: impl FnMut(&mut [S], Instant),
) {
    for end in window_ends(from, horizon, lookahead) {
        run(shards, end);
        debug_assert!(shards.iter().all(|s| s.now() == end), "a shard missed the window barrier");
        sync(shards, end);
    }
}

/// [`drive`] with the serial window runner: shards advance one after the
/// other. The parallel path (a worker pool fanning `run_window` out per
/// window) must produce byte-identical results to this.
pub fn drive_serial<S: ShardScheduler>(
    shards: &mut [S],
    from: Instant,
    horizon: Instant,
    lookahead: Duration,
    sync: impl FnMut(&mut [S], Instant),
) {
    drive(
        shards,
        from,
        horizon,
        lookahead,
        |shards, end| {
            for s in shards.iter_mut() {
                s.run_window(end);
            }
        },
        sync,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::Scheduler;

    /// A toy shard: fires timers and logs (time, tag) pairs.
    struct Toy {
        sched: Scheduler<u32>,
        log: Vec<(Instant, u32)>,
        inbox: Vec<(Instant, u32)>,
    }

    impl Toy {
        fn new() -> Toy {
            Toy { sched: Scheduler::new(), log: Vec::new(), inbox: Vec::new() }
        }
    }

    impl ShardScheduler for Toy {
        fn now(&self) -> Instant {
            self.sched.now()
        }

        fn run_window(&mut self, horizon: Instant) {
            let mut due: Vec<(Instant, u32)> =
                std::mem::take(&mut self.inbox).into_iter().collect();
            due.sort_by_key(|&(at, tag)| (at, tag));
            for (at, tag) in due {
                self.sched.at(at.max(self.sched.now()), tag);
            }
            while let Some(tag) = self.sched.next_before(horizon) {
                let now = self.sched.now();
                self.log.push((now, tag));
            }
        }
    }

    #[test]
    fn window_ends_align_to_fixed_multiples() {
        let la = Duration::from_millis(10);
        let ends: Vec<Instant> = window_ends(Instant::ZERO, Instant::from_millis(35), la).collect();
        assert_eq!(
            ends,
            vec![
                Instant::from_millis(10),
                Instant::from_millis(20),
                Instant::from_millis(30),
                Instant::from_millis(35),
            ]
        );
        // Starting mid-window crosses the same absolute boundaries.
        let ends: Vec<Instant> =
            window_ends(Instant::from_millis(15), Instant::from_millis(35), la).collect();
        assert_eq!(
            ends,
            vec![Instant::from_millis(20), Instant::from_millis(30), Instant::from_millis(35)]
        );
        // A start on a boundary does not produce an empty window.
        let ends: Vec<Instant> =
            window_ends(Instant::from_millis(20), Instant::from_millis(30), la).collect();
        assert_eq!(ends, vec![Instant::from_millis(30)]);
    }

    #[test]
    fn phased_runs_cross_identical_boundaries() {
        let la = Duration::from_millis(7);
        let whole: Vec<Instant> =
            window_ends(Instant::ZERO, Instant::from_millis(100), la).collect();
        let mut phased: Vec<Instant> =
            window_ends(Instant::ZERO, Instant::from_millis(40), la).collect();
        phased.extend(window_ends(Instant::from_millis(40), Instant::from_millis(100), la));
        // The phase split adds its cut points but every multiple-of-7
        // boundary of the whole run is crossed by the phased run too.
        for b in whole {
            assert!(phased.contains(&b), "missing boundary {b}");
        }
    }

    #[test]
    fn drive_advances_all_shards_to_horizon() {
        let mut shards = vec![Toy::new(), Toy::new()];
        shards[0].sched.at(Instant::from_millis(3), 1);
        shards[1].sched.at(Instant::from_millis(23), 2);
        let horizon = Instant::from_millis(50);
        drive_serial(&mut shards, Instant::ZERO, horizon, Duration::from_millis(10), |_, _| {});
        assert!(shards.iter().all(|s| s.now() == horizon));
        assert_eq!(shards[0].log, vec![(Instant::from_millis(3), 1)]);
        assert_eq!(shards[1].log, vec![(Instant::from_millis(23), 2)]);
    }

    #[test]
    fn sync_moves_messages_between_shards_at_boundaries() {
        // Shard 0 "sends" to shard 1 with one lookahead of latency: a
        // timer at t fires in shard 0, sync forwards it as an inbox entry
        // due at t + lookahead in shard 1.
        let la = Duration::from_millis(10);
        let mut shards = vec![Toy::new(), Toy::new()];
        shards[0].sched.at(Instant::from_millis(4), 100);
        drive_serial(&mut shards, Instant::ZERO, Instant::from_millis(40), la, |shards, end| {
            let sent: Vec<(Instant, u32)> = shards[0]
                .log
                .iter()
                .filter(|&&(at, _)| at >= end - la && at < end)
                .map(|&(at, tag)| (at + la, tag + 1))
                .collect();
            shards[1].inbox.extend(sent);
        });
        assert_eq!(shards[0].log, vec![(Instant::from_millis(4), 100)]);
        assert_eq!(shards[1].log, vec![(Instant::from_millis(14), 101)]);
    }
}
