//! Simulated time primitives.
//!
//! The simulator uses its own notion of time, completely decoupled from the
//! host clock, so that runs are deterministic and can execute much faster
//! than real time. [`Instant`] is an absolute point on the simulated
//! timeline and [`Duration`] is a span between two such points. Both are
//! newtypes over a microsecond tick count, which gives ample resolution for
//! packet-level simulation (a 64-bit microsecond counter wraps after
//! ~292,000 years) while keeping arithmetic exact.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point on the simulated timeline, in microseconds since the start of the
/// simulation.
///
/// `Instant` is totally ordered and supports the usual arithmetic with
/// [`Duration`]. The zero instant is the moment the simulation starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Instant {
    micros: u64,
}

impl Instant {
    /// The start of the simulation.
    pub const ZERO: Instant = Instant { micros: 0 };

    /// The greatest representable instant; useful as an "infinitely far"
    /// sentinel when computing the minimum of several wake-up times.
    pub const MAX: Instant = Instant { micros: u64::MAX };

    /// Creates an instant `micros` microseconds after the simulation start.
    #[inline]
    pub const fn from_micros(micros: u64) -> Instant {
        Instant { micros }
    }

    /// Creates an instant `millis` milliseconds after the simulation start.
    #[inline]
    pub const fn from_millis(millis: u64) -> Instant {
        Instant { micros: millis * 1_000 }
    }

    /// Creates an instant `secs` seconds after the simulation start.
    #[inline]
    pub const fn from_secs(secs: u64) -> Instant {
        Instant { micros: secs * 1_000_000 }
    }

    /// Total microseconds since the simulation start.
    #[inline]
    pub const fn total_micros(&self) -> u64 {
        self.micros
    }

    /// Total whole milliseconds since the simulation start.
    #[inline]
    pub const fn total_millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// Total whole seconds since the simulation start.
    #[inline]
    pub const fn total_secs(&self) -> u64 {
        self.micros / 1_000_000
    }

    /// Seconds since the simulation start as a floating-point value.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// The duration elapsed since `earlier`, or [`Duration::ZERO`] if
    /// `earlier` is in the future.
    #[inline]
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(earlier.micros))
    }

    /// The duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        debug_assert!(
            earlier <= *self,
            "duration_since: earlier ({earlier}) is after self ({self})"
        );
        Duration::from_micros(self.micros - earlier.micros)
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        self.micros.checked_add(d.micros).map(Instant::from_micros)
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(&self, d: Duration) -> Instant {
        Instant::from_micros(self.micros.saturating_add(d.micros))
    }
}

impl fmt::Display for Instant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.micros / 1_000_000, self.micros % 1_000_000)
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn add(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros + rhs.micros)
    }
}

impl AddAssign<Duration> for Instant {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub<Duration> for Instant {
    type Output = Instant;
    #[inline]
    fn sub(self, rhs: Duration) -> Instant {
        Instant::from_micros(self.micros - rhs.micros)
    }
}

impl SubAssign<Duration> for Instant {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.micros -= rhs.micros;
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Instant) -> Duration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// The greatest representable duration.
    pub const MAX: Duration = Duration { micros: u64::MAX };

    /// Creates a duration of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Duration {
        Duration { micros }
    }

    /// Creates a duration of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Duration {
        Duration { micros: millis * 1_000 }
    }

    /// Creates a duration of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Duration {
        Duration { micros: secs * 1_000_000 }
    }

    /// Creates a duration from a floating-point second count, rounding to
    /// the nearest microsecond and clamping negative values to zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Duration {
        if !secs.is_finite() {
            return if secs > 0.0 { Duration::MAX } else { Duration::ZERO };
        }
        let micros = (secs * 1e6).round();
        if micros <= 0.0 {
            Duration::ZERO
        } else if micros >= u64::MAX as f64 {
            Duration::MAX
        } else {
            Duration::from_micros(micros as u64)
        }
    }

    /// Total microseconds.
    #[inline]
    pub const fn total_micros(&self) -> u64 {
        self.micros
    }

    /// Total whole milliseconds.
    #[inline]
    pub const fn total_millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// Total whole seconds.
    #[inline]
    pub const fn total_secs(&self) -> u64 {
        self.micros / 1_000_000
    }

    /// Seconds as a floating-point value.
    #[inline]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.micros == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(&self, rhs: Duration) -> Option<Duration> {
        self.micros.checked_add(rhs.micros).map(Duration::from_micros)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(&self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros.saturating_sub(rhs.micros))
    }

    /// Multiplies the duration by a rational `num/den`, rounding down.
    ///
    /// Useful for scaling timeouts without going through floating point.
    /// `den` must be non-zero.
    #[inline]
    pub fn mul_frac(&self, num: u64, den: u64) -> Duration {
        Duration::from_micros((self.micros as u128 * num as u128 / den as u128) as u64)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.micros / 1_000_000, self.micros % 1_000_000)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::from_micros(self.micros + rhs.micros)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs <= self, "Duration subtraction underflow");
        Duration::from_micros(self.micros - rhs.micros)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration::from_micros(self.micros * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration::from_micros(self.micros / rhs)
    }
}

/// Computes the time needed to serialize `bytes` onto a medium running at
/// `bits_per_sec`, rounding up to the next microsecond so that back-to-back
/// transmissions never overlap.
///
/// Returns [`Duration::ZERO`] for a zero-rate medium (interpreted as
/// "infinitely fast", which is convenient for ideal links in tests).
#[inline]
pub fn serialization_time(bytes: usize, bits_per_sec: u64) -> Duration {
    if bits_per_sec == 0 {
        return Duration::ZERO;
    }
    let bits = bytes as u128 * 8;
    let micros = (bits * 1_000_000).div_ceil(bits_per_sec as u128);
    Duration::from_micros(micros.min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_constructors_agree() {
        assert_eq!(Instant::from_secs(2), Instant::from_millis(2_000));
        assert_eq!(Instant::from_millis(3), Instant::from_micros(3_000));
        assert_eq!(Instant::ZERO.total_micros(), 0);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(1), Duration::from_millis(1_000));
        assert_eq!(Duration::from_millis(1), Duration::from_micros(1_000));
    }

    #[test]
    fn instant_arithmetic() {
        let t = Instant::from_millis(100);
        let d = Duration::from_millis(50);
        assert_eq!(t + d, Instant::from_millis(150));
        assert_eq!(t - d, Instant::from_millis(50));
        assert_eq!((t + d) - t, d);
        let mut t2 = t;
        t2 += d;
        assert_eq!(t2, Instant::from_millis(150));
        t2 -= d;
        assert_eq!(t2, t);
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = Instant::from_millis(10);
        let late = Instant::from_millis(20);
        assert_eq!(late.saturating_duration_since(early), Duration::from_millis(10));
        assert_eq!(early.saturating_duration_since(late), Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    #[cfg(debug_assertions)]
    fn duration_since_panics_on_negative() {
        let early = Instant::from_millis(10);
        let late = Instant::from_millis(20);
        let _ = early.duration_since(late);
    }

    #[test]
    fn duration_from_secs_f64_rounds_and_clamps() {
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::NAN), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(f64::INFINITY), Duration::MAX);
        // 1.5 microseconds rounds to 2.
        assert_eq!(Duration::from_secs_f64(1.5e-6), Duration::from_micros(2));
    }

    #[test]
    fn duration_scalar_ops() {
        let d = Duration::from_millis(10);
        assert_eq!(d * 3, Duration::from_millis(30));
        assert_eq!(d / 2, Duration::from_millis(5));
        assert_eq!(d.mul_frac(1, 4), Duration::from_micros(2_500));
        assert_eq!(Duration::MAX.mul_frac(1, 2).total_micros(), u64::MAX / 2);
    }

    #[test]
    fn checked_and_saturating_ops() {
        assert_eq!(Instant::MAX.checked_add(Duration::from_micros(1)), None);
        assert_eq!(Instant::MAX.saturating_add(Duration::from_secs(1)), Instant::MAX);
        assert_eq!(Duration::MAX.checked_add(Duration::from_micros(1)), None);
        assert_eq!(
            Duration::from_millis(1).saturating_sub(Duration::from_millis(2)),
            Duration::ZERO
        );
    }

    #[test]
    fn serialization_time_rounds_up() {
        // 1000 bytes at 1 Mbps = 8 ms exactly.
        assert_eq!(serialization_time(1000, 1_000_000), Duration::from_millis(8));
        // 1 byte at 1 Gbps = 8 ns, rounds up to 1 us.
        assert_eq!(serialization_time(1, 1_000_000_000), Duration::from_micros(1));
        // Zero rate means an ideal link.
        assert_eq!(serialization_time(1000, 0), Duration::ZERO);
        // Zero bytes takes no time.
        assert_eq!(serialization_time(0, 56_000), Duration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Instant::from_micros(1_500_000).to_string(), "1.500000s");
        assert_eq!(Duration::from_micros(42).to_string(), "0.000042s");
    }
}
