//! Deterministic event queue.
//!
//! The queue orders events by their firing time; events scheduled for the
//! same instant fire in the order they were scheduled (FIFO). This tie-break
//! rule is what makes simulation runs bit-for-bit reproducible: a plain
//! binary heap over `(Instant, payload)` would pop equal-time events in an
//! unspecified order.

use core::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::Instant;

/// Handle to a scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Entry<E> {
    at: Instant,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (and, on ties,
        // the first-scheduled) entry surfaces first.
        other.at.cmp(&self.at).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events with payloads of type `E`.
///
/// # Examples
///
/// ```
/// use umtslab_sim::event::EventQueue;
/// use umtslab_sim::time::Instant;
///
/// let mut q = EventQueue::new();
/// q.schedule(Instant::from_millis(5), "second");
/// q.schedule(Instant::from_millis(1), "first");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t, e), (Instant::from_millis(1), "first"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    // lint:allow(D1) insert/contains/remove only — cancellation probes, never iterated
    cancelled: std::collections::HashSet<u64>,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            // lint:allow(D1) constructing the membership-only set justified above
            cancelled: std::collections::HashSet::new(),
            live: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns a handle that can be
    /// passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: Instant, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event was
    /// still pending (it will never be popped), `false` if it had already
    /// fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(handle.0) {
            // We cannot cheaply verify the entry is still in the heap, so
            // over-approximate: the pop loop skips cancelled entries, and
            // `live` is only decremented when the entry is actually dropped.
            // Inserting a handle for an already-fired event is prevented by
            // removing fired seqs eagerly in `pop`.
            self.live = self.live.saturating_sub(1);
            true
        } else {
            false
        }
    }

    /// The firing time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Instant> {
        self.skip_cancelled();
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the next pending event.
    pub fn pop(&mut self) -> Option<(Instant, E)> {
        self.skip_cancelled();
        let entry = self.heap.pop()?;
        self.live -= 1;
        // Mark as fired so that a late `cancel` with this handle is a no-op.
        self.cancelled.insert(entry.seq);
        Some((entry.at, entry.payload))
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.cancelled.contains(&top.seq) {
                let e = self.heap.pop().expect("peeked entry must pop");
                self.cancelled.remove(&e.seq);
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Instant;

    fn t(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_prevents_pop() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), "a");
        let _h2 = q.schedule(t(2), "b");
        assert!(q.cancel(h1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), "b")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "a");
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert!(!q.cancel(h));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_noop() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "a");
        assert!(q.cancel(h));
        assert!(!q.cancel(h));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_bogus_handle_is_noop() {
        let mut q: EventQueue<&str> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "a");
        q.schedule(t(2), "b");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(2)));
    }

    #[test]
    fn len_tracks_schedule_pop_cancel() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
    }
}
