//! The simulation driver: a clock bound to an event queue.
//!
//! [`Scheduler`] is deliberately minimal: it owns the virtual clock and the
//! pending-event queue, and the *caller* owns the dispatch loop. This keeps
//! component state machines free of callback plumbing and lets the top-level
//! crate write an explicit, easily-audited main loop:
//!
//! ```
//! use umtslab_sim::sched::Scheduler;
//! use umtslab_sim::time::{Duration, Instant};
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Ping, Pong }
//!
//! let mut sched = Scheduler::new();
//! sched.after(Duration::from_millis(10), Ev::Ping);
//! let mut log = Vec::new();
//! while let Some(ev) = sched.next_before(Instant::from_secs(1)) {
//!     match ev {
//!         Ev::Ping => {
//!             log.push((sched.now(), "ping"));
//!             sched.after(Duration::from_millis(5), Ev::Pong);
//!         }
//!         Ev::Pong => log.push((sched.now(), "pong")),
//!     }
//! }
//! assert_eq!(log, vec![
//!     (Instant::from_millis(10), "ping"),
//!     (Instant::from_millis(15), "pong"),
//! ]);
//! ```

use crate::event::{EventHandle, EventQueue};
use crate::time::{Duration, Instant};

/// A virtual clock plus pending-event queue.
pub struct Scheduler<E> {
    now: Instant,
    queue: EventQueue<E>,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// Creates a scheduler with the clock at [`Instant::ZERO`].
    pub fn new() -> Self {
        Scheduler { now: Instant::ZERO, queue: EventQueue::new(), processed: 0 }
    }

    /// The current simulated time. Monotonically non-decreasing.
    #[inline]
    pub fn now(&self) -> Instant {
        self.now
    }

    /// Total events dispatched so far.
    #[inline]
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// Scheduling in the past is a logic error; the event is clamped to fire
    /// "now" (still after all events already due at the current instant) and
    /// a debug assertion trips in debug builds.
    pub fn at(&mut self, at: Instant, event: E) -> EventHandle {
        debug_assert!(at >= self.now, "scheduling into the past: {at} < {}", self.now);
        let at = at.max(self.now);
        self.queue.schedule(at, event)
    }

    /// Schedules `event` after a relative delay.
    pub fn after(&mut self, delay: Duration, event: E) -> EventHandle {
        let at = self.now.saturating_add(delay);
        self.queue.schedule(at, event)
    }

    /// Cancels a pending event.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.queue.cancel(handle)
    }

    /// The firing time of the next pending event.
    pub fn peek_time(&mut self) -> Option<Instant> {
        self.queue.peek_time()
    }

    /// Pops the next event and advances the clock to its firing time.
    ///
    /// Deliberately named like `Iterator::next`: the scheduler is the
    /// workspace-wide dispatch-loop idiom, but it cannot implement
    /// `Iterator` because callers interleave scheduling between pops.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<E> {
        let (at, ev) = self.queue.pop()?;
        debug_assert!(at >= self.now);
        self.now = at;
        self.processed += 1;
        Some(ev)
    }

    /// Pops the next event if it fires strictly before `horizon`; otherwise
    /// leaves it queued and advances the clock to `horizon`.
    ///
    /// This is the standard "run until" primitive: looping on it executes
    /// the simulation up to (but not including) the horizon, and the clock
    /// lands exactly on the horizon when the loop ends.
    pub fn next_before(&mut self, horizon: Instant) -> Option<E> {
        match self.queue.peek_time() {
            Some(t) if t < horizon => self.next(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut s: Scheduler<u32> = Scheduler::new();
        s.at(Instant::from_millis(3), 3);
        s.at(Instant::from_millis(1), 1);
        assert_eq!(s.next(), Some(1));
        assert_eq!(s.now(), Instant::from_millis(1));
        assert_eq!(s.next(), Some(3));
        assert_eq!(s.now(), Instant::from_millis(3));
        assert_eq!(s.next(), None);
        assert_eq!(s.events_processed(), 2);
    }

    #[test]
    fn after_is_relative_to_now() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(Instant::from_millis(10), "a");
        s.next();
        s.after(Duration::from_millis(5), "b");
        assert_eq!(s.peek_time(), Some(Instant::from_millis(15)));
    }

    #[test]
    fn next_before_respects_horizon() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(Instant::from_millis(10), "in");
        s.at(Instant::from_millis(20), "out");
        let horizon = Instant::from_millis(15);
        assert_eq!(s.next_before(horizon), Some("in"));
        assert_eq!(s.next_before(horizon), None);
        // Clock landed exactly on the horizon; the later event is intact.
        assert_eq!(s.now(), horizon);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.next(), Some("out"));
    }

    #[test]
    fn event_due_exactly_at_horizon_stays_queued() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(Instant::from_millis(15), "edge");
        assert_eq!(s.next_before(Instant::from_millis(15)), None);
        assert_eq!(s.pending(), 1);
    }

    #[test]
    fn cancelled_events_never_fire() {
        let mut s: Scheduler<&str> = Scheduler::new();
        let h = s.at(Instant::from_millis(1), "x");
        s.at(Instant::from_millis(2), "y");
        assert!(s.cancel(h));
        assert_eq!(s.next(), Some("y"));
        assert_eq!(s.next(), None);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut s: Scheduler<&str> = Scheduler::new();
        s.at(Instant::from_millis(10), "a");
        s.next();
        s.at(Instant::from_millis(5), "late");
    }

    #[test]
    fn same_instant_events_fire_in_schedule_order() {
        let mut s: Scheduler<u32> = Scheduler::new();
        for i in 0..10 {
            s.at(Instant::from_millis(7), i);
        }
        for i in 0..10 {
            assert_eq!(s.next(), Some(i));
        }
    }
}
