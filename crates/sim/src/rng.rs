//! Deterministic random number generation.
//!
//! All stochastic behaviour in the simulator (traffic inter-departure times,
//! radio-frame errors, link jitter, ...) is derived from a single master
//! seed, so that a run is reproducible from `(code, config, seed)` alone.
//! Components receive independent [`SimRng`] streams forked from the master
//! via [`SimRng::fork`], which keeps their draws decoupled: adding a draw in
//! one component does not shift the sequence seen by another.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seeded PRNG stream with samplers for the distributions used throughout
/// the simulator.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Forks an independent child stream labelled by `tag`.
    ///
    /// The child's seed mixes the parent's next draw with `tag` through a
    /// SplitMix64 finalizer, so distinct tags produce well-separated streams
    /// even for adjacent tag values.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let raw = self.inner.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(splitmix64(raw))
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the interval is empty.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer draw in `[lo, hi]` (inclusive).
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Exponential draw with the given mean (`mean >= 0`).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Normal draw via Box–Muller.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1 = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto (type I) draw with scale `x_min > 0` and shape `alpha > 0`.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        if x_min <= 0.0 || alpha <= 0.0 {
            return x_min.max(0.0);
        }
        let u = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Cauchy draw with location `x0` and scale `gamma > 0`.
    ///
    /// Note: the Cauchy distribution has no mean; callers that need bounded
    /// values (e.g. packet sizes) must truncate the result themselves.
    #[inline]
    pub fn cauchy(&mut self, x0: f64, gamma: f64) -> f64 {
        if gamma <= 0.0 {
            return x0;
        }
        let u = self.uniform01();
        x0 + gamma * (core::f64::consts::PI * (u - 0.5)).tan()
    }

    /// Raw 64-bit draw (for hashing, ids, forks).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn forked_streams_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(42);
        let mut parent2 = SimRng::seed_from_u64(42);
        let mut c1 = parent1.fork(1);
        let mut c1b = parent2.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());

        let mut parent = SimRng::seed_from_u64(42);
        let mut x = parent.fork(1);
        let mut parent = SimRng::seed_from_u64(42);
        let mut y = parent.fork(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.uniform01();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_handles_empty_interval() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 4.0), 5.0);
        assert_eq!(r.uniform_u64(9, 3), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_mid_probability_is_plausible() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "observed mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "observed mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "observed std {}", var.sqrt());
        assert_eq!(r.normal(10.0, 0.0), 10.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..10_000 {
            assert!(r.pareto(4.0, 1.5) >= 4.0);
        }
        // Mean for alpha > 1 is x_min * alpha / (alpha - 1) = 12.
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.pareto(4.0, 1.5)).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 1.5, "observed mean {mean}");
    }

    #[test]
    fn cauchy_median_is_plausible() {
        let mut r = SimRng::seed_from_u64(19);
        let n = 100_000;
        let below = (0..n).filter(|_| r.cauchy(7.0, 2.0) < 7.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "observed {frac}");
        assert_eq!(r.cauchy(7.0, 0.0), 7.0);
    }
}
