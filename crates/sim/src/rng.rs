//! Deterministic random number generation.
//!
//! All stochastic behaviour in the simulator (traffic inter-departure times,
//! radio-frame errors, link jitter, ...) is derived from a single master
//! seed, so that a run is reproducible from `(code, config, seed)` alone.
//! Components receive independent [`SimRng`] streams forked from the master
//! via [`SimRng::fork`], which keeps their draws decoupled: adding a draw in
//! one component does not shift the sequence seen by another.
//!
//! The generator is a self-contained xoshiro256++ implementation,
//! bit-compatible with the `SmallRng` streams (seed expansion, float and
//! bounded-integer conversion included) that earlier revisions of this
//! workspace obtained from the `rand` crate — the calibrated figure
//! expectations in `EXPERIMENTS.md` depend on those exact draws. The
//! workspace carries its own copy so that it builds with no external
//! dependencies at all.
//!
//! For sharded experiment suites, [`job_seed`] derives well-separated
//! per-job master seeds from a campaign seed and a job index, so a job's
//! stream does not depend on how many workers execute the suite or in what
//! order jobs finish.

/// A seeded PRNG stream with samplers for the distributions used throughout
/// the simulator.
///
/// Internally this is xoshiro256++ (Blackman & Vigna), a 256-bit-state
/// generator with 64-bit output: small, fast, and far above the statistical
/// quality this simulator needs.
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state; never all-zero (guaranteed by the seeder).
    s: [u64; 4],
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    ///
    /// The 256-bit state is expanded from the seed with SplitMix64, so
    /// adjacent seeds produce unrelated streams.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *word = splitmix64_mix(state);
        }
        SimRng { s }
    }

    /// Forks an independent child stream labelled by `tag`.
    ///
    /// The child's seed mixes the parent's next draw with `tag` through a
    /// SplitMix64 finalizer, so distinct tags produce well-separated streams
    /// even for adjacent tag values.
    pub fn fork(&mut self, tag: u64) -> SimRng {
        let raw = self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(splitmix64(raw))
    }

    /// Uniform draw in `[0, 1)`.
    ///
    /// Uses the top 53 bits of one output word, the standard conversion
    /// yielding every representable multiple of 2⁻⁵³ in the interval.
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the interval is empty.
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer draw in `[lo, hi]` (inclusive).
    ///
    /// Unbiased: widening-multiply range reduction with rejection of the
    /// short zone (Lemire's method).
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        if hi <= lo {
            return lo;
        }
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        if range == 0 {
            // Full-width interval: every u64 is fair.
            return self.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (range as u128);
            let high = (wide >> 64) as u64;
            let low = wide as u64;
            if low <= zone {
                return lo.wrapping_add(high);
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform01() < p
        }
    }

    /// Exponential draw with the given mean (`mean >= 0`).
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform01()).ln()
    }

    /// Normal draw via Box–Muller.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return mean;
        }
        let u1 = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform01();
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Pareto (type I) draw with scale `x_min > 0` and shape `alpha > 0`.
    #[inline]
    pub fn pareto(&mut self, x_min: f64, alpha: f64) -> f64 {
        if x_min <= 0.0 || alpha <= 0.0 {
            return x_min.max(0.0);
        }
        let u = (1.0 - self.uniform01()).max(f64::MIN_POSITIVE);
        x_min / u.powf(1.0 / alpha)
    }

    /// Cauchy draw with location `x0` and scale `gamma > 0`.
    ///
    /// Note: the Cauchy distribution has no mean; callers that need bounded
    /// values (e.g. packet sizes) must truncate the result themselves.
    #[inline]
    pub fn cauchy(&mut self, x0: f64, gamma: f64) -> f64 {
        if gamma <= 0.0 {
            return x0;
        }
        let u = self.uniform01();
        x0 + gamma * (core::f64::consts::PI * (u - 0.5)).tan()
    }

    /// Raw 64-bit draw (for hashing, ids, forks).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Derives the master seed of job `index` in a sharded campaign seeded by
/// `campaign`.
///
/// The derivation is a pure function of `(campaign, index)` — it does not
/// consume any RNG stream — so a parallel runner assigning jobs to an
/// arbitrary number of workers in an arbitrary completion order still gives
/// every job exactly the seed the serial path would. Distinct indices are
/// scattered by SplitMix64, so adjacent jobs get uncorrelated streams.
#[inline]
pub fn job_seed(campaign: u64, index: u64) -> u64 {
    splitmix64(campaign ^ splitmix64(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// One full SplitMix64 step (advance + mix), used for seed scattering.
fn splitmix64(z: u64) -> u64 {
    splitmix64_mix(z.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

/// The SplitMix64 output mixing function.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_reference_xoshiro_stream() {
        // Reference values computed independently: xoshiro256++ seeded by
        // SplitMix64 expansion of 0 (the scheme rand 0.8's SmallRng used on
        // 64-bit hosts). Guards the bit-compatibility contract that keeps
        // the calibrated figure expectations valid.
        let mut state = 0u64;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            *word = z;
        }
        // First output from first principles.
        let expect0 = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let mut r = SimRng::seed_from_u64(0);
        assert_eq!(r.next_u64(), expect0);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look identical");
    }

    #[test]
    fn forked_streams_are_reproducible_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(42);
        let mut parent2 = SimRng::seed_from_u64(42);
        let mut c1 = parent1.fork(1);
        let mut c1b = parent2.fork(1);
        assert_eq!(c1.next_u64(), c1b.next_u64());

        let mut parent = SimRng::seed_from_u64(42);
        let mut x = parent.fork(1);
        let mut parent = SimRng::seed_from_u64(42);
        let mut y = parent.fork(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn job_seed_is_pure_and_scattered() {
        assert_eq!(job_seed(2008, 3), job_seed(2008, 3));
        let seeds: Vec<u64> = (0..64).map(|i| job_seed(2008, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "adjacent job seeds must not collide");
        assert_ne!(job_seed(2008, 0), job_seed(2009, 0));
    }

    #[test]
    fn uniform01_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.uniform01();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn uniform_handles_empty_interval() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.uniform(5.0, 5.0), 5.0);
        assert_eq!(r.uniform(5.0, 4.0), 5.0);
        assert_eq!(r.uniform_u64(9, 3), 9);
    }

    #[test]
    fn uniform_u64_covers_bounds() {
        let mut r = SimRng::seed_from_u64(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = r.uniform_u64(10, 13);
            assert!((10..=13).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi, "inclusive bounds must both be reachable");
        // Full-width interval does not hang or bias.
        let _ = r.uniform_u64(0, u64::MAX);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_mid_probability_is_plausible() {
        let mut r = SimRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| r.chance(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.exponential(2.5)).sum();
        let mean = sum / n as f64;
        assert!((mean - 2.5).abs() < 0.05, "observed mean {mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut r = SimRng::seed_from_u64(13);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "observed mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.05, "observed std {}", var.sqrt());
        assert_eq!(r.normal(10.0, 0.0), 10.0);
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::seed_from_u64(17);
        for _ in 0..10_000 {
            assert!(r.pareto(4.0, 1.5) >= 4.0);
        }
        // Mean for alpha > 1 is x_min * alpha / (alpha - 1) = 12.
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.pareto(4.0, 1.5)).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 1.5, "observed mean {mean}");
    }

    #[test]
    fn cauchy_median_is_plausible() {
        let mut r = SimRng::seed_from_u64(19);
        let n = 100_000;
        let below = (0..n).filter(|_| r.cauchy(7.0, 2.0) < 7.0).count();
        let frac = below as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "observed {frac}");
    }
}
