//! # umtslab-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the `umtslab` workspace: a minimal,
//! allocation-light discrete-event simulation kernel in the spirit of
//! event-driven network stacks such as smoltcp. It provides:
//!
//! * [`time`] — microsecond-resolution [`time::Instant`] / [`time::Duration`]
//!   newtypes for the virtual timeline;
//! * [`event`] — a deterministic time-ordered [`event::EventQueue`] with
//!   FIFO tie-breaking and cancellation;
//! * [`rng`] — a forkable, seeded PRNG ([`rng::SimRng`]) with the samplers
//!   used across the workspace (uniform, exponential, normal, Pareto,
//!   Cauchy, Bernoulli);
//! * [`sched`] — the [`sched::Scheduler`] driver binding a clock to the
//!   queue, designed for an explicit caller-owned dispatch loop.
//!
//! ## Determinism contract
//!
//! Given the same code, configuration, and master seed, every run produces
//! an identical event trace. The kernel guarantees its part of the contract
//! by (a) breaking equal-time ties in schedule order, and (b) deriving all
//! randomness from [`rng::SimRng::fork`] streams rather than shared global
//! state. Higher layers must not consult ambient sources (host clock, map
//! iteration order) on any simulated path.
//!
//! ## Example
//!
//! ```
//! use umtslab_sim::{EventQueue, Instant, SimRng};
//!
//! // Same seed, same draws — always.
//! let mut a = SimRng::seed_from_u64(7);
//! let mut b = SimRng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! // Events pop in time order with FIFO tie-breaking.
//! let mut q = EventQueue::new();
//! q.schedule(Instant::from_millis(20), "late");
//! q.schedule(Instant::from_millis(10), "early");
//! assert_eq!(q.pop().unwrap().1, "early");
//! assert_eq!(q.pop().unwrap().1, "late");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod sched;
pub mod shard;
pub mod time;

pub use event::{EventHandle, EventQueue};
pub use rng::SimRng;
pub use sched::Scheduler;
pub use shard::{drive, drive_serial, window_ends, ShardId, ShardScheduler};
pub use time::{serialization_time, Duration, Instant};
