//! Property-based tests for the simulation kernel.

use proptest::prelude::*;

use umtslab_sim::event::EventQueue;
use umtslab_sim::rng::SimRng;
use umtslab_sim::sched::Scheduler;
use umtslab_sim::time::{serialization_time, Duration, Instant};

proptest! {
    /// Popping the queue yields events sorted by time, with FIFO order
    /// among equal timestamps — exactly what a stable sort produces.
    #[test]
    fn queue_pop_order_matches_stable_sort(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(Instant::from_micros(*t), i);
        }
        let mut reference: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, t)| (*t, i)).collect();
        reference.sort_by_key(|&(t, _)| t); // stable: preserves schedule order
        let mut popped = Vec::new();
        while let Some((at, i)) = q.pop() {
            popped.push((at.total_micros(), i));
        }
        prop_assert_eq!(popped, reference);
    }

    /// Cancelling an arbitrary subset removes exactly those events.
    #[test]
    fn cancel_removes_exactly_the_cancelled(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let handles: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, t)| (i, q.schedule(Instant::from_micros(*t), i)))
            .collect();
        let mut expected: Vec<usize> = Vec::new();
        for (i, h) in &handles {
            let cancelled = cancel_mask.get(*i).copied().unwrap_or(false);
            if cancelled {
                prop_assert!(q.cancel(*h));
            } else {
                expected.push(*i);
            }
        }
        let mut popped: Vec<usize> = Vec::new();
        while let Some((_, i)) = q.pop() {
            popped.push(i);
        }
        popped.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(popped, expected);
    }

    /// The scheduler clock never goes backwards.
    #[test]
    fn scheduler_clock_is_monotone(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut s: Scheduler<usize> = Scheduler::new();
        for (i, t) in times.iter().enumerate() {
            s.at(Instant::from_micros(*t), i);
        }
        let mut last = Instant::ZERO;
        while let Some(_) = s.next() {
            prop_assert!(s.now() >= last);
            last = s.now();
        }
        prop_assert_eq!(s.events_processed(), times.len() as u64);
    }

    /// Instant/Duration arithmetic round-trips.
    #[test]
    fn time_arithmetic_roundtrip(base in 0u64..u64::MAX / 4, delta in 0u64..u64::MAX / 4) {
        let t = Instant::from_micros(base);
        let d = Duration::from_micros(delta);
        prop_assert_eq!((t + d) - d, t);
        prop_assert_eq!((t + d).duration_since(t), d);
        prop_assert_eq!(t.saturating_duration_since(t + d), Duration::ZERO);
    }

    /// Serialization time is monotone in bytes and inversely monotone in
    /// rate, and exact for byte-aligned cases.
    #[test]
    fn serialization_time_monotone(bytes in 0usize..100_000, rate in 1u64..10_000_000_000) {
        let t = serialization_time(bytes, rate);
        prop_assert!(serialization_time(bytes + 1, rate) >= t);
        if rate > 1 {
            prop_assert!(serialization_time(bytes, rate - 1) >= t);
        }
        // Never rounds below the exact value.
        let exact_num = bytes as u128 * 8 * 1_000_000;
        let micros = t.total_micros() as u128;
        let rate_wide = rate as u128;
        prop_assert!(micros * rate_wide >= exact_num);
        // And overshoots by less than one microsecond's worth of bits.
        prop_assert!(micros * rate_wide < exact_num + rate_wide);
    }

    /// Identically-seeded RNG streams agree; forked children with distinct
    /// tags disagree somewhere early.
    #[test]
    fn rng_fork_determinism(seed in any::<u64>(), tag in 0u64..1000) {
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut ca = a.fork(tag);
        let mut cb = b.fork(tag);
        for _ in 0..16 {
            prop_assert_eq!(ca.next_u64(), cb.next_u64());
        }
        let mut a = SimRng::seed_from_u64(seed);
        let mut b = SimRng::seed_from_u64(seed);
        let mut c1 = a.fork(tag);
        let mut c2 = b.fork(tag.wrapping_add(1));
        let same = (0..16).filter(|_| c1.next_u64() == c2.next_u64()).count();
        prop_assert!(same < 16, "sibling forks should diverge");
    }

    /// Samplers stay within their mathematical support.
    #[test]
    fn sampler_supports(seed in any::<u64>()) {
        let mut r = SimRng::seed_from_u64(seed);
        for _ in 0..200 {
            let u = r.uniform(3.0, 9.0);
            prop_assert!((3.0..9.0).contains(&u));
            prop_assert!(r.exponential(2.0) >= 0.0);
            prop_assert!(r.pareto(5.0, 1.3) >= 5.0);
            let n = r.uniform_u64(10, 20);
            prop_assert!((10..=20).contains(&n));
        }
    }
}
