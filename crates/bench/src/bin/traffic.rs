//! Traffic-library benchmark: TCP cells per wall-clock second.
//!
//! Drives the INRIA switching-policy experiment (one congestion-
//! controlled `umtslab_traffic::TcpFlow` on the UMTS uplink per
//! FACH/DCH policy preset) as a fixed four-cell sweep and reports
//!
//! * **delivered TCP segments per wall-clock second** — the traffic
//!   stack's end-to-end cost per acknowledged segment, summed over the
//!   whole policy sweep; and
//! * the sweep's **report hash** (FNV-1a over the canonical per-policy
//!   rows), which must be identical across every repetition — the
//!   determinism gate for the flow library.
//!
//! Results are a **trajectory**: each run appends an entry (git
//! revision, mode, sweep figures, per-policy rows) to the `history`
//! array of `BENCH_traffic.json`, so the committed file records how the
//! traffic stack's throughput evolved across the PR sequence. Segments
//! per second must stay within 10% of the previous same-mode entry
//! (skip with `--no-gate` on machines unrelated to the recorded
//! history).
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin traffic [-- --quick] [--no-gate]
//! ```
//!
//! `--quick` shortens the per-cell horizon for CI smoke use; quick
//! entries are only compared against other quick entries.

use std::fmt::Write as _;

use umtslab::umtslab_sim::time::Duration;
use umtslab::umtslab_traffic::{PolicyReport, SwitchingPolicy};
use umtslab::CrosslayerConfig;

const SEED: u64 = 2008;
const BENCH_PATH: &str = "BENCH_traffic.json";
/// The regression gate: segments/s below this fraction of the previous
/// same-mode entry fails the run.
const GATE_FRACTION: f64 = 0.9;

/// Repetitions of the sweep; the median wall time wins. The simulated
/// work is identical each repetition (same seed), so they differ only in
/// host noise.
const REPS: usize = 3;

struct SweepReport {
    segments: u64,
    wall_seconds: f64,
    segments_per_sec: f64,
    report_hash: u64,
    rows: Vec<PolicyReport>,
}

/// The experiment cell the bench drives per policy: the paper's 30 s
/// bulk upload, shortened in quick mode.
fn bench_config(policy: SwitchingPolicy, quick: bool) -> CrosslayerConfig {
    let mut cfg = CrosslayerConfig::new(policy, SEED);
    cfg.tcp.duration = Duration::from_secs(if quick { 10 } else { 30 });
    cfg
}

/// Seconds with six fractional digits, matching the runner's canonical
/// row formatting so both hash the same dwell values.
fn fmt_dur_s(d: Duration) -> String {
    format!("{}.{:06}", d.total_secs(), d.total_micros() % 1_000_000)
}

/// The canonical hashable row for one policy cell (same layout as
/// `runner traffic`).
fn policy_row(r: &PolicyReport) -> String {
    let d = &r.dwell;
    format!(
        "{} seed={} goodput_bps={} segments={} retx={} timeouts={} max_cwnd={} \
         rrc_transitions={} dwell_idle={} dwell_fach={} dwell_dch={} dwell_dch_up={} \
         idle_promotions={} promotion_latency={}",
        r.policy.name(),
        r.seed,
        r.goodput_bps,
        r.delivered_segments,
        r.retransmits,
        r.timeouts,
        r.max_cwnd_bytes,
        r.rrc_transitions,
        fmt_dur_s(d.idle),
        fmt_dur_s(d.fach),
        fmt_dur_s(d.dch),
        fmt_dur_s(d.dch_upgraded),
        d.idle_promotions,
        fmt_dur_s(d.idle_promotion_latency),
    )
}

/// FNV-1a over the canonical rows, one `\n` after each.
fn report_hash(rows: &[PolicyReport]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for row in rows {
        for byte in policy_row(row).bytes().chain(std::iter::once(b'\n')) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

fn run_once(quick: bool) -> SweepReport {
    let wall0 = std::time::Instant::now();
    let rows: Vec<PolicyReport> = SwitchingPolicy::ALL
        .iter()
        .map(|&policy| {
            let cfg = bench_config(policy, quick);
            let (report, _) = umtslab::run_switching_policy(&cfg)
                .unwrap_or_else(|e| panic!("{} cell failed: {e:?}", policy.name()));
            report
        })
        .collect();
    let wall = wall0.elapsed().as_secs_f64();
    let segments: u64 = rows.iter().map(|r| r.delivered_segments).sum();
    SweepReport {
        segments,
        wall_seconds: wall,
        segments_per_sec: segments as f64 / wall.max(1e-9),
        report_hash: report_hash(&rows),
        rows,
    }
}

/// Runs the sweep `REPS` times, checks the determinism gate across all
/// repetitions, and returns the median-wall rep.
fn run_sweep(quick: bool) -> SweepReport {
    let mut runs: Vec<SweepReport> = (0..REPS).map(|_| run_once(quick)).collect();
    let first_hash = runs[0].report_hash;
    for (i, r) in runs.iter().enumerate() {
        if r.report_hash != first_hash {
            eprintln!(
                "FAIL: report hash diverged — rep {i} 0x{:016x} vs rep 0 0x{first_hash:016x}",
                r.report_hash
            );
            std::process::exit(1);
        }
    }
    runs.sort_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds));
    runs.swap_remove(REPS / 2)
}

/// The current git revision (short), or `unknown` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders one history entry (one run) at the array's indent level.
fn render_entry(git_rev: &str, quick: bool, sweep: &SweepReport) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"git_rev\": \"{git_rev}\",");
    let _ = writeln!(out, "      \"quick\": {quick},");
    let _ = writeln!(out, "      \"segments\": {},", sweep.segments);
    let _ = writeln!(out, "      \"wall_seconds\": {:.6},", sweep.wall_seconds);
    let _ = writeln!(out, "      \"segments_per_sec\": {:.1},", sweep.segments_per_sec);
    let _ = writeln!(out, "      \"report_hash\": \"0x{:016x}\",", sweep.report_hash);
    out.push_str("      \"policies\": [\n");
    for (i, r) in sweep.rows.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"policy\": \"{}\",", r.policy.name());
        let _ = writeln!(out, "          \"goodput_bps\": {},", r.goodput_bps);
        let _ = writeln!(out, "          \"delivered_segments\": {},", r.delivered_segments);
        let _ = writeln!(out, "          \"retransmits\": {},", r.retransmits);
        let _ = writeln!(out, "          \"timeouts\": {},", r.timeouts);
        let _ = writeln!(out, "          \"rrc_transitions\": {}", r.rrc_transitions);
        out.push_str(if i + 1 < sweep.rows.len() { "        },\n" } else { "        }\n" });
    }
    out.push_str("      ]\n    }");
    out
}

/// Renders the whole trajectory document from raw entry strings.
fn render_json(entries: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"traffic\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"history\": [\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the raw history entries from a previously written trajectory
/// document. Returns an empty list for a missing file or a foreign shape.
fn load_history(text: &str) -> Vec<String> {
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let body = &text[start + "\"history\": [".len()..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut entry_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    entry_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = entry_start.take() {
                        entries.push(format!("    {}", body[s..=i].trim()));
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// Pulls the sweep-level segments/s figure out of one raw history entry.
fn entry_segments_per_sec(entry: &str) -> Option<f64> {
    entry.lines().find_map(|line| {
        line.trim()
            .strip_prefix("\"segments_per_sec\": ")
            .and_then(|rest| rest.trim_end_matches(',').parse::<f64>().ok())
    })
}

/// Checks the new sweep against the last same-mode history entry.
/// Returns the regression messages (empty = gate passes).
fn regression_check(prior: &[String], quick: bool, sweep: &SweepReport) -> Vec<String> {
    let mode = format!("\"quick\": {quick},");
    let Some(prev) = prior.iter().rev().find(|e| e.contains(&mode)) else {
        return Vec::new();
    };
    let Some(prev_sps) = entry_segments_per_sec(prev) else {
        return Vec::new();
    };
    if sweep.segments_per_sec < prev_sps * GATE_FRACTION {
        vec![format!(
            "{:.1} segments/s is {:.1}% of the previous entry's {prev_sps:.1}",
            sweep.segments_per_sec,
            sweep.segments_per_sec / prev_sps * 100.0,
        )]
    } else {
        Vec::new()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = !args.iter().any(|a| a == "--no-gate");

    let horizon = if quick { 10 } else { 30 };
    println!(
        "traffic bench: {} policy cells x {horizon} s TCP horizon, seed {SEED}, {} mode",
        SwitchingPolicy::ALL.len(),
        if quick { "quick" } else { "full" }
    );

    let sweep = run_sweep(quick);
    println!(
        "{:<14} {:>12} {:>12} {:>8} {:>9} {:>16}",
        "policy", "goodput_bps", "segments", "retx", "timeouts", "rrc_transitions"
    );
    for r in &sweep.rows {
        println!(
            "{:<14} {:>12} {:>12} {:>8} {:>9} {:>16}",
            r.policy.name(),
            r.goodput_bps,
            r.delivered_segments,
            r.retransmits,
            r.timeouts,
            r.rrc_transitions
        );
    }
    println!(
        "sweep: {} segments in {:.3} s = {:.1} segments/s, report_hash 0x{:016x}",
        sweep.segments, sweep.wall_seconds, sweep.segments_per_sec, sweep.report_hash
    );
    println!("determinism gate holds: identical report hash across {REPS} repetitions");

    assert!(sweep.segments > 0, "traffic sweep delivered no segments");

    let prior = std::fs::read_to_string(BENCH_PATH).map(|t| load_history(&t)).unwrap_or_default();
    let mut entries = prior.clone();
    entries.push(render_entry(&git_rev(), quick, &sweep));
    std::fs::write(BENCH_PATH, render_json(&entries)).expect("write BENCH_traffic.json");
    println!("appended history entry {} to {BENCH_PATH}", entries.len());

    // Gate: segments/s must not regress more than 10% against the last
    // same-mode trajectory entry.
    if gate {
        let failures = regression_check(&prior, quick, &sweep);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: throughput regression — {f}");
            }
            std::process::exit(1);
        }
        println!("throughput gate holds: within 10% of the previous same-mode entry");
    }
}
