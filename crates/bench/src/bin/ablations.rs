//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! Each section sweeps one mechanism and prints a table showing why the
//! baseline configuration reproduces the paper:
//!
//! 1. **operator buffer depth** — bufferbloat: saturated RTT vs queue size;
//! 2. **RRC upgrade sustain** — where the Figure-4 knee moves;
//! 3. **bearer generation** — R99-class vs HSUPA-class uplink grants;
//! 4. **isolation rule on/off** — what leaks without the iptables drop.
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin ablations -- [seconds] [seed] [workers]
//! ```
//!
//! Each sweep's runs are independent simulations, so they are sharded
//! across a worker pool by `umtslab-runner`; tables print in sweep order
//! regardless of which worker finished first.

use umtslab::experiment::{
    run_experiment, ExperimentConfig, ExperimentResult, PathKind, TwoNodeTestbed, INRIA_ADDR,
};
use umtslab::paper::metric_points;
use umtslab::prelude::*;
use umtslab::umtslab_net::packet::PacketIdAllocator;
use umtslab_planetlab::node::EgressAction;
use umtslab_planetlab::umtscmd::ISOLATION_COMMENT;
use umtslab_runner::{default_workers, run_jobs};

use umtslab::umtslab_planetlab;

fn saturation_cfg(secs: u64, seed: u64) -> ExperimentConfig {
    let mut spec = FlowSpec::cbr_1mbps();
    spec.duration = Duration::from_secs(secs);
    ExperimentConfig::paper(spec, PathKind::UmtsToEthernet, seed)
}

/// Runs a list of independent configs on the worker pool, results in
/// input order.
fn run_all(cfgs: Vec<ExperimentConfig>, workers: usize) -> Vec<ExperimentResult> {
    run_jobs(cfgs, workers, |_, cfg| run_experiment(cfg.clone()).expect("run completes"))
}

fn buffer_depth_sweep(secs: u64, seed: u64, workers: usize) {
    println!("== ablation 1: operator uplink buffer depth (saturated 1 Mbps flow) ==");
    println!("{:<14} {:>12} {:>12} {:>10}", "buffer", "max RTT", "mean RTT", "loss %");
    let depths = [20usize, 40, 80, 160, 320];
    let cfgs = depths
        .iter()
        .map(|kb| {
            let mut cfg = saturation_cfg(secs, seed);
            cfg.operator.uplink.queue_bytes = kb * 1000;
            cfg
        })
        .collect();
    for (kb, r) in depths.iter().zip(run_all(cfgs, workers)) {
        println!(
            "{:<14} {:>12} {:>12} {:>9.1}%",
            format!("{kb} kB"),
            r.summary.max_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
            r.summary.mean_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
            r.summary.loss_rate * 100.0
        );
    }
    println!("-> deeper buffers trade loss for delay: the paper's ~3 s RTTs need a deep queue.\n");
}

fn rrc_upgrade_sweep(secs: u64, seed: u64, workers: usize) {
    println!("== ablation 2: RRC upgrade sustain time (knee position in Figure 4) ==");
    println!("{:<16} {:>12} {:>14} {:>14}", "sustain", "knee [s]", "early kbps", "late kbps");
    let sustains = [15u64, 30, 45, 90];
    let cfgs = sustains
        .iter()
        .map(|sustain_s| {
            let mut cfg = saturation_cfg(secs, seed);
            cfg.operator.rrc.upgrade_sustain = Duration::from_secs(*sustain_s);
            cfg
        })
        .collect();
    for (sustain_s, r) in sustains.iter().copied().zip(run_all(cfgs, workers)) {
        let pts = metric_points(&r, umtslab::Metric::Bitrate);
        let knee = pts.iter().find(|(t, v)| *v > 250.0 && *t > 5.0).map(|(t, _)| *t);
        let mean_over = |lo: f64, hi: f64| {
            let v: Vec<f64> =
                pts.iter().filter(|(t, _)| *t >= lo && *t < hi).map(|(_, v)| *v).collect();
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        println!(
            "{:<16} {:>12} {:>14.0} {:>14.0}",
            format!("{sustain_s} s"),
            knee.map_or_else(|| "none".into(), |t| format!("{t:.0}")),
            mean_over(5.0, (sustain_s as f64 - 5.0).max(6.0)),
            mean_over(sustain_s as f64 + 15.0, secs as f64 - 5.0),
        );
    }
    println!("-> the knee tracks the sustain threshold; 45 s reproduces the paper's ~50 s.\n");
}

fn bearer_generation_sweep(secs: u64, seed: u64, workers: usize) {
    println!("== ablation 3: bearer generation (uplink grant) ==");
    println!("{:<26} {:>12} {:>10} {:>12}", "grant", "rate kbps", "loss %", "max RTT");
    let cases = [
        ("R99 64k (no upgrade)", 64_000u64, 64_000u64),
        ("R99 160k->416k (paper)", 160_000, 416_000),
        ("HSUPA 1.4M (modern)", 1_400_000, 1_400_000),
    ];
    let cfgs = cases
        .iter()
        .map(|(_, initial, upgraded)| {
            let mut cfg = saturation_cfg(secs, seed);
            cfg.operator.rrc.initial_dch.uplink_bps = *initial;
            cfg.operator.rrc.upgraded_dch.uplink_bps = *upgraded;
            cfg
        })
        .collect();
    for ((label, _, _), r) in cases.iter().zip(run_all(cfgs, workers)) {
        println!(
            "{:<26} {:>12.0} {:>9.1}% {:>12}",
            label,
            r.summary.mean_bitrate_bps / 1000.0,
            r.summary.loss_rate * 100.0,
            r.summary.max_rtt.map_or_else(|| "-".into(), |d| d.to_string()),
        );
    }
    println!("-> an HSUPA-class grant removes the saturation cliff entirely: the paper's");
    println!("   findings are specific to the R99-era uplink it measured.\n");
}

fn isolation_on_off(seed: u64) {
    println!("== ablation 4: the iptables isolation rule ==");
    let cfg = ExperimentConfig::paper(FlowSpec::voip_g711(), PathKind::UmtsToEthernet, seed);
    for enabled in [true, false] {
        let mut env = TwoNodeTestbed::build(&cfg);
        env.umts_up(Duration::from_secs(60)).expect("connects");
        env.register_destination();
        let napoli = env.napoli;
        if !enabled {
            env.tb.node_mut(napoli).firewall.egress.remove_by_comment(ISOLATION_COMMENT);
        }
        // A foreign slice aims straight at the PPP peer over a forced route.
        let intruder = env.tb.node_mut(napoli).slices.create("intruder");
        let peer = env.tb.node(napoli).iface(umtslab_planetlab::node::PPP0).peer.unwrap();
        env.tb.node_mut(napoli).rib.table_mut(umtslab::umtslab_net::route::TableId::MAIN).add(
            umtslab::umtslab_net::route::Route::onlink(
                Ipv4Cidr::host(peer),
                umtslab_planetlab::node::PPP0,
            ),
        );
        let now = env.tb.now();
        let mut ids = PacketIdAllocator::new();
        let p = Packet::udp(
            ids.allocate(),
            Endpoint::new(Ipv4Address::UNSPECIFIED, 7000),
            Endpoint::new(peer, 7001),
            vec![0; 64],
            now,
        );
        let outcome = match env.tb.node_mut(napoli).send_from_slice(now, intruder, p) {
            EgressAction::Dropped(k) => format!("dropped ({k})"),
            EgressAction::Umts => "LEAKED onto the UMTS uplink".to_string(),
            other => format!("{other:?}"),
        };
        println!(
            "isolation rule {:<9} -> foreign-slice packet to the PPP peer: {outcome}",
            if enabled { "installed" } else { "removed" }
        );
        let _ = INRIA_ADDR;
    }
    println!("-> without the drop rule the paper's 'special case' traffic escapes.\n");
}

fn main() {
    let mut args = std::env::args().skip(1);
    let secs: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(120);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(5);
    let workers: usize =
        args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| default_workers(5));
    println!("umtslab ablations — {secs} s saturation runs, seed {seed}, {workers} worker(s)\n");
    buffer_depth_sweep(secs, seed, workers);
    rrc_upgrade_sweep(secs, seed, workers);
    bearer_generation_sweep(secs, seed, workers);
    isolation_on_off(seed);
}
