//! Steady-state data-plane throughput and copy-count benchmark.
//!
//! Measures the zero-copy data plane on the wired (Ethernet↔Ethernet)
//! two-node testbed, for the paper's two measurement flows:
//!
//! * `voip-g711` — small packets at a high rate (80 B @ 100 pps);
//! * `cbr-1mbps` — the saturation flow (1000 B @ 125 pps).
//!
//! For each flow the bench warms the testbed up, then times a steady-state
//! window and reports
//!
//! * **simulated packets forwarded per wall-clock second** (the headline
//!   throughput of the simulator's forwarding path), and
//! * **payload bytes deep-copied per forwarded packet**, from the global
//!   [`copy counters`](umtslab::umtslab_net::copy_counters) that every
//!   `Bytes::copy_from_slice`/`to_vec` increments.
//!
//! Results are a **trajectory**: each run appends an entry (git revision,
//! mode, per-flow figures) to the `history` array of
//! `BENCH_dataplane.json`, so the committed file records how throughput
//! evolved across the PR sequence. Two gates make the bench fail loudly:
//!
//! * the wired fast path must perform **zero** payload-byte copies in the
//!   1 Mbps flow's steady state, and
//! * each flow's pkts/s must stay within 10% of the previous same-mode
//!   history entry (the regression gate; skip with `--no-gate` when
//!   measuring on a machine unrelated to the recorded history).
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin dataplane [-- --quick] [--no-gate]
//! ```
//!
//! `--quick` shrinks the flow durations for CI smoke use; quick entries
//! are only ever compared against other quick entries.

use std::fmt::Write as _;

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;
use umtslab::umtslab_net::copy_counters;

const SEED: u64 = 42;
const BENCH_PATH: &str = "BENCH_dataplane.json";
/// The regression gate: pkts/s below this fraction of the previous
/// same-mode entry fails the run.
const GATE_FRACTION: f64 = 0.9;

struct FlowReport {
    label: String,
    sim_seconds: f64,
    packets_forwarded: u64,
    wall_seconds: f64,
    packets_per_sec: f64,
    deep_copies: u64,
    deep_copy_bytes: u64,
    bytes_cloned_per_packet: f64,
}

/// Repetitions per flow; the median wall time wins. The simulated work
/// is identical each time (same seed), so the repetitions differ only in
/// host noise — the median strips both slow outliers (scheduler
/// preemption) and fast ones (turbo bursts), which a min/max would chase.
const REPS: usize = 5;

/// Runs one flow on the wired path `REPS` times and returns the
/// median-wall repetition.
fn run_flow(spec: FlowSpec, measure: Duration) -> FlowReport {
    let mut runs: Vec<FlowReport> =
        (0..REPS).map(|_| run_flow_once(spec.clone(), measure)).collect();
    runs.sort_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds));
    runs.swap_remove(REPS / 2)
}

/// One measured repetition of a flow's steady-state window.
fn run_flow_once(spec: FlowSpec, measure: Duration) -> FlowReport {
    let label = spec.label.clone();
    let mut spec = spec;
    // Warmup fills the pipeline and the buffer pool; only the second
    // half of the flow is measured.
    let warmup = Duration::from_secs(2);
    spec.duration = warmup + measure;

    let cfg = ExperimentConfig::paper(spec.clone(), PathKind::EthernetToEthernet, SEED);
    let mut env = TwoNodeTestbed::build(&cfg);
    let flow_start = env.tb.now() + cfg.settle;
    let dport = spec.dport;
    let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, flow_start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);

    // Warm up to steady state, then measure the remaining window.
    env.tb.run_until(flow_start + warmup);
    let copies0 = copy_counters();
    let recv0 = env.tb.receiver_records(rx).len() as u64;
    let wall0 = std::time::Instant::now();

    env.tb.run_until(flow_start + warmup + measure + cfg.drain);

    let wall = wall0.elapsed().as_secs_f64();
    let copies1 = copy_counters();
    let recv1 = env.tb.receiver_records(rx).len() as u64;

    let packets = recv1 - recv0;
    let deep_copies = copies1.copies - copies0.copies;
    let deep_copy_bytes = copies1.bytes - copies0.bytes;
    FlowReport {
        label,
        sim_seconds: measure.total_micros() as f64 / 1e6,
        packets_forwarded: packets,
        wall_seconds: wall,
        packets_per_sec: packets as f64 / wall.max(1e-9),
        deep_copies,
        deep_copy_bytes,
        bytes_cloned_per_packet: deep_copy_bytes as f64 / (packets.max(1)) as f64,
    }
}

/// The current git revision (short), or `unknown` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders one history entry (one run) at the array's indent level.
fn render_entry(git_rev: &str, quick: bool, reports: &[FlowReport]) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"git_rev\": \"{git_rev}\",");
    let _ = writeln!(out, "      \"quick\": {quick},");
    out.push_str("      \"flows\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"flow\": \"{}\",", r.label);
        let _ = writeln!(out, "          \"sim_seconds\": {:.3},", r.sim_seconds);
        let _ = writeln!(out, "          \"packets_forwarded\": {},", r.packets_forwarded);
        let _ = writeln!(out, "          \"wall_seconds\": {:.6},", r.wall_seconds);
        let _ = writeln!(out, "          \"packets_per_sec\": {:.1},", r.packets_per_sec);
        let _ = writeln!(out, "          \"deep_copies\": {},", r.deep_copies);
        let _ = writeln!(out, "          \"deep_copy_bytes\": {},", r.deep_copy_bytes);
        let _ = writeln!(
            out,
            "          \"bytes_cloned_per_packet\": {:.3}",
            r.bytes_cloned_per_packet
        );
        out.push_str(if i + 1 < reports.len() { "        },\n" } else { "        }\n" });
    }
    out.push_str("      ]\n    }");
    out
}

/// Renders the whole trajectory document from raw entry strings.
fn render_json(entries: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"dataplane\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"history\": [\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the raw history entries (top-level objects of the `history`
/// array) from a previously written trajectory document. Returns an empty
/// list for a missing file or any shape this renderer didn't produce.
fn load_history(text: &str) -> Vec<String> {
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let body = &text[start + "\"history\": [".len()..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut entry_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    entry_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = entry_start.take() {
                        // Re-indent defensively: entries are stored at the
                        // fixed 4-space level `render_entry` emits.
                        entries.push(format!("    {}", body[s..=i].trim()));
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// Pulls `(flow label, pkts/s)` pairs out of one raw history entry.
fn entry_flows(entry: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut label = None;
    for line in entry.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"flow\": \"") {
            label = rest.strip_suffix("\",").map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"packets_per_sec\": ") {
            if let (Some(l), Ok(v)) = (label.take(), rest.trim_end_matches(',').parse::<f64>()) {
                out.push((l, v));
            }
        }
    }
    out
}

/// Checks the new reports against the last same-mode history entry.
/// Returns the regression messages (empty = gate passes).
fn regression_check(prior: &[String], quick: bool, reports: &[FlowReport]) -> Vec<String> {
    let mode = format!("\"quick\": {quick},");
    let Some(prev) = prior.iter().rev().find(|e| e.contains(&mode)) else {
        return Vec::new();
    };
    let mut failures = Vec::new();
    for (label, prev_pps) in entry_flows(prev) {
        let Some(now) = reports.iter().find(|r| r.label == label) else {
            continue;
        };
        if now.packets_per_sec < prev_pps * GATE_FRACTION {
            failures.push(format!(
                "{label}: {:.1} pkts/s is {:.1}% of the previous entry's {prev_pps:.1}",
                now.packets_per_sec,
                now.packets_per_sec / prev_pps * 100.0,
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = !args.iter().any(|a| a == "--no-gate");
    let measure = if quick { Duration::from_secs(4) } else { Duration::from_secs(30) };

    println!(
        "dataplane bench: wired two-node path, seed {SEED}, {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "flow", "packets", "wall [s]", "pkts/s", "copies", "B/pkt"
    );

    let flows = [FlowSpec::voip_g711(), FlowSpec::cbr_1mbps()];
    let mut reports = Vec::new();
    for spec in flows {
        let r = run_flow(spec, measure);
        println!(
            "{:<12} {:>10} {:>10.3} {:>14.1} {:>12} {:>10.3}",
            r.label,
            r.packets_forwarded,
            r.wall_seconds,
            r.packets_per_sec,
            r.deep_copies,
            r.bytes_cloned_per_packet
        );
        reports.push(r);
    }

    let prior = std::fs::read_to_string(BENCH_PATH).map(|t| load_history(&t)).unwrap_or_default();
    let mut entries = prior.clone();
    entries.push(render_entry(&git_rev(), quick, &reports));
    std::fs::write(BENCH_PATH, render_json(&entries)).expect("write BENCH_dataplane.json");
    println!("appended history entry {} to {BENCH_PATH}", entries.len());

    // Gate 1: the contract the zero-copy refactor guarantees — once a
    // packet is emitted, the wired forwarding path never copies its
    // payload bytes.
    let cbr = reports.iter().find(|r| r.label == "cbr-1mbps").expect("cbr flow ran");
    assert!(cbr.packets_forwarded > 0, "cbr flow forwarded no packets");
    if cbr.deep_copies != 0 {
        eprintln!(
            "FAIL: wired cbr-1mbps steady state performed {} payload copies ({} B)",
            cbr.deep_copies, cbr.deep_copy_bytes
        );
        std::process::exit(1);
    }
    println!("zero-copy invariant holds: 0 payload byte copies in steady state");

    // Gate 2: throughput must not regress more than 10% against the last
    // same-mode trajectory entry.
    if gate {
        let failures = regression_check(&prior, quick, &reports);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: throughput regression — {f}");
            }
            std::process::exit(1);
        }
        println!("throughput gate holds: within 10% of the previous same-mode entry");
    }
}
