//! Steady-state data-plane throughput and copy-count benchmark.
//!
//! Measures the zero-copy data plane on the wired (Ethernet↔Ethernet)
//! two-node testbed, for the paper's two measurement flows:
//!
//! * `voip-g711` — small packets at a high rate (80 B @ 100 pps);
//! * `cbr-1mbps` — the saturation flow (1000 B @ 125 pps).
//!
//! For each flow the bench warms the testbed up, then times a steady-state
//! window and reports
//!
//! * **simulated packets forwarded per wall-clock second** (the headline
//!   throughput of the simulator's forwarding path), and
//! * **payload bytes deep-copied per forwarded packet**, from the global
//!   [`copy counters`](umtslab::umtslab_net::copy_counters) that every
//!   `Bytes::copy_from_slice`/`to_vec` increments.
//!
//! The wired fast path never serializes a packet, so after emission it
//! must perform **zero** payload-byte copies; the bench asserts this for
//! the 1 Mbps flow and exits nonzero if any copy slips in. Results land in
//! `BENCH_dataplane.json`.
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin dataplane [-- --quick]
//! ```
//!
//! `--quick` shrinks the flow durations for CI smoke use.

use std::fmt::Write as _;

use umtslab::experiment::{ExperimentConfig, PathKind, TwoNodeTestbed, INRIA_ADDR};
use umtslab::prelude::*;
use umtslab::umtslab_net::copy_counters;

const SEED: u64 = 42;

struct FlowReport {
    label: String,
    sim_seconds: f64,
    packets_forwarded: u64,
    wall_seconds: f64,
    packets_per_sec: f64,
    deep_copies: u64,
    deep_copy_bytes: u64,
    bytes_cloned_per_packet: f64,
}

/// Runs one flow on the wired path and measures its steady-state window.
fn run_flow(spec: FlowSpec, measure: Duration) -> FlowReport {
    let label = spec.label.clone();
    let mut spec = spec;
    // Warmup fills the pipeline and the buffer pool; only the second
    // half of the flow is measured.
    let warmup = Duration::from_secs(2);
    spec.duration = warmup + measure;

    let cfg = ExperimentConfig::paper(spec.clone(), PathKind::EthernetToEthernet, SEED);
    let mut env = TwoNodeTestbed::build(&cfg);
    let flow_start = env.tb.now() + cfg.settle;
    let dport = spec.dport;
    let tx = env.tb.add_sender(env.napoli, env.umts_slice, spec, INRIA_ADDR, flow_start);
    let rx = env.tb.add_receiver(env.inria, env.probe_slice, dport, tx, true);

    // Warm up to steady state, then measure the remaining window.
    env.tb.run_until(flow_start + warmup);
    let copies0 = copy_counters();
    let recv0 = env.tb.receiver_records(rx).len() as u64;
    let wall0 = std::time::Instant::now();

    env.tb.run_until(flow_start + warmup + measure + cfg.drain);

    let wall = wall0.elapsed().as_secs_f64();
    let copies1 = copy_counters();
    let recv1 = env.tb.receiver_records(rx).len() as u64;

    let packets = recv1 - recv0;
    let deep_copies = copies1.copies - copies0.copies;
    let deep_copy_bytes = copies1.bytes - copies0.bytes;
    FlowReport {
        label,
        sim_seconds: measure.total_micros() as f64 / 1e6,
        packets_forwarded: packets,
        wall_seconds: wall,
        packets_per_sec: packets as f64 / wall.max(1e-9),
        deep_copies,
        deep_copy_bytes,
        bytes_cloned_per_packet: deep_copy_bytes as f64 / (packets.max(1)) as f64,
    }
}

fn render_json(quick: bool, reports: &[FlowReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"dataplane\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    out.push_str("  \"flows\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"flow\": \"{}\",", r.label);
        let _ = writeln!(out, "      \"sim_seconds\": {:.3},", r.sim_seconds);
        let _ = writeln!(out, "      \"packets_forwarded\": {},", r.packets_forwarded);
        let _ = writeln!(out, "      \"wall_seconds\": {:.6},", r.wall_seconds);
        let _ = writeln!(out, "      \"packets_per_sec\": {:.1},", r.packets_per_sec);
        let _ = writeln!(out, "      \"deep_copies\": {},", r.deep_copies);
        let _ = writeln!(out, "      \"deep_copy_bytes\": {},", r.deep_copy_bytes);
        let _ =
            writeln!(out, "      \"bytes_cloned_per_packet\": {:.3}", r.bytes_cloned_per_packet);
        out.push_str(if i + 1 < reports.len() { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let measure = if quick { Duration::from_secs(4) } else { Duration::from_secs(30) };

    println!(
        "dataplane bench: wired two-node path, seed {SEED}, {} mode",
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:<12} {:>10} {:>10} {:>14} {:>12} {:>10}",
        "flow", "packets", "wall [s]", "pkts/s", "copies", "B/pkt"
    );

    let flows = [FlowSpec::voip_g711(), FlowSpec::cbr_1mbps()];
    let mut reports = Vec::new();
    for spec in flows {
        let r = run_flow(spec, measure);
        println!(
            "{:<12} {:>10} {:>10.3} {:>14.1} {:>12} {:>10.3}",
            r.label,
            r.packets_forwarded,
            r.wall_seconds,
            r.packets_per_sec,
            r.deep_copies,
            r.bytes_cloned_per_packet
        );
        reports.push(r);
    }

    let json = render_json(quick, &reports);
    std::fs::write("BENCH_dataplane.json", &json).expect("write BENCH_dataplane.json");
    println!("wrote BENCH_dataplane.json");

    // The contract the zero-copy refactor guarantees: once a packet is
    // emitted, the wired forwarding path never copies its payload bytes.
    let cbr = reports.iter().find(|r| r.label == "cbr-1mbps").expect("cbr flow ran");
    assert!(cbr.packets_forwarded > 0, "cbr flow forwarded no packets");
    if cbr.deep_copies != 0 {
        eprintln!(
            "FAIL: wired cbr-1mbps steady state performed {} payload copies ({} B)",
            cbr.deep_copies, cbr.deep_copy_bytes
        );
        std::process::exit(1);
    }
    println!("zero-copy invariant holds: 0 payload byte copies in steady state");
}
