//! Sharded-fleet scaling benchmark: aggregate throughput per shard count.
//!
//! Builds the same coupled fleet topology (UMTS member nodes running
//! concurrent probe sessions into wired sinks) at shard counts 1, 2, 4
//! and 8, drives each partitioning on a worker pool, and reports
//!
//! * **aggregate simulated packets per wall-clock second** — access-link
//!   deliveries plus radio (uplink + downlink) serves, the whole
//!   fleet's forwarding work over the run's wall time; and
//! * the run's **trace hash**, which must be identical across every
//!   shard count (the invariance gate — partitioning must never change
//!   results, only wall time).
//!
//! Results are a **trajectory**: each run appends an entry (git
//! revision, mode, per-shard-count figures) to the `history` array of
//! `BENCH_fleet.json`, so the committed file records how sharded
//! throughput evolved across the PR sequence. Per shard count, pkts/s
//! must stay within 10% of the previous same-mode entry (skip with
//! `--no-gate` on machines unrelated to the recorded history).
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin fleet [-- --quick] [--no-gate]
//! ```
//!
//! `--quick` shrinks the fleet and only runs shard counts 1 and 2 for CI
//! smoke use; quick entries are only compared against other quick
//! entries.

use std::fmt::Write as _;

use umtslab::fleet::FleetConfig;
use umtslab_runner::{default_workers, run_fleet_parallel};

const SEED: u64 = 2008;
const BENCH_PATH: &str = "BENCH_fleet.json";
/// The regression gate: pkts/s below this fraction of the previous
/// same-mode entry fails the run.
const GATE_FRACTION: f64 = 0.9;

/// Repetitions per shard count; the median wall time wins. The simulated
/// work is identical each repetition (same seed), so they differ only in
/// host noise.
const REPS: usize = 3;

struct ShardReport {
    shards: usize,
    packets: u64,
    wall_seconds: f64,
    packets_per_sec: f64,
    trace_hash: u64,
}

/// The fleet the bench drives: small enough to finish in seconds per
/// repetition, large enough that every shard count {1, 2, 4, 8} gets a
/// meaningful partition.
fn bench_config(quick: bool) -> FleetConfig {
    let mut cfg = FleetConfig::demo();
    cfg.seed = SEED;
    if quick {
        cfg.nodes = 48;
        cfg.flows_per_node = 4;
        cfg.sinks = 6;
        cfg.seconds = 2;
    } else {
        cfg.nodes = 240;
        cfg.flows_per_node = 8;
        cfg.sinks = 12;
        cfg.seconds = 5;
    }
    cfg
}

fn run_once(cfg: &FleetConfig) -> ShardReport {
    let wall0 = std::time::Instant::now();
    let report = run_fleet_parallel(cfg, default_workers(cfg.shards));
    let wall = wall0.elapsed().as_secs_f64();
    let m = &report.metrics;
    let packets = m.access.delivered + m.uplink.served + m.downlink.served;
    ShardReport {
        shards: cfg.shards,
        packets,
        wall_seconds: wall,
        packets_per_sec: packets as f64 / wall.max(1e-9),
        trace_hash: report.trace_hash,
    }
}

/// Runs one shard count `REPS` times and returns the median-wall rep.
fn run_shard_count(cfg: &FleetConfig) -> ShardReport {
    let mut runs: Vec<ShardReport> = (0..REPS).map(|_| run_once(cfg)).collect();
    runs.sort_by(|a, b| a.wall_seconds.total_cmp(&b.wall_seconds));
    runs.swap_remove(REPS / 2)
}

/// The current git revision (short), or `unknown` outside a checkout.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders one history entry (one run) at the array's indent level.
fn render_entry(git_rev: &str, quick: bool, reports: &[ShardReport]) -> String {
    let mut out = String::new();
    out.push_str("    {\n");
    let _ = writeln!(out, "      \"git_rev\": \"{git_rev}\",");
    let _ = writeln!(out, "      \"quick\": {quick},");
    out.push_str("      \"shard_counts\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("        {\n");
        let _ = writeln!(out, "          \"shards\": {},", r.shards);
        let _ = writeln!(out, "          \"packets\": {},", r.packets);
        let _ = writeln!(out, "          \"wall_seconds\": {:.6},", r.wall_seconds);
        let _ = writeln!(out, "          \"packets_per_sec\": {:.1},", r.packets_per_sec);
        let _ = writeln!(out, "          \"trace_hash\": \"0x{:016x}\"", r.trace_hash);
        out.push_str(if i + 1 < reports.len() { "        },\n" } else { "        }\n" });
    }
    out.push_str("      ]\n    }");
    out
}

/// Renders the whole trajectory document from raw entry strings.
fn render_json(entries: &[String]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"fleet\",");
    let _ = writeln!(out, "  \"seed\": {SEED},");
    out.push_str("  \"history\": [\n");
    out.push_str(&entries.join(",\n"));
    out.push_str("\n  ]\n}\n");
    out
}

/// Extracts the raw history entries from a previously written trajectory
/// document. Returns an empty list for a missing file or a foreign shape.
fn load_history(text: &str) -> Vec<String> {
    let Some(start) = text.find("\"history\": [") else {
        return Vec::new();
    };
    let body = &text[start + "\"history\": [".len()..];
    let mut entries = Vec::new();
    let mut depth = 0usize;
    let mut entry_start = None;
    for (i, c) in body.char_indices() {
        match c {
            '{' => {
                if depth == 0 {
                    entry_start = Some(i);
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    if let Some(s) = entry_start.take() {
                        entries.push(format!("    {}", body[s..=i].trim()));
                    }
                }
            }
            ']' if depth == 0 => break,
            _ => {}
        }
    }
    entries
}

/// Pulls `(shards, pkts/s)` pairs out of one raw history entry.
fn entry_shard_counts(entry: &str) -> Vec<(usize, f64)> {
    let mut out = Vec::new();
    let mut shards = None;
    for line in entry.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"shards\": ") {
            shards = rest.trim_end_matches(',').parse::<usize>().ok();
        } else if let Some(rest) = line.strip_prefix("\"packets_per_sec\": ") {
            if let (Some(s), Ok(v)) = (shards.take(), rest.trim_end_matches(',').parse::<f64>()) {
                out.push((s, v));
            }
        }
    }
    out
}

/// Checks the new reports against the last same-mode history entry.
/// Returns the regression messages (empty = gate passes).
fn regression_check(prior: &[String], quick: bool, reports: &[ShardReport]) -> Vec<String> {
    let mode = format!("\"quick\": {quick},");
    let Some(prev) = prior.iter().rev().find(|e| e.contains(&mode)) else {
        return Vec::new();
    };
    let mut failures = Vec::new();
    for (shards, prev_pps) in entry_shard_counts(prev) {
        let Some(now) = reports.iter().find(|r| r.shards == shards) else {
            continue;
        };
        if now.packets_per_sec < prev_pps * GATE_FRACTION {
            failures.push(format!(
                "{shards} shard(s): {:.1} pkts/s is {:.1}% of the previous entry's {prev_pps:.1}",
                now.packets_per_sec,
                now.packets_per_sec / prev_pps * 100.0,
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let gate = !args.iter().any(|a| a == "--no-gate");

    let base = bench_config(quick);
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    println!(
        "fleet bench: {} nodes x {} sessions, {} s window, seed {SEED}, {} mode",
        base.nodes,
        base.flows_per_node,
        base.seconds,
        if quick { "quick" } else { "full" }
    );
    println!(
        "{:<8} {:>12} {:>10} {:>14} {:>20}",
        "shards", "packets", "wall [s]", "pkts/s", "trace_hash"
    );

    let mut reports = Vec::new();
    for &shards in shard_counts {
        let mut cfg = base.clone();
        cfg.shards = shards;
        let r = run_shard_count(&cfg);
        println!(
            "{:<8} {:>12} {:>10.3} {:>14.1}   0x{:016x}",
            r.shards, r.packets, r.wall_seconds, r.packets_per_sec, r.trace_hash
        );
        reports.push(r);
    }

    let prior = std::fs::read_to_string(BENCH_PATH).map(|t| load_history(&t)).unwrap_or_default();
    let mut entries = prior.clone();
    entries.push(render_entry(&git_rev(), quick, &reports));
    std::fs::write(BENCH_PATH, render_json(&entries)).expect("write BENCH_fleet.json");
    println!("appended history entry {} to {BENCH_PATH}", entries.len());

    // Gate 1: shard-count invariance — the whole point of the sharded
    // core. Any hash mismatch means partitioning leaked into results.
    let first = reports.first().expect("at least one shard count ran");
    assert!(first.packets > 0, "fleet forwarded no packets");
    for r in &reports[1..] {
        if r.trace_hash != first.trace_hash {
            eprintln!(
                "FAIL: trace hash diverged — {} shard(s) 0x{:016x} vs 1 shard 0x{:016x}",
                r.shards, r.trace_hash, first.trace_hash
            );
            std::process::exit(1);
        }
    }
    println!("invariance gate holds: identical trace hash at every shard count");

    // Gate 2: throughput must not regress more than 10% against the last
    // same-mode trajectory entry, per shard count.
    if gate {
        let failures = regression_check(&prior, quick, &reports);
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: throughput regression — {f}");
            }
            std::process::exit(1);
        }
        println!("throughput gate holds: within 10% of the previous same-mode entry");
    }
}
