//! Regenerates every figure of the paper's evaluation.
//!
//! Runs the full 120 s campaign (both workloads × both paths), prints the
//! windowed series each figure plots (200 ms windows, exactly the paper's
//! methodology), the summary rows, and the shape-check table comparing
//! this reproduction's qualitative results against the paper's claims.
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin figures -- [reps] [seed] [--series]
//! ```
//!
//! * `reps`  — repetitions with distinct seeds (the paper used 20); default 1.
//! * `seed`  — base seed; default 2008.
//! * `--series` — also dump the full per-window series for every figure.

use umtslab::paper::{
    metric_points, run_paper, shape_checks, summary_row, Metric, PaperRun, FIGURES,
};
use umtslab::ExperimentResult;

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn result_for<'a>(run: &'a PaperRun, fig_id: &str) -> (&'a ExperimentResult, &'a ExperimentResult) {
    match fig_id {
        "fig1" | "fig2" | "fig3" => (&run.voip.umts, &run.voip.ethernet),
        _ => (&run.cbr.umts, &run.cbr.ethernet),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reps: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let seed: u64 = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2008);
    let dump_series = args.iter().any(|a| a == "--series");

    println!("umtslab figure regeneration — {reps} repetition(s), base seed {seed}");
    println!("(the paper executed each measurement 20 times; pass `20` to match)\n");

    let mut runs: Vec<PaperRun> = Vec::new();
    for rep in 0..reps {
        let s = seed.wrapping_add(rep as u64 * 7919);
        eprintln!("running repetition {}/{reps} (seed {s}) ...", rep + 1);
        match run_paper(s, None) {
            Ok(r) => runs.push(r),
            Err(e) => {
                eprintln!("repetition failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // Summary rows (the numbers behind all seven figures).
    println!("== summaries (first repetition) ==");
    let first = &runs[0];
    for r in [&first.voip.umts, &first.voip.ethernet, &first.cbr.umts, &first.cbr.ethernet] {
        println!("{}", summary_row(r));
    }

    // Per-figure headline numbers aggregated over repetitions.
    println!("\n== per-figure headline values over {reps} repetition(s) ==");
    for fig in FIGURES {
        let mut umts_vals = Vec::new();
        let mut eth_vals = Vec::new();
        for run in &runs {
            let (u, e) = result_for(run, fig.id);
            let headline = |r: &ExperimentResult| match fig.metric {
                Metric::Bitrate => r.summary.mean_bitrate_bps / 1000.0,
                Metric::Jitter => {
                    r.summary.mean_jitter.map(|d| d.as_secs_f64() * 1000.0).unwrap_or(0.0)
                }
                Metric::Loss => r.summary.loss_rate * 100.0,
                Metric::Rtt => r.summary.mean_rtt.map(|d| d.as_secs_f64() * 1000.0).unwrap_or(0.0),
            };
            umts_vals.push(headline(u));
            eth_vals.push(headline(e));
        }
        let unit = match fig.metric {
            Metric::Bitrate => "kbps",
            Metric::Jitter | Metric::Rtt => "ms",
            Metric::Loss => "%",
        };
        let (um, us) = mean_std(&umts_vals);
        let (em, es) = mean_std(&eth_vals);
        println!(
            "{}  {:<34} umts {um:>9.2}±{us:<7.2} eth {em:>9.2}±{es:<7.2} [{unit}]",
            fig.id, fig.title
        );
    }

    // Shape checks (paper claims vs this run).
    println!("\n== shape checks vs the paper (first repetition) ==");
    let mut failed = 0;
    for c in shape_checks(first) {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("[{status}] {:<22} paper: {:<62} measured: {}", c.name, c.expectation, c.measured);
    }

    if dump_series {
        println!("\n== full series (first repetition) ==");
        for fig in FIGURES {
            let (u, e) = result_for(first, fig.id);
            println!("\n--- {} ({}) — UMTS-to-Ethernet ---", fig.id, fig.title);
            for (t, v) in metric_points(u, fig.metric) {
                println!("{t:.1}\t{v:.6}");
            }
            println!("\n--- {} ({}) — Ethernet-to-Ethernet ---", fig.id, fig.title);
            for (t, v) in metric_points(e, fig.metric) {
                println!("{t:.1}\t{v:.6}");
            }
        }
    }

    if failed > 0 {
        eprintln!("\n{failed} shape check(s) failed");
        std::process::exit(2);
    }
    println!("\nall shape checks passed");
}
