//! Regenerates every figure of the paper's evaluation.
//!
//! Runs the full 120 s campaign (both workloads × both paths), sharded
//! across a worker pool by `umtslab-runner` — results are byte-identical
//! for any worker count, because every job owns a pre-assigned seed and a
//! private testbed. Prints the windowed series each figure plots (200 ms
//! windows, exactly the paper's methodology), the summary rows, the
//! shape-check table comparing this reproduction's qualitative results
//! against the paper's claims, and the runner's metrics registry.
//!
//! ```sh
//! cargo run --release -p umtslab-bench --bin figures -- \
//!     [reps] [seed] [--series] [--workers N] [--json PATH] [--bursty]
//! ```
//!
//! * `reps`  — repetitions with distinct seeds (the paper used 20); default 1.
//! * `seed`  — base seed; default 2008.
//! * `--series` — also dump the full per-window series for every figure.
//! * `--workers N` — worker threads; default: available parallelism.
//! * `--json PATH` — write the metrics registry as JSON to `PATH`.
//! * `--bursty` — instead of the paper figures, run the bursty-UMTS
//!   campaign: the VoIP flow over a path degraded by the Gilbert–Elliott
//!   `FaultConfig::bursty_umts()` preset, against a Bernoulli process
//!   matched to the same marginal loss rate, aggregated over `reps`.

use umtslab::experiment::{run_experiment, ExperimentConfig, PathKind};
use umtslab::paper::{metric_points, shape_checks, summary_row, Metric, PaperRun, FIGURES};
use umtslab::prelude::*;
use umtslab::umtslab_net::fault::{FaultConfig, LossModel};
use umtslab::ExperimentResult;
use umtslab_runner::{default_workers, run_jobs, run_reps_parallel, MetricsRegistry};

fn mean_std(values: &[f64]) -> (f64, f64) {
    let n = values.len().max(1) as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn result_for<'a>(run: &'a PaperRun, fig_id: &str) -> (&'a ExperimentResult, &'a ExperimentResult) {
    match fig_id {
        "fig1" | "fig2" | "fig3" => (&run.voip.umts, &run.voip.ethernet),
        _ => (&run.cbr.umts, &run.cbr.ethernet),
    }
}

struct Cli {
    reps: usize,
    seed: u64,
    dump_series: bool,
    workers: Option<usize>,
    json_path: Option<String>,
    bursty: bool,
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        reps: 1,
        seed: 2008,
        dump_series: false,
        workers: None,
        json_path: None,
        bursty: false,
    };
    let mut positional = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--series" => cli.dump_series = true,
            "--bursty" => cli.bursty = true,
            "--workers" => {
                cli.workers = args.next().and_then(|v| v.parse().ok());
                if cli.workers.is_none() {
                    eprintln!("--workers needs a positive integer");
                    std::process::exit(1);
                }
            }
            "--json" => {
                cli.json_path = args.next();
                if cli.json_path.is_none() {
                    eprintln!("--json needs a file path");
                    std::process::exit(1);
                }
            }
            other if !other.starts_with("--") => {
                match positional {
                    0 => cli.reps = other.parse().unwrap_or(cli.reps),
                    1 => cli.seed = other.parse().unwrap_or(cli.seed),
                    _ => {}
                }
                positional += 1;
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(1);
            }
        }
    }
    cli
}

/// Stationary marginal loss probability of a loss process.
fn marginal_loss(model: &LossModel) -> f64 {
    match *model {
        LossModel::None => 0.0,
        LossModel::Bernoulli { p } => p,
        LossModel::GilbertElliott { p_gb, p_bg, loss_good, loss_bad } => {
            let pi_bad = p_gb / (p_gb + p_bg);
            pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
        }
    }
}

/// The bursty-UMTS campaign: the VoIP workload over a wired path degraded
/// by the Gilbert–Elliott preset vs a marginally-matched Bernoulli
/// process, `reps` repetitions each, sharded across the worker pool.
fn run_bursty_campaign(cli: &Cli) {
    let bursty = FaultConfig::bursty_umts();
    let p = marginal_loss(&bursty.loss);
    let variants: Vec<(&str, FaultConfig)> = vec![
        ("clean", FaultConfig::none()),
        ("bursty-UMTS (GE)", bursty),
        (
            "Bernoulli (matched)",
            FaultConfig { loss: LossModel::Bernoulli { p }, ..Default::default() },
        ),
    ];

    let mut jobs = Vec::new();
    for (label, fault) in &variants {
        for rep in 0..cli.reps {
            jobs.push((*label, fault.clone(), cli.seed.wrapping_add(rep as u64)));
        }
    }
    let workers = cli.workers.unwrap_or_else(|| default_workers(jobs.len())).max(1);
    println!(
        "bursty-UMTS campaign — {} repetition(s), base seed {}, {workers} worker(s)",
        cli.reps, cli.seed
    );
    println!("(Gilbert–Elliott preset, stationary marginal loss {:.2}% per link)\n", p * 100.0);

    let results = run_jobs(jobs, workers, |_, (_, fault, seed)| {
        let mut spec = FlowSpec::voip_g711();
        spec.duration = Duration::from_secs(60);
        let mut cfg = ExperimentConfig::paper(spec, PathKind::EthernetToEthernet, *seed);
        cfg.access_fault = fault.clone();
        run_experiment(cfg).expect("wired path always comes up")
    });

    println!(
        "{:<22} {:>10} {:>16} {:>16} {:>12}",
        "variant", "loss [%]", "lossy windows", "worst window", "jitter [ms]"
    );
    for (v, (label, _)) in variants.iter().enumerate() {
        let runs = &results[v * cli.reps..(v + 1) * cli.reps];
        let mut loss = Vec::new();
        let mut lossy = Vec::new();
        let mut worst = Vec::new();
        let mut jitter = Vec::new();
        for r in runs {
            loss.push(r.summary.loss_rate * 100.0);
            let mut windows = 0usize;
            let mut hit = 0usize;
            let mut w = 0.0f64;
            for pt in &r.series.points {
                let offered = pt.received + pt.lost;
                if offered == 0 {
                    continue;
                }
                windows += 1;
                if pt.lost > 0 {
                    hit += 1;
                }
                w = w.max(pt.lost as f64 / offered as f64);
            }
            lossy.push(if windows == 0 { 0.0 } else { 100.0 * hit as f64 / windows as f64 });
            worst.push(w * 100.0);
            jitter.push(r.summary.mean_jitter.map_or(0.0, |d| d.as_secs_f64() * 1000.0));
        }
        let (lm, ls) = mean_std(&loss);
        let (wm, _) = mean_std(&lossy);
        let (xm, _) = mean_std(&worst);
        let (jm, _) = mean_std(&jitter);
        println!("{label:<22} {lm:>5.2}±{ls:<4.2} {wm:>13.1}% {xm:>15.1}% {jm:>12.3}");
        if cli.dump_series {
            println!("--- per-window loss series, first repetition ({label}) ---");
            for (t, v) in metric_points(&runs[0], Metric::Loss) {
                println!("{t:.1}\t{v:.6}");
            }
        }
    }
    println!("\nSame marginal rate, different burst structure: the GE channel");
    println!("concentrates loss in few ruined windows, Bernoulli smears it.");
}

fn main() {
    let cli = parse_cli();
    if cli.bursty {
        run_bursty_campaign(&cli);
        return;
    }
    let jobs = cli.reps * 4;
    let workers = cli.workers.unwrap_or_else(|| default_workers(jobs)).max(1);

    println!(
        "umtslab figure regeneration — {} repetition(s), base seed {}, {workers} worker(s)",
        cli.reps, cli.seed
    );
    println!("(the paper executed each measurement 20 times; pass `20` to match)\n");

    let registry = MetricsRegistry::new();
    eprintln!("running {jobs} job(s) on {workers} worker(s) ...");
    let runs: Vec<PaperRun> = match run_reps_parallel(cli.seed, cli.reps, None, workers, &registry)
    {
        Ok(runs) => runs,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            std::process::exit(1);
        }
    };

    // Summary rows (the numbers behind all seven figures).
    println!("== summaries (first repetition) ==");
    let first = &runs[0];
    for r in [&first.voip.umts, &first.voip.ethernet, &first.cbr.umts, &first.cbr.ethernet] {
        println!("{}", summary_row(r));
    }

    // Per-figure headline numbers aggregated over repetitions.
    println!("\n== per-figure headline values over {} repetition(s) ==", cli.reps);
    for fig in FIGURES {
        let mut umts_vals = Vec::new();
        let mut eth_vals = Vec::new();
        for run in &runs {
            let (u, e) = result_for(run, fig.id);
            let headline = |r: &ExperimentResult| match fig.metric {
                Metric::Bitrate => r.summary.mean_bitrate_bps / 1000.0,
                Metric::Jitter => r.summary.mean_jitter.map_or(0.0, |d| d.as_secs_f64() * 1000.0),
                Metric::Loss => r.summary.loss_rate * 100.0,
                Metric::Rtt => r.summary.mean_rtt.map_or(0.0, |d| d.as_secs_f64() * 1000.0),
            };
            umts_vals.push(headline(u));
            eth_vals.push(headline(e));
        }
        let unit = match fig.metric {
            Metric::Bitrate => "kbps",
            Metric::Jitter | Metric::Rtt => "ms",
            Metric::Loss => "%",
        };
        let (um, us) = mean_std(&umts_vals);
        let (em, es) = mean_std(&eth_vals);
        println!(
            "{}  {:<34} umts {um:>9.2}±{us:<7.2} eth {em:>9.2}±{es:<7.2} [{unit}]",
            fig.id, fig.title
        );
    }

    // Shape checks (paper claims vs this run).
    println!("\n== shape checks vs the paper (first repetition) ==");
    let mut failed = 0;
    for c in shape_checks(first) {
        let status = if c.pass { "PASS" } else { "FAIL" };
        if !c.pass {
            failed += 1;
        }
        println!("[{status}] {:<22} paper: {:<62} measured: {}", c.name, c.expectation, c.measured);
    }

    // The runner's metrics registry (per-job gauges + campaign totals).
    println!("\n== metrics registry ==");
    print!("{}", registry.summary_table());
    if let Some(path) = &cli.json_path {
        if let Err(e) = std::fs::write(path, registry.to_json()) {
            eprintln!("could not write {path}: {e}");
            std::process::exit(1);
        }
        println!("metrics JSON written to {path}");
    }

    if cli.dump_series {
        println!("\n== full series (first repetition) ==");
        for fig in FIGURES {
            let (u, e) = result_for(first, fig.id);
            println!("\n--- {} ({}) — UMTS-to-Ethernet ---", fig.id, fig.title);
            for (t, v) in metric_points(u, fig.metric) {
                println!("{t:.1}\t{v:.6}");
            }
            println!("\n--- {} ({}) — Ethernet-to-Ethernet ---", fig.id, fig.title);
            for (t, v) in metric_points(e, fig.metric) {
                println!("{t:.1}\t{v:.6}");
            }
        }
    }

    if failed > 0 {
        eprintln!("\n{failed} shape check(s) failed");
        std::process::exit(2);
    }
    println!("\nall shape checks passed");
}
