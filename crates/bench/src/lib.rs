//! placeholder
