//! A small self-contained timing harness for the workspace's benches.
//!
//! The build environment is offline, so instead of an external bench
//! framework the two bench targets (`benches/figures.rs`,
//! `benches/sim_core.rs`, both `harness = false`) are plain binaries
//! built on [`bench_named`]: warm up once, time `iters` runs of the
//! closure on the host clock, and report mean/min/max. That is enough
//! for the regression signal the benches exist to give; absolute
//! rigor (outlier rejection, statistical tests) is out of scope.
//!
//! ```
//! use umtslab_bench::bench_named;
//!
//! let t = bench_named("square", 8, || std::hint::black_box(21u64 * 21));
//! assert_eq!(t.iters, 8);
//! assert!(t.min_ns <= t.mean_ns() && t.mean_ns() <= t.max_ns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// The timing result of one benchmark.
#[derive(Debug, Clone)]
pub struct Timing {
    /// Benchmark name.
    pub name: String,
    /// Measured iterations (excluding the warm-up run).
    pub iters: u32,
    /// Total measured time, nanoseconds.
    pub total_ns: u128,
    /// Fastest iteration, nanoseconds.
    pub min_ns: u128,
    /// Slowest iteration, nanoseconds.
    pub max_ns: u128,
}

impl Timing {
    /// Mean time per iteration, nanoseconds.
    pub fn mean_ns(&self) -> u128 {
        self.total_ns / u128::from(self.iters.max(1))
    }
}

impl core::fmt::Display for Timing {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:<36} mean {:>12} min {:>12} max {:>12} ({} iters)",
            self.name,
            human_ns(self.mean_ns()),
            human_ns(self.min_ns),
            human_ns(self.max_ns),
            self.iters
        )
    }
}

/// Formats a nanosecond count with an adaptive unit.
pub fn human_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Runs `f` once to warm up, then `iters` timed times, and returns the
/// aggregate [`Timing`]. The closure's result is passed through
/// [`std::hint::black_box`] so the optimizer cannot elide the work.
pub fn bench_named<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Timing {
    std::hint::black_box(f()); // warm-up, untimed
    let mut total = 0u128;
    let mut min = u128::MAX;
    let mut max = 0u128;
    for _ in 0..iters.max(1) {
        let started = Instant::now();
        std::hint::black_box(f());
        let ns = started.elapsed().as_nanos();
        total += ns;
        min = min.min(ns);
        max = max.max(ns);
    }
    Timing {
        name: name.to_string(),
        iters: iters.max(1),
        total_ns: total,
        min_ns: min,
        max_ns: max,
    }
}

/// Runs and immediately prints a benchmark (the usual pattern in the
/// bench mains).
pub fn run_bench<R>(name: &str, iters: u32, f: impl FnMut() -> R) -> Timing {
    let t = bench_named(name, iters, f);
    println!("{t}");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_invariants() {
        let t = bench_named("noop", 16, || 0u8);
        assert_eq!(t.iters, 16);
        assert!(t.min_ns <= t.max_ns);
        assert!(t.min_ns <= t.mean_ns() && t.mean_ns() <= t.max_ns);
    }

    #[test]
    fn zero_iters_clamps_to_one() {
        let t = bench_named("noop", 0, || ());
        assert_eq!(t.iters, 1);
    }

    #[test]
    fn human_ns_units() {
        assert_eq!(human_ns(12), "12 ns");
        assert_eq!(human_ns(1_500), "1.500 us");
        assert_eq!(human_ns(2_500_000), "2.500 ms");
        assert_eq!(human_ns(3_200_000_000), "3.200 s");
    }
}
