//! End-to-end benches — one per paper figure.
//!
//! Each bench times a shortened (4 s flow) version of the harness that
//! regenerates the corresponding figure, giving a regression signal on the
//! simulator's end-to-end cost. The *data* for the figures is produced by
//! the `figures` binary (`cargo run --release -p umtslab-bench --bin
//! figures`), which runs the paper's full 120 s campaign.
//!
//! Run with `cargo bench -p umtslab-bench --bench figures`. The harness is
//! the workspace's own [`umtslab_bench::run_bench`] (the build environment
//! is offline, so no external bench framework is used).

use std::hint::black_box;
use umtslab::paper::{run_workload, Workload};
use umtslab::prelude::Duration;
use umtslab::PathKind;
use umtslab_bench::run_bench;

const SHORT: Option<Duration> = Some(Duration::from_secs(4));
const ITERS: u32 = 10;

fn bench_figure(id: &str, workload: Workload, path: PathKind) {
    let mut seed = 0u64;
    run_bench(id, ITERS, || {
        seed += 1;
        let r = run_workload(workload, path, seed, SHORT).expect("run");
        black_box(r.summary.received)
    });
}

fn main() {
    // Figures 1–3 share the VoIP harness; benching both paths covers them.
    bench_figure("fig1_voip_bitrate_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
    bench_figure("fig1_voip_bitrate_eth", Workload::VoipG711, PathKind::EthernetToEthernet);
    bench_figure("fig2_voip_jitter_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
    bench_figure("fig3_voip_rtt_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
    bench_figure("fig4_saturation_bitrate_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
    bench_figure("fig4_saturation_bitrate_eth", Workload::Cbr1Mbps, PathKind::EthernetToEthernet);
    bench_figure("fig5_saturation_jitter_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
    bench_figure("fig6_saturation_loss_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
    bench_figure("fig7_saturation_rtt_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
}
