//! Criterion benches — one per paper figure.
//!
//! Each bench times a shortened (4 s flow) version of the harness that
//! regenerates the corresponding figure, giving a regression signal on the
//! simulator's end-to-end cost. The *data* for the figures is produced by
//! the `figures` binary (`cargo run --release -p umtslab-bench --bin
//! figures`), which runs the paper's full 120 s campaign.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use umtslab::paper::{run_workload, Workload};
use umtslab::prelude::Duration;
use umtslab::PathKind;

const SHORT: Option<Duration> = Some(Duration::from_secs(4));

fn bench_figure(c: &mut Criterion, id: &str, workload: Workload, path: PathKind) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function(id, |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let r = run_workload(workload, path, seed, SHORT).expect("run");
            black_box(r.summary.received)
        });
    });
    group.finish();
}

fn fig1_voip_bitrate(c: &mut Criterion) {
    // Figures 1–3 share the harness; benching both paths covers them.
    bench_figure(c, "fig1_voip_bitrate_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
    bench_figure(c, "fig1_voip_bitrate_eth", Workload::VoipG711, PathKind::EthernetToEthernet);
}

fn fig2_voip_jitter(c: &mut Criterion) {
    bench_figure(c, "fig2_voip_jitter_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
}

fn fig3_voip_rtt(c: &mut Criterion) {
    bench_figure(c, "fig3_voip_rtt_umts", Workload::VoipG711, PathKind::UmtsToEthernet);
}

fn fig4_saturation_bitrate(c: &mut Criterion) {
    bench_figure(c, "fig4_saturation_bitrate_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
    bench_figure(c, "fig4_saturation_bitrate_eth", Workload::Cbr1Mbps, PathKind::EthernetToEthernet);
}

fn fig5_saturation_jitter(c: &mut Criterion) {
    bench_figure(c, "fig5_saturation_jitter_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
}

fn fig6_saturation_loss(c: &mut Criterion) {
    bench_figure(c, "fig6_saturation_loss_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
}

fn fig7_saturation_rtt(c: &mut Criterion) {
    bench_figure(c, "fig7_saturation_rtt_umts", Workload::Cbr1Mbps, PathKind::UmtsToEthernet);
}

criterion_group!(
    figures,
    fig1_voip_bitrate,
    fig2_voip_jitter,
    fig3_voip_rtt,
    fig4_saturation_bitrate,
    fig5_saturation_jitter,
    fig6_saturation_loss,
    fig7_saturation_rtt
);
criterion_main!(figures);
