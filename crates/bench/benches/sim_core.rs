//! Micro-benchmarks of the simulation substrates: event queue, link pipe,
//! routing lookup, PPP framing/negotiation and bearer service — the hot
//! paths every experiment exercises millions of times.
//!
//! Run with `cargo bench -p umtslab-bench --bench sim_core`. The harness
//! is the workspace's own [`umtslab_bench::run_bench`] (the build
//! environment is offline, so no external bench framework is used).

use std::hint::black_box;

use umtslab::prelude::*;
use umtslab::umtslab_net::link::{LinkConfig, Pipe};
use umtslab::umtslab_net::packet::{PacketId, PacketIdAllocator};
use umtslab::umtslab_net::route::{FlowKey, PolicyRule, Rib, Route, RuleSelector, TableId};
use umtslab::umtslab_sim::{EventQueue, SimRng};
use umtslab::umtslab_umts::bearer::{BearerConfig, UmtsBearer};
use umtslab::umtslab_umts::ppp::frame::{encode_frame, protocol, Deframer};
use umtslab_bench::run_bench;

const ITERS: u32 = 50;

fn pkt(id: u64, payload: usize) -> Packet {
    Packet::udp(
        PacketId(id),
        Endpoint::new(Ipv4Address::new(10, 0, 0, 1), 1),
        Endpoint::new(Ipv4Address::new(10, 0, 0, 2), 2),
        vec![0; payload],
        Instant::ZERO,
    )
}

fn bench_event_queue() {
    run_bench("event_queue_10k_schedule_pop", ITERS, || {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            q.schedule(Instant::from_micros((i * 7919) % 100_000), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = q.pop() {
            sum = sum.wrapping_add(v);
        }
        black_box(sum)
    });
}

fn bench_pipe() {
    run_bench("pipe_1k_packets", ITERS, || {
        let mut pipe = Pipe::new(LinkConfig::wired(100_000_000, Duration::from_millis(5)));
        let mut rng = SimRng::seed_from_u64(1);
        let mut delivered = 0u64;
        for i in 0..1_000u64 {
            let now = Instant::from_micros(i * 100);
            if let umtslab::umtslab_net::link::PushOutcome::Scheduled(v) =
                pipe.push(now, pkt(i, 1000), &mut rng)
            {
                delivered += v.len() as u64;
            }
        }
        black_box(delivered)
    });
}

fn bench_routing() {
    let mut rib = Rib::new();
    // A realistic rule/route load: the paper's rules plus filler prefixes.
    rib.table_mut(TableId::MAIN).add(Route::default_via(
        Ipv4Address::new(10, 0, 0, 1),
        umtslab::umtslab_net::iface::IfaceId(1),
    ));
    for i in 0..64u32 {
        rib.table_mut(TableId::MAIN).add(Route::onlink(
            Ipv4Cidr::new(Ipv4Address::from_u32(0x0A00_0000 | (i << 16)), 16),
            umtslab::umtslab_net::iface::IfaceId(1),
        ));
    }
    rib.table_mut(TableId(100)).add(Route::default_dev(umtslab::umtslab_net::iface::IfaceId(2)));
    rib.add_rule(PolicyRule {
        priority: 1000,
        selector: RuleSelector::fwmark(Mark(7)),
        table: TableId(100),
    });

    run_bench("policy_routing_1k_lookups", ITERS, || {
        let mut hits = 0u64;
        for i in 0..1_000u32 {
            let key = FlowKey {
                src: Ipv4Address::from_u32(0x0A00_0001 + i),
                dst: Ipv4Address::from_u32(0x0A00_0000 | ((i % 64) << 16) | 5),
                mark: Mark(i % 2 * 7),
            };
            if rib.resolve(black_box(&key)).is_some() {
                hits += 1;
            }
        }
        black_box(hits)
    });
}

fn bench_ppp_framing() {
    let payload: Vec<u8> = (0..1052u32).map(|i| (i % 251) as u8).collect();
    run_bench("ppp_frame_roundtrip_1k", ITERS, || {
        let framed = encode_frame(protocol::IPV4, black_box(&payload));
        let mut d = Deframer::new();
        let frames = d.feed(&framed);
        black_box(frames.len())
    });
}

fn bench_wire_roundtrip() {
    let mut ids = PacketIdAllocator::new();
    let p = pkt(ids.allocate().0, 1024);
    run_bench("ipv4_udp_wire_roundtrip", ITERS, || {
        let bytes = p.to_wire().unwrap();
        let q = Packet::from_wire(black_box(&bytes), p.id, p.created).unwrap();
        black_box(q.payload.len())
    });
}

fn bench_bearer() {
    run_bench("bearer_1k_packets_service", ITERS, || {
        let mut bearer = UmtsBearer::new(BearerConfig::typical());
        bearer.set_rate(Instant::ZERO, 416_000);
        let mut rng = SimRng::seed_from_u64(3);
        let mut served = 0u64;
        for i in 0..1_000u64 {
            let now = Instant::from_millis(i * 10);
            let _ = bearer.enqueue(now, pkt(i, 500));
            served += bearer.service(now, &mut rng).len() as u64;
        }
        black_box(served)
    });
}

fn main() {
    bench_event_queue();
    bench_pipe();
    bench_routing();
    bench_ppp_framing();
    bench_wire_roundtrip();
    bench_bearer();
}
