//! The PlanetLab-scale fleet topology: thousands of UMTS nodes, a
//! hundred thousand concurrent probe sessions, one coupled core.
//!
//! This is the scenario the paper's stated aim points at — *every*
//! PlanetLab node with a UMTS interface — built on the sharded core
//! ([`crate::shard::ShardedTestbed`]):
//!
//! * `nodes` member nodes, each with a wired access link **and** a UMTS
//!   attachment (operators cycle over three profiles with fleet-sized
//!   address pools), dialed up through the paper's vsys recipe;
//! * `sinks` wired measurement sinks, the targets of every probe flow;
//! * `flows_per_node` low-rate CBR probe flows per member, all routed
//!   over the UMTS path by an `AddDestination` policy route covering the
//!   sink block, echoed by the sinks for RTT measurement.
//!
//! Every flow is concurrently active for the whole measurement span, so a
//! fleet of 1 024 nodes × 100 flows holds ~102 k concurrent sessions
//! (plus one PPP session per member) in bounded memory: payload buffers
//! recycle through per-shard [`umtslab_net::bytes::BufferPool`]s and each
//! probe log entry is a few plain words.
//!
//! [`run_fleet`] returns a [`FleetReport`] whose `trace_hash` folds every
//! per-flow log, the drop counters and the metrics JSON into one FNV-1a
//! value: two runs agree on the hash iff they agree on every observable.
//! The determinism suite and the CI shard gate compare it across shard
//! counts {1, 2, 4, 8}.

use umtslab_ditg::FlowSpec;
use umtslab_net::link::LinkConfig;
use umtslab_net::wire::{Ipv4Address, Ipv4Cidr};
use umtslab_planetlab::umtscmd::UmtsRequest;
use umtslab_sim::time::{Duration, Instant};
use umtslab_umts::at::DeviceProfile;
use umtslab_umts::operator::OperatorProfile;
use umtslab_umts::ppp::Credentials;

use crate::shard::{GlobalAgentId, GlobalNodeId, Shard, ShardedTestbed};
use crate::testbed::TestbedMetrics;

/// Scale knobs of the fleet scenario.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// UMTS member nodes (each dials one PPP session).
    pub nodes: usize,
    /// Probe flows per member, all concurrently active.
    pub flows_per_node: usize,
    /// Wired sink nodes receiving (and echoing) the probes.
    pub sinks: usize,
    /// Shards the topology is partitioned across.
    pub shards: usize,
    /// Measurement span in simulated seconds.
    pub seconds: u64,
    /// Master seed; every entity stream derives from it by global index.
    pub seed: u64,
    /// How many member nodes record full packet traces (hashed into the
    /// report; keep small — traces grow with traffic).
    pub trace_nodes: usize,
}

impl FleetConfig {
    /// The demo scale: 1 024 UMTS nodes × 100 flows ≈ 102 k concurrent
    /// probe sessions plus 1 024 PPP sessions.
    pub fn demo() -> FleetConfig {
        FleetConfig {
            nodes: 1_024,
            flows_per_node: 100,
            sinks: 16,
            shards: 1,
            seconds: 10,
            seed: 2_008,
            trace_nodes: 2,
        }
    }

    /// A small instance for tests and CI gates: quick, but still crossing
    /// every path (three operators, echoes, cross-shard handoffs).
    pub fn small() -> FleetConfig {
        FleetConfig {
            nodes: 12,
            flows_per_node: 2,
            sinks: 3,
            shards: 1,
            seconds: 2,
            seed: 7,
            trace_nodes: 2,
        }
    }

    /// Total probe flows (`nodes * flows_per_node`).
    pub fn flows(&self) -> usize {
        self.nodes * self.flows_per_node
    }
}

/// What one fleet run measured.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Member (UMTS) nodes simulated.
    pub nodes: usize,
    /// Wired sink nodes.
    pub sinks: usize,
    /// Concurrent probe sessions (flows).
    pub flows: usize,
    /// Members whose PPP session was up at the end of the settle phase.
    pub ppp_up: usize,
    /// Probe packets sent across all flows.
    pub sent: u64,
    /// Probe packets received at the sinks.
    pub received: u64,
    /// Round trips measured (echo replies that made it back).
    pub rtt_count: u64,
    /// Full cross-layer counter snapshot.
    pub metrics: TestbedMetrics,
    /// Deterministic JSON rendering of `metrics` (byte-comparable).
    pub metrics_json: String,
    /// FNV-1a over every per-flow log, the drop counters, `metrics_json`
    /// and the traced nodes' dumps: the shard-invariance witness.
    pub trace_hash: u64,
}

/// The three fleet operators: the paper's profiles widened to
/// fleet-sized, mutually disjoint address pools (each `/12` carves 4 096
/// subscriber `/24`s; the stock pools cap out at 128).
fn fleet_operator(k: usize) -> OperatorProfile {
    let (mut op, second_octet) = match k % 3 {
        0 => (OperatorProfile::commercial_italy(), 128),
        1 => (OperatorProfile::private_microcell(), 144),
        _ => (OperatorProfile::gprs_fallback(), 160),
    };
    op.pool = Ipv4Cidr::new(Ipv4Address::new(10, second_octet, 0, 0), 12);
    op
}

const SETTLE: Instant = Instant::from_secs(25);
const MEASURE_START: Instant = Instant::from_secs(27);
const DRAIN: Duration = Duration::from_secs(3);
/// First UDP port of the per-member probe source-port range.
const MEMBER_PORT_BASE: u16 = 10_000;
/// First UDP port of the per-sink listen range.
const SINK_PORT_BASE: u16 = 1_024;

struct Fleet {
    tb: ShardedTestbed,
    members: Vec<GlobalNodeId>,
    senders: Vec<GlobalAgentId>,
    receivers: Vec<GlobalAgentId>,
}

/// Builds the topology and dials every member (no traffic yet).
fn build(cfg: &FleetConfig) -> Fleet {
    assert!(cfg.nodes >= 1 && cfg.nodes <= 12_000, "1..=12000 member nodes");
    assert!(cfg.sinks >= 1 && cfg.sinks < 60_000, "at least one sink");
    assert!(cfg.flows_per_node >= 1 && cfg.flows_per_node <= 50_000, "member port range");
    assert!(
        cfg.flows() / cfg.sinks + (SINK_PORT_BASE as usize) < 65_535,
        "sink port range exhausted; add sinks"
    );
    let mut tb = ShardedTestbed::new(cfg.shards.max(1), cfg.seed);
    let access = LinkConfig::wired(100_000_000, Duration::from_millis(6));

    // Sinks first is tempting but member global indices are the paper's
    // "node i" identity; keep members first so index == member number.
    let mut members = Vec::with_capacity(cfg.nodes);
    for m in 0..cfg.nodes {
        let hi = (m >> 8) as u8;
        let lo = (m & 0xff) as u8;
        let id = tb.add_node(
            format!("member-{m}"),
            Ipv4Address::new(11, hi, lo, 2),
            Ipv4Cidr::new(Ipv4Address::new(11, hi, lo, 0), 24),
            Ipv4Address::new(11, hi, lo, 1),
            access.clone(),
        );
        tb.attach_umts(id, fleet_operator(m), DeviceProfile::huawei_e620(), fleet_credentials(m));
        if m < cfg.trace_nodes {
            tb.node_mut(id).trace.set_enabled(true);
        }
        members.push(id);
    }
    let mut sinks = Vec::with_capacity(cfg.sinks);
    for s in 0..cfg.sinks {
        let host = (s + 1) as u16;
        let id = tb.add_node(
            format!("sink-{s}"),
            Ipv4Address::new(12, 0, (host >> 8) as u8, (host & 0xff) as u8),
            Ipv4Cidr::new(Ipv4Address::new(12, 0, 0, 0), 16),
            Ipv4Address::new(12, 0, 255, 254),
            access.clone(),
        );
        sinks.push(id);
    }

    // Slices + the paper's vsys recipe: grant, dial, and (after the
    // session is up) one policy route covering the whole sink block.
    let mut member_slices = Vec::with_capacity(cfg.nodes);
    for &id in &members {
        let slice = tb.node_mut(id).slices.create("fleet");
        tb.node_mut(id).grant_umts_access(slice);
        tb.node_mut(id).vsys_submit(slice, UmtsRequest::Start).expect("vsys start");
        member_slices.push(slice);
    }
    let mut sink_slices = Vec::with_capacity(cfg.sinks);
    for &id in &sinks {
        sink_slices.push(tb.node_mut(id).slices.create("sink"));
    }

    tb.run_until(SETTLE);

    let sink_block = Ipv4Cidr::new(Ipv4Address::new(12, 0, 0, 0), 16);
    for (&id, &slice) in members.iter().zip(&member_slices) {
        tb.node_mut(id)
            .vsys_submit(slice, UmtsRequest::AddDestination(sink_block))
            .expect("vsys add-destination");
    }
    tb.run_until(SETTLE + Duration::from_millis(500));

    // Flows: member m, local flow j → global flow f = m * per + j, sink
    // f % sinks, staggered deterministic starts inside one second.
    let per = cfg.flows_per_node;
    let span = Duration::from_secs(cfg.seconds);
    let mut senders = Vec::with_capacity(cfg.flows());
    let mut receivers = Vec::with_capacity(cfg.flows());
    for (m, (&member, &mslice)) in members.iter().zip(&member_slices).enumerate() {
        for j in 0..per {
            let f = m * per + j;
            let sink_idx = f % cfg.sinks;
            let sink = sinks[sink_idx];
            let sport = MEMBER_PORT_BASE + j as u16;
            let dport = SINK_PORT_BASE + (f / cfg.sinks) as u16;
            let mut spec = FlowSpec::cbr(64, 40, span);
            spec.label = format!("probe-{f}");
            spec.sport = sport;
            spec.dport = dport;
            let start =
                MEASURE_START + Duration::from_micros((f as u64).wrapping_mul(9_973) % 1_000_000);
            let dst = tb.node(sink).eth_addr();
            let tx = tb.add_sender(member, mslice, spec, dst, start);
            let rx = tb.add_receiver(sink, sink_slices[sink_idx], dport, tx, true);
            senders.push(tx);
            receivers.push(rx);
        }
    }
    Fleet { tb, members, senders, receivers }
}

/// PAP credentials matching each operator's expectations.
fn fleet_credentials(m: usize) -> Option<Credentials> {
    match m % 3 {
        1 => Some(Credentials::new("onelab", "onelab")),
        _ => Some(Credentials::new("web", "web")),
    }
}

/// Runs the fleet scenario serially (shards advance one after another).
pub fn run_fleet(cfg: &FleetConfig) -> FleetReport {
    run_fleet_with(cfg, |shards, end| {
        for s in shards.iter_mut() {
            use umtslab_sim::shard::ShardScheduler;
            s.run_window(end);
        }
    })
}

/// Runs the fleet scenario with a caller-supplied window runner (e.g. a
/// worker pool fanning the shards out per window). Must produce bytes
/// identical to [`run_fleet`] — parallelism only changes wall time.
pub fn run_fleet_with(
    cfg: &FleetConfig,
    mut run: impl FnMut(&mut [Shard], Instant),
) -> FleetReport {
    let mut fleet = build(cfg);
    let end = MEASURE_START + Duration::from_secs(cfg.seconds) + Duration::from_secs(1) + DRAIN;
    fleet.tb.run_until_with(end, &mut run);
    report(cfg, &mut fleet)
}

fn report(cfg: &FleetConfig, fleet: &mut Fleet) -> FleetReport {
    let tb = &fleet.tb;
    let ppp_up = fleet.members.iter().filter(|&&id| tb.node(id).ppp_addr().is_some()).count();
    let mut hash = Fnv::new();
    let mut sent = 0u64;
    let mut rtt_count = 0u64;
    for &tx in &fleet.senders {
        let (s, rtts) = tb.sender_logs(tx);
        sent += s.len() as u64;
        rtt_count += rtts.len() as u64;
        for r in s {
            hash.u64(u64::from(r.seq));
            hash.u64(r.tx.total_micros());
            hash.u64(r.payload as u64);
        }
        for r in rtts {
            hash.u64(u64::from(r.seq));
            hash.u64(r.rtt.total_micros());
        }
    }
    let mut received = 0u64;
    for &rx in &fleet.receivers {
        let records = tb.receiver_records(rx);
        received += records.len() as u64;
        for r in records {
            hash.u64(u64::from(r.seq));
            hash.u64(r.tx.total_micros());
            hash.u64(r.rx.total_micros());
        }
    }
    let metrics = tb.metrics();
    let metrics_json = render_metrics_json(&metrics);
    hash.bytes(metrics_json.as_bytes());
    for &id in fleet.members.iter().take(cfg.trace_nodes) {
        hash.bytes(tb.node(id).trace.dump().as_bytes());
    }
    FleetReport {
        nodes: cfg.nodes,
        sinks: cfg.sinks,
        flows: cfg.flows(),
        ppp_up,
        sent,
        received,
        rtt_count,
        metrics,
        metrics_json,
        trace_hash: hash.finish(),
    }
}

/// Renders a [`TestbedMetrics`] snapshot as one deterministic JSON line.
///
/// Hand-rolled and field-complete: two snapshots render equal bytes iff
/// they are equal, which is what the shard-invariance gates compare.
pub fn render_metrics_json(m: &TestbedMetrics) -> String {
    format!(
        "{{\"access\": {{\"pushed\": {}, \"delivered\": {}, \"dropped_queue\": {}, \
         \"dropped_loss\": {}}}, \
         \"uplink\": {{\"offered\": {}, \"served\": {}, \"dropped_overflow\": {}, \
         \"dropped_rlc\": {}, \"retransmissions\": {}, \"outages\": {}}}, \
         \"downlink\": {{\"offered\": {}, \"served\": {}, \"dropped_overflow\": {}, \
         \"dropped_rlc\": {}, \"retransmissions\": {}, \"outages\": {}}}, \
         \"rrc_transitions\": {}, \"ppp_transitions\": {}, \
         \"drops\": {{\"core_unroutable\": {}, \"operator_firewall\": {}, \
         \"node_egress\": {}, \"umts_downlink\": {}}}, \"events\": {}}}",
        m.access.pushed,
        m.access.delivered,
        m.access.dropped_queue,
        m.access.dropped_loss,
        m.uplink.offered,
        m.uplink.served,
        m.uplink.dropped_overflow,
        m.uplink.dropped_rlc,
        m.uplink.retransmissions,
        m.uplink.outages,
        m.downlink.offered,
        m.downlink.served,
        m.downlink.dropped_overflow,
        m.downlink.dropped_rlc,
        m.downlink.retransmissions,
        m.downlink.outages,
        m.rrc_transitions,
        m.ppp_transitions,
        m.drops.core_unroutable,
        m.drops.operator_firewall,
        m.drops.node_egress,
        m.drops.umts_downlink,
        m.events,
    )
}

/// FNV-1a, the workspace's standing determinism-hash idiom.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fleet_carries_probes_end_to_end() {
        let cfg = FleetConfig::small();
        let report = run_fleet(&cfg);
        assert_eq!(report.nodes, 12);
        assert_eq!(report.flows, 24);
        assert_eq!(report.ppp_up, 12, "every member dialed up");
        assert!(report.sent > 0, "probes were emitted");
        assert!(report.received > 0, "probes reached the sinks");
        assert!(report.rtt_count > 0, "echoes came back over the downlink");
        assert!(report.metrics.uplink.served > 0, "probes rode the radio uplink");
        assert!(report.metrics_json.contains("\"uplink\""));
    }

    #[test]
    fn fleet_hash_is_reproducible() {
        let cfg = FleetConfig::small();
        let a = run_fleet(&cfg);
        let b = run_fleet(&cfg);
        assert_eq!(a.trace_hash, b.trace_hash);
        assert_eq!(a.metrics_json, b.metrics_json);
    }

    #[test]
    fn fleet_hash_varies_with_seed() {
        let mut cfg = FleetConfig::small();
        let a = run_fleet(&cfg);
        cfg.seed ^= 0xdead_beef;
        let b = run_fleet(&cfg);
        assert_ne!(a.trace_hash, b.trace_hash, "the hash must actually see the traffic");
    }
}
